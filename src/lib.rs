//! # The Computational Sprinting Game
//!
//! A from-scratch Rust reproduction of *The Computational Sprinting Game*
//! (Fan, Zahedi, Lee — ASPLOS 2016): a rack of chip multiprocessors share a
//! power supply; each chip can *sprint* (activate extra cores at higher
//! frequency) subject to its thermal limits and the rack's circuit breaker;
//! a repeated game with a mean-field equilibrium decides who sprints when.
//!
//! This facade crate re-exports the workspace's crates:
//!
//! - [`stats`] — numerical substrate (densities, KDE, Markov chains).
//! - [`power`] — physical substrate (CMP power, PCM thermal, breaker, UPS).
//! - [`workloads`] — Spark-like workload model and calibrated benchmarks.
//! - [`game`] — the paper's contribution: Bellman solver, threshold
//!   strategies, mean-field equilibrium (Algorithm 1).
//! - [`sim`] — epoch-driven rack simulator with the paper's four policies.
//! - [`telemetry`] — observability: structured event tracing, metrics
//!   registry, and timing spans, zero-cost when disabled.
//!
//! # Quickstart
//!
//! Solve for a sprinting equilibrium and inspect the optimal threshold:
//!
//! ```
//! use computational_sprinting::game::{GameConfig, MeanFieldSolver};
//! use computational_sprinting::telemetry::Telemetry;
//! use computational_sprinting::workloads::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = GameConfig::paper_defaults();
//! let density = Benchmark::DecisionTree.utility_density(256)?;
//! let eq = MeanFieldSolver::new(config).run(&density, &mut Telemetry::noop())?;
//! println!(
//!     "threshold = {:.3}, sprinters = {:.0}, P(trip) = {:.3}",
//!     eq.threshold(),
//!     eq.expected_sprinters(),
//!     eq.trip_probability()
//! );
//! # Ok(())
//! # }
//! ```

pub use sprint_game as game;
pub use sprint_power as power;
pub use sprint_sim as sim;
pub use sprint_stats as stats;
pub use sprint_telemetry as telemetry;
pub use sprint_workloads as workloads;

/// The types most sessions start from.
///
/// ```
/// use computational_sprinting::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let eq = MeanFieldSolver::new(GameConfig::paper_defaults())
///     .run(&Benchmark::Svm.utility_density(256)?, &mut Telemetry::noop())?;
/// assert!(eq.threshold() > 0.0);
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use sprint_game::{
        cooperative::CooperativeSearch, coordinator::Coordinator, multi::MultiSolver, Equilibrium,
        GameConfig, MeanFieldSolver, ThresholdStrategy,
    };
    pub use sprint_power::rack::RackConfig;
    pub use sprint_sim::policy::PolicyKind;
    pub use sprint_sim::runner::compare;
    pub use sprint_sim::scenario::Scenario;
    pub use sprint_sim::sweep::{run_sweep, SweepReport, SweepSpec};
    pub use sprint_stats::density::DiscreteDensity;
    pub use sprint_telemetry::Telemetry;
    pub use sprint_workloads::generator::Population;
    pub use sprint_workloads::Benchmark;
}
