//! Integration tests for the control plane's degradation ladder.
//!
//! The acceptance contract (scaled down for the default profile; the
//! `acceptance_` tests run the full 500 × 10k configuration under
//! `--ignored` in the CI partition-chaos job):
//!
//! - zero panics and zero invariant violations — every agent holds a
//!   valid threshold at every epoch, under partitions, ≥ 20 % message
//!   loss, and forced solver non-convergence;
//! - exactly one `TierShift` event per actual rung change, forming a
//!   consistent per-agent ladder walk;
//! - mean recovery within two lease periods of a partition heal;
//! - degraded-mode utility at least the always-conservative baseline.

use sprint_game::meanfield::SolverOptions;
use sprint_game::GameConfig;
use sprint_sim::control::{ControlConfig, ControlReport, ControlSim};
use sprint_sim::faults::{FaultPlan, RackPartition};
use sprint_sim::runner::{self, ResilienceReport};
use sprint_sim::scenario::Scenario;
use sprint_telemetry::{ControlTier, Event, Telemetry};
use sprint_workloads::Benchmark;

fn control_sim(agents: u32, epochs: usize) -> ControlSim {
    let game = GameConfig::builder()
        .n_agents(agents)
        .n_min(f64::from(agents) * 0.25)
        .n_max(f64::from(agents) * 0.75)
        .build()
        .unwrap();
    let density = Benchmark::DecisionTree.utility_density(256).unwrap();
    ControlSim::new(game, density, epochs).unwrap()
}

/// Tight windows so a multi-epoch partition walks agents down the whole
/// ladder and back within a short run.
fn tight_control() -> ControlConfig {
    ControlConfig {
        lease_epochs: 8,
        heartbeat_interval: 2,
        suspect_after: 40,
        stale_grace_epochs: 5,
        ..ControlConfig::default()
    }
}

fn full_partition(start: usize, duration: usize) -> FaultPlan {
    FaultPlan {
        partition: Some(RackPartition {
            start_epoch: start,
            duration_epochs: duration,
            fraction: 1.0,
        }),
        ..FaultPlan::none()
    }
}

fn assert_invariants(report: &ControlReport) {
    assert_eq!(
        report.invariant_violations, 0,
        "every agent must hold a valid threshold at every epoch"
    );
    assert!(
        report.mean_utility >= report.conservative_utility - 1e-12,
        "degraded-mode utility {} must not fall below the always-conservative baseline {}",
        report.mean_utility,
        report.conservative_utility
    );
}

#[test]
fn partition_walks_the_full_ladder_and_recovers() {
    let cfg = tight_control();
    let sim = control_sim(24, 240)
        .with_faults(full_partition(60, 30))
        .with_control(cfg);
    let mut kit = Telemetry::in_memory();
    let report = sim.run(11, &mut kit).unwrap();

    assert_invariants(&report);
    let [eq, stale, cons] = report.tier_epochs;
    assert!(eq > 0, "agents must reach the equilibrium tier");
    assert!(stale > 0, "the partition must force the stale-cache rung");
    assert!(
        cons > 0,
        "the grace window must run out during the partition"
    );
    assert!(report.lease_expiries > 0);
    assert!(
        report.recoveries > 0,
        "agents must climb back after the heal"
    );
    let mean = report.mean_recovery_epochs.unwrap();
    assert!(
        mean <= 2.0 * f64::from(cfg.lease_epochs),
        "mean recovery {mean} epochs must be within two lease periods"
    );
    // The rack does better than pinning everyone to the conservative
    // threshold, because most epochs run at the equilibrium tier.
    assert!(report.mean_utility > report.conservative_utility);
}

#[test]
fn tier_shifts_are_exactly_one_event_per_rung_change() {
    let sim = control_sim(16, 220)
        .with_faults(full_partition(50, 30))
        .with_control(tight_control());
    let mut kit = Telemetry::in_memory();
    let report = sim.run(3, &mut kit).unwrap();

    let shifts: Vec<(u32, ControlTier, ControlTier)> = kit
        .events()
        .unwrap()
        .iter()
        .filter_map(|e| match *e {
            Event::TierShift {
                agent, from, to, ..
            } => Some((agent, from, to)),
            _ => None,
        })
        .collect();
    assert_eq!(
        shifts.len() as u64,
        report.tier_transitions,
        "exactly one TierShift event per rung change"
    );
    // Per agent, the shift stream is a consistent walk: each event
    // leaves the tier the previous one entered, and never self-loops.
    let mut tier = [ControlTier::Conservative; 16];
    for (agent, from, to) in shifts {
        assert_ne!(from, to, "a TierShift must change the tier");
        assert_eq!(
            tier[agent as usize], from,
            "agent {agent} shifted from a tier it was not on"
        );
        tier[agent as usize] = to;
    }
}

#[test]
fn forced_nonconvergence_with_partition_lands_on_conservative() {
    // tolerance −1 is unreachable and the tiny budget exhausts before
    // the bisection fallback, so every solve reports NonConvergence:
    // the fresh-equilibrium rung never exists and no stale cache entry
    // ever appears. The ladder must bottom out at conservative, with
    // zero panics and zero tier flapping.
    let cfg = ControlConfig {
        solve_budget: 7,
        ..tight_control()
    };
    let sim = control_sim(12, 150)
        .with_options(SolverOptions {
            tolerance: -1.0,
            ..SolverOptions::default()
        })
        .with_faults(FaultPlan {
            partition: Some(RackPartition {
                start_epoch: 40,
                duration_epochs: 10,
                fraction: 1.0,
            }),
            ..FaultPlan::partition_chaos(5, 40, 10)
        })
        .with_control(cfg);
    let mut kit = Telemetry::in_memory();
    let report = sim.run(9, &mut kit).unwrap();

    assert_invariants(&report);
    assert!(report.resolves > 0, "the coordinator must keep trying");
    assert_eq!(
        report.resolves, report.resolve_failures,
        "every solve must fail under the forced non-convergence"
    );
    let [eq, stale, cons] = report.tier_epochs;
    assert_eq!((eq, stale), (0, 0), "no fresh or stale strategy can exist");
    assert!(cons > 0);
    assert_eq!(
        report.tier_transitions, 0,
        "agents boot conservative and must not flap"
    );
    assert!(
        (report.mean_utility - report.conservative_utility).abs() < 1e-12,
        "all-conservative rack realizes exactly the baseline"
    );
}

#[test]
fn lossy_transport_alone_keeps_the_equilibrium_tier_dominant() {
    // 20 % loss + delays + duplicates but no partition: renewals retry
    // on backoff, so the rack should hold the equilibrium tier for the
    // large majority of agent-epochs.
    let plan = FaultPlan {
        partition: None,
        ..FaultPlan::partition_chaos(7, 0, 0)
    };
    let sim = control_sim(32, 400).with_faults(plan);
    let report = sim.run(21, &mut Telemetry::noop()).unwrap();
    assert_invariants(&report);
    let [eq, stale, cons] = report.tier_epochs;
    assert!(
        eq * 100 >= (eq + stale + cons) * 70,
        "equilibrium tier must dominate under loss alone: {:?}",
        report.tier_epochs
    );
    assert!(report.messages.lost > 0);
}

fn acceptance_scenario(epochs: usize) -> Scenario {
    Scenario::homogeneous(Benchmark::DecisionTree, 100, epochs).unwrap()
}

fn acceptance_control() -> ControlConfig {
    ControlConfig::default()
}

/// Scaled-down version of the acceptance suite that runs in the default
/// test profile (25 trials × 600 epochs instead of 500 × 10k).
#[test]
fn resilience_suite_smoke() {
    let seeds: Vec<u64> = (1..=25).collect();
    let report = runner::resilience(
        &acceptance_scenario(600),
        FaultPlan::partition_chaos(13, 200, 3),
        acceptance_control(),
        &seeds,
        &mut Telemetry::noop(),
    )
    .unwrap();
    assert_resilience(&report);
}

/// The full acceptance configuration: 500 trials × 10 000 epochs of
/// ≥ 20 % message loss plus a 3-epoch full-rack partition. Run by the CI
/// partition-chaos job (`--ignored --release`).
#[test]
#[ignore = "acceptance scale; run with --ignored --release"]
fn acceptance_partition_chaos_500_trials() {
    let seeds: Vec<u64> = (1..=500).collect();
    let report = runner::resilience(
        &acceptance_scenario(10_000),
        FaultPlan::partition_chaos(13, 4_000, 3),
        acceptance_control(),
        &seeds,
        &mut Telemetry::noop(),
    )
    .unwrap();
    assert_resilience(&report);
}

/// Forced-nonconvergence acceptance leg: the solver can never produce
/// an equilibrium, the whole rack must ride the conservative rung
/// without a single invalid threshold. Scaled down by default; the CI
/// job runs the ignored full-scale variant.
#[test]
fn resilience_suite_forced_nonconvergence_smoke() {
    forced_nonconvergence_trials(20, 500);
}

#[test]
#[ignore = "acceptance scale; run with --ignored --release"]
fn acceptance_forced_nonconvergence_500_trials() {
    forced_nonconvergence_trials(500, 10_000);
}

fn forced_nonconvergence_trials(trials: u64, epochs: usize) {
    let cfg = ControlConfig {
        solve_budget: 7,
        ..ControlConfig::default()
    };
    let sim = control_sim(50, epochs)
        .with_options(SolverOptions {
            tolerance: -1.0,
            ..SolverOptions::default()
        })
        .with_faults(FaultPlan::partition_chaos(17, epochs / 2, 3))
        .with_control(cfg);
    for seed in 1..=trials {
        let report = sim.run(seed, &mut Telemetry::noop()).unwrap();
        assert_invariants(&report);
        assert_eq!(report.tier_epochs[0], 0);
    }
}

fn assert_resilience(report: &ResilienceReport) {
    assert_eq!(
        report.invariant_violations, 0,
        "no agent may ever hold an invalid threshold"
    );
    assert!(
        report.recovered_within(2.0),
        "mean recovery {:?} epochs must be within two lease periods ({})",
        report.mean_recovery_epochs,
        report.control.lease_epochs
    );
    assert!(
        report.mean_utility >= report.conservative_utility - 1e-12,
        "degraded-mode utility {} must not fall below the baseline {}",
        report.mean_utility,
        report.conservative_utility
    );
    for trial in &report.trials {
        assert!(trial.messages.lost > 0, "the loss rate must bite");
    }
    // The JSON resilience report (the CI artifact) round-trips.
    let json = serde_json::to_string(report).unwrap();
    let back: ResilienceReport = serde_json::from_str(&json).unwrap();
    assert_eq!(&back, report);
}
