//! Integration tests for online adversary defense: CUSUM detection,
//! graduated sanctions, and enforcement in the coordinator control
//! plane.
//!
//! The acceptance contract (scaled down for the default profile; the
//! `acceptance_` test runs the full 500-trial matrix under `--ignored`
//! in the CI adversary-smoke job):
//!
//! - under 10 % greedy defectors with sensor noise and transport
//!   faults, graduated enforcement restores ≥ 95 % of the honest
//!   population's throughput;
//! - zero honest agents are ever *permanently* excluded;
//! - every sanction transition is a typed telemetry event forming a
//!   consistent per-agent ladder walk;
//! - reports are byte-identical across repeat runs — detector state
//!   feeds only on control-plane messages, never scheduling order.

use sprint_game::GameConfig;
use sprint_sim::control::{ControlConfig, ControlSim, DetectorConfig};
use sprint_sim::engine::{self, SimConfig};
use sprint_sim::faults::FaultPlan;
use sprint_sim::policies::GrimTrigger;
use sprint_sim::runner::{self, AdversaryReport};
use sprint_sim::scenario::Scenario;
use sprint_sim::{AdversaryKind, AdversaryMix};
use sprint_telemetry::{Event, SanctionLevel, Telemetry};
use sprint_workloads::Benchmark;

fn defended_sim(agents: u32, epochs: usize) -> ControlSim {
    let game = GameConfig::builder()
        .n_agents(agents)
        .n_min(f64::from(agents) * 0.25)
        .n_max(f64::from(agents) * 0.75)
        .build()
        .unwrap();
    let density = Benchmark::DecisionTree.utility_density(256).unwrap();
    ControlSim::new(game, density, epochs).unwrap()
}

fn greedy(fraction: f64) -> AdversaryMix {
    AdversaryMix::greedy(fraction, 23)
}

/// Revoke → probation → renewal: defectors that stand down after the
/// first revocation window must complete probation and be readmitted,
/// never permanently excluded — all under lossy transport and noisy
/// sensors.
#[test]
fn ceasefire_walks_revocation_probation_and_readmission() {
    let mix = AdversaryMix {
        ceasefire_epoch: Some(120),
        ..greedy(0.15)
    };
    // Zero free warnings so the first detection revokes directly, and a
    // long revocation so probation starts well after the ceasefire — the
    // probation window is then clean and must end in readmission.
    let detector = DetectorConfig {
        max_warnings: 0,
        revocation_epochs: 60,
        ..DetectorConfig::default()
    };
    let sim = defended_sim(40, 500)
        .with_faults(FaultPlan::adversary_chaos(7))
        .with_adversaries(mix)
        .with_detector(detector);
    let mut kit = Telemetry::in_memory();
    let report = sim.run(5, &mut kit).unwrap();
    let d = report.defense.expect("detector attached");

    assert_eq!(d.adversaries, 6);
    assert!(d.detections > 0, "defectors must be detected: {d:?}");
    assert!(d.revocations > 0, "detections must escalate to revocation");
    assert!(
        d.readmissions > 0,
        "ceasefire must let probation complete: {d:?}"
    );
    assert_eq!(
        d.exclusions, 0,
        "a defector that stands down must not be permanently excluded"
    );
    let lifted: Vec<bool> = kit
        .events()
        .unwrap()
        .iter()
        .filter_map(|e| match *e {
            Event::SanctionLifted { probation, .. } => Some(probation),
            _ => None,
        })
        .collect();
    assert!(
        lifted.contains(&true) && lifted.contains(&false),
        "both revocation-expiry (to probation) and probation-completion \
         lifts must be emitted: {lifted:?}"
    );
}

/// Revoke → expiry → re-detection → permanent exclusion: persistent
/// defectors must strike out, and the power-gate veto must have blocked
/// sprints along the way. No honest agent may be permanently excluded.
#[test]
fn persistent_defectors_strike_out_to_permanent_exclusion() {
    let sim = defended_sim(40, 800)
        .with_faults(FaultPlan::adversary_chaos(9))
        .with_adversaries(greedy(0.1))
        .with_detector(DetectorConfig::default());
    let mut kit = Telemetry::in_memory();
    let report = sim.run(3, &mut kit).unwrap();
    let d = report.defense.expect("detector attached");

    assert_eq!(d.adversaries, 4);
    assert!(
        d.exclusions > 0,
        "persistent defectors must eventually strike out: {d:?}"
    );
    assert_eq!(d.false_positive_exclusions, 0);
    assert!(
        d.vetoed_sprints > 0,
        "revoked defectors keep trying; the power gate must veto"
    );

    // The event stream walks a consistent ladder per agent: a
    // revocation requires a prior warning, an exclusion a prior
    // revocation, and every lift a preceding revocation.
    let mut warned = [0u32; 40];
    let mut revoked = [0u32; 40];
    for e in kit.events().unwrap() {
        match *e {
            Event::SanctionApplied { agent, level, .. } => match level {
                SanctionLevel::Warning => warned[agent as usize] += 1,
                SanctionLevel::Revocation => {
                    assert!(
                        warned[agent as usize] > 0,
                        "agent {agent} revoked without a warning"
                    );
                    revoked[agent as usize] += 1;
                }
                SanctionLevel::Exclusion => {
                    assert!(
                        revoked[agent as usize] > 0,
                        "agent {agent} excluded without a revocation"
                    );
                }
            },
            Event::SanctionLifted { agent, .. } => {
                assert!(
                    revoked[agent as usize] > 0,
                    "agent {agent} had a sanction lifted that was never applied"
                );
            }
            _ => {}
        }
    }
}

/// Detection evidence must come from control-plane sensor reports, not
/// engine ground truth: with every report lost in transit, the detector
/// can never fire.
#[test]
fn detector_is_blind_without_transport() {
    let mut plan = FaultPlan::adversary_chaos(11);
    plan.transport.as_mut().unwrap().loss_probability = 1.0;
    let sim = defended_sim(30, 300)
        .with_faults(plan)
        .with_adversaries(greedy(0.1))
        .with_detector(DetectorConfig::default());
    let report = sim.run(2, &mut Telemetry::noop()).unwrap();
    let d = report.defense.expect("detector attached");
    assert_eq!(
        d.detections, 0,
        "no sensor report delivered, so nothing to detect: {d:?}"
    );
    assert_eq!(d.false_negatives, d.adversaries);
}

/// Same seed, same configuration → byte-identical reports, with
/// adversaries and enforcement enabled.
#[test]
fn defense_reports_are_deterministic() {
    let sim = defended_sim(35, 400)
        .with_faults(FaultPlan::adversary_chaos(13))
        .with_adversaries(AdversaryMix {
            kind: AdversaryKind::StochasticCheater {
                cheat_probability: 0.4,
            },
            fraction: 0.2,
            seed: 31,
            ceasefire_epoch: None,
        })
        .with_detector(DetectorConfig::default());
    let a = sim.run(17, &mut Telemetry::noop()).unwrap();
    let b = sim.run(17, &mut Telemetry::noop()).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
    let seeds = [1, 2, 3];
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 40, 300).unwrap();
    let run = || {
        runner::adversary_defense(
            &scenario,
            FaultPlan::adversary_chaos(5),
            ControlConfig::default(),
            DetectorConfig::default(),
            greedy(0.1),
            &seeds,
            &mut Telemetry::noop(),
        )
        .unwrap()
    };
    assert_eq!(
        serde_json::to_string(&run()).unwrap(),
        serde_json::to_string(&run()).unwrap()
    );
}

/// Every adversary kind is detectable and no honest agent is ever
/// permanently excluded while the zoo misbehaves.
#[test]
fn every_adversary_kind_is_caught_without_permanent_false_positives() {
    for mut kind in AdversaryKind::ALL {
        if let AdversaryKind::FictitiousPlay { pivot } = &mut kind {
            // The representative pivot tracks the paper's trip rates; at
            // this rack's actual trip frequency the learner would settle
            // into conformance and legitimately evade detection. Raise
            // the pivot so it stays aggressive for the whole run.
            *pivot = 0.5;
        }
        let sim = defended_sim(40, 600)
            .with_faults(FaultPlan::adversary_chaos(3))
            .with_adversaries(AdversaryMix {
                kind,
                fraction: 0.1,
                seed: 41,
                ceasefire_epoch: None,
            })
            .with_detector(DetectorConfig::default());
        let report = sim.run(9, &mut Telemetry::noop()).unwrap();
        let d = report.defense.expect("detector attached");
        assert!(
            d.detections > 0,
            "{} must be detectable: {d:?}",
            kind.name()
        );
        assert_eq!(
            d.false_positive_exclusions,
            0,
            "{} run permanently excluded an honest agent",
            kind.name()
        );
    }
}

fn assert_acceptance(report: &AdversaryReport) {
    assert!(
        report.recovery_ratio >= 0.95,
        "graduated enforcement must restore ≥ 95% of honest throughput, got {:.4} \
         (honest {:.4}, unenforced {:.4}, enforced {:.4})",
        report.recovery_ratio,
        report.honest_throughput,
        report.unenforced_throughput,
        report.enforced_throughput,
    );
    assert_eq!(
        report.false_positive_exclusions, 0,
        "no honest agent may ever be permanently excluded"
    );
}

/// Scaled-down acceptance: 10 % greedy defectors under sensor noise and
/// transport faults, 25 trials (the CI job runs the ignored 500-trial
/// variant).
#[test]
fn adversary_defense_suite_smoke() {
    let seeds: Vec<u64> = (1..=25).collect();
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 100, 1_000).unwrap();
    let report = runner::adversary_defense(
        &scenario,
        FaultPlan::adversary_chaos(17),
        ControlConfig::default(),
        DetectorConfig::default(),
        greedy(0.1),
        &seeds,
        &mut Telemetry::noop(),
    )
    .unwrap();
    assert_acceptance(&report);
}

/// The full acceptance matrix: 500 trials of 10 % greedy defectors with
/// sensor noise and transport faults. Run by the CI adversary-smoke job
/// (`--ignored --release`).
#[test]
#[ignore = "acceptance scale; run with --ignored --release"]
fn acceptance_adversary_defense_500_trials() {
    let seeds: Vec<u64> = (1..=500).collect();
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 100, 1_000).unwrap();
    let report = runner::adversary_defense(
        &scenario,
        FaultPlan::adversary_chaos(17),
        ControlConfig::default(),
        DetectorConfig::default(),
        greedy(0.1),
        &seeds,
        &mut Telemetry::noop(),
    )
    .unwrap();
    assert_acceptance(&report);
}

/// Grim-trigger detection and ban counts flow end-to-end into the
/// telemetry metrics registry from an engine run.
#[test]
fn grim_trigger_counts_reach_the_metrics_registry() {
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 30, 200).unwrap();
    let thresholds = scenario
        .equilibrium_thresholds(&mut Telemetry::noop())
        .unwrap()
        .thresholds()
        .to_vec();
    let mut policy = GrimTrigger::new(thresholds, &[3, 7], true).unwrap();
    let config = SimConfig::new(*scenario.game(), 200, 5).unwrap();
    let mut streams = scenario.population().spawn_streams(5).unwrap();
    let mut kit = Telemetry::in_memory();
    engine::run(&config, &mut streams, &mut policy, &mut kit).unwrap();

    let snapshot = kit.registry.snapshot();
    let detections = snapshot.counters["policy.grim.detections"];
    let bans = snapshot.counters["policy.grim.bans"];
    assert_eq!(detections, policy.detections());
    assert_eq!(bans, policy.bans());
    assert!(detections > 0, "deviants must be caught in 200 epochs");
    assert_eq!(bans, 2, "both deviants end up banned");
    assert_eq!(snapshot.gauges["policy.grim.banned_agents"], 2.0);
}
