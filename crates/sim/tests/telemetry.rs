//! Telemetry integration tests: the observability layer must be
//! deterministic (same seed ⇒ byte-identical JSONL) and inert (any
//! recorder ⇒ bit-identical simulation results).

use std::io::Write;
use std::sync::{Arc, Mutex};

use sprint_sim::policy::PolicyKind;
use sprint_sim::scenario::Scenario;
use sprint_sim::telemetry::{Event, EventKind, JsonlWriter, SpanProfile, Telemetry};
use sprint_workloads::Benchmark;

/// A `Write` sink whose bytes outlive the recorder that owns it.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn trace_jsonl(scenario: &Scenario, kind: PolicyKind, seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let writer = JsonlWriter::new(buf.clone());
    let mut telemetry = Telemetry::new(Box::new(writer), SpanProfile::deterministic());
    scenario.execute(kind, seed, &mut telemetry).unwrap();
    buf.contents()
}

#[test]
fn identical_seeds_produce_byte_identical_jsonl() {
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 60, 150).unwrap();
    for kind in PolicyKind::ALL {
        let a = trace_jsonl(&scenario, kind, 42);
        let b = trace_jsonl(&scenario, kind, 42);
        assert!(!a.is_empty(), "{kind} trace must contain events");
        assert_eq!(a, b, "{kind} traces must be byte-identical");
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    let scenario = Scenario::homogeneous(Benchmark::Svm, 60, 200).unwrap();
    let a = trace_jsonl(&scenario, PolicyKind::Greedy, 1);
    let b = trace_jsonl(&scenario, PolicyKind::Greedy, 2);
    assert_ne!(a, b);
}

#[test]
fn enabled_telemetry_never_perturbs_the_simulation() {
    let scenario = Scenario::homogeneous(Benchmark::PageRank, 80, 250)
        .unwrap()
        .with_faults(sprint_sim::faults::FaultPlan::composite(7));
    for kind in PolicyKind::ALL {
        let plain = scenario.execute(kind, 19, &mut Telemetry::noop()).unwrap();
        let mut telemetry = Telemetry::in_memory();
        let traced = scenario.execute(kind, 19, &mut telemetry).unwrap();
        assert_eq!(plain, traced, "{kind} result must be bit-identical");
        assert!(telemetry.events().unwrap().len() > 250, "{kind}");
    }
}

#[test]
fn trace_has_expected_shape() {
    let epochs = 120;
    let scenario = Scenario::homogeneous(Benchmark::Kmeans, 50, epochs).unwrap();
    let mut telemetry = Telemetry::in_memory();
    scenario
        .execute(PolicyKind::Greedy, 5, &mut telemetry)
        .unwrap();
    let events = telemetry.events().unwrap();
    assert_eq!(events.first().map(Event::kind), Some(EventKind::RunStart));
    assert_eq!(events.last().map(Event::kind), Some(EventKind::RunEnd));
    let ticks = events
        .iter()
        .filter(|e| e.kind() == EventKind::EpochTick)
        .count();
    assert_eq!(ticks, epochs, "one EpochTick per simulated epoch");

    // The registry's per-epoch series line up with the event stream.
    let sprinters = telemetry
        .registry
        .series_values("engine.sprinters")
        .expect("series registered");
    assert_eq!(sprinters.len(), epochs, "one series sample per epoch");
    assert_eq!(
        telemetry.registry.counter_value("engine.epochs"),
        Some(epochs as u64)
    );

    // Span timings cover the offline solve and the epoch loop.
    for span in ["scenario.solve", "engine.epoch", "engine.decide"] {
        let stats = telemetry.spans.stats(span).unwrap_or_else(|| {
            panic!("span {span} must be recorded");
        });
        assert!(stats.count > 0);
    }
}

#[test]
fn decision_firehose_is_opt_in_by_recorder_filter() {
    let scenario = Scenario::homogeneous(Benchmark::Svm, 40, 80).unwrap();
    let recorder = sprint_sim::telemetry::InMemory::new().without(EventKind::SprintDecision);
    let mut telemetry = Telemetry::new(Box::new(recorder), SpanProfile::deterministic());
    scenario
        .execute(PolicyKind::Greedy, 9, &mut telemetry)
        .unwrap();
    let events = telemetry.events().unwrap();
    assert!(events.iter().all(|e| e.kind() != EventKind::SprintDecision));
    assert!(events.iter().any(|e| e.kind() == EventKind::EpochTick));
}

#[test]
fn ring_backed_engine_stream_is_jobs_invariant() {
    use sprint_sim::telemetry::EventRing;
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 50, 120).unwrap();
    let drain = |jobs: usize| {
        let (mut ring, mut producers) = EventRing::new(1);
        let producer = producers.pop().unwrap();
        let mut kit = Telemetry::new(Box::new(producer), SpanProfile::deterministic());
        scenario
            .execute_jobs(PolicyKind::Greedy, 11, jobs, &mut kit)
            .unwrap();
        assert_eq!(ring.dropped(), 0, "default capacity must not drop");
        ring.drain()
    };
    let serial = drain(1);
    let parallel = drain(4);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "engine emits from one thread: the ring stream is identical at every job count"
    );
    let bytes = |events: &[Event]| {
        events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(bytes(&serial), bytes(&parallel));
}

#[test]
fn worker_local_registries_merge_across_sweep_threads() {
    use sprint_sim::telemetry::Registry;
    // The sweep pattern: each worker records into a thread-local
    // registry, the coordinator folds them in after join. Totals must
    // not depend on which worker saw which trial.
    let partials: Vec<Registry> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|w| {
                scope.spawn(move || {
                    let mut r = Registry::new();
                    let c = r.counter("sweep.trials");
                    r.inc(c, w + 1);
                    let h = r.histogram("trial.nanos", &[10.0, 100.0]);
                    r.observe(h, 5.0);
                    r.observe(h, 50.0);
                    let s = r.series("worker.tasks");
                    r.push(s, w as f64);
                    r
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut main = Registry::new();
    for partial in &partials {
        main.merge(partial);
    }
    assert_eq!(main.counter_value("sweep.trials"), Some(10));
    let snapshot = main.snapshot();
    let hist = snapshot.histograms.get("trial.nanos").unwrap();
    assert_eq!(hist.count(), 8);
    assert_eq!(hist.sum(), 220.0);
    assert_eq!(
        hist.counts(),
        &[4, 4, 0],
        "per-bucket counts (incl. overflow) fold elementwise"
    );
    let series = main.series_values("worker.tasks").unwrap();
    assert_eq!(series.len(), 4, "series samples append across workers");
    assert_eq!(series.iter().sum::<f64>(), 6.0);
}
