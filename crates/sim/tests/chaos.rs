//! Chaos suite: fault injection and graceful degradation at rack scale.
//!
//! The resilience contract for the sprinting rack: every policy finishes
//! every fault plan without a panic, runs stay bit-reproducible under a
//! fixed seed, and the equilibrium threshold keeps its edge over Greedy
//! even when agents crash, sprinters stick, sensors lie, the breaker
//! drifts, and the coordinator solves for a stale population.

use sprint_sim::faults::{BreakerDrift, CoordinatorStaleness, CrashChurn, SensorFault};
use sprint_sim::policy::PolicyKind;
use sprint_sim::scenario::Scenario;
use sprint_sim::telemetry::Telemetry;
use sprint_sim::FaultPlan;
use sprint_workloads::Benchmark;

#[test]
fn all_policies_survive_composite_faults_at_rack_scale() {
    // The acceptance run: 1000 agents, 10k epochs, every paper policy,
    // every fault class active at once. Completing without a panic IS the
    // assertion; the throughput checks confirm degradation stays graceful.
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 1000, 10_000)
        .unwrap()
        .with_faults(FaultPlan::composite(42));
    let mut tasks = Vec::new();
    for kind in PolicyKind::ALL {
        let r = scenario.execute(kind, 11, &mut Telemetry::noop()).unwrap();
        assert!(
            r.tasks_per_agent_epoch() > 0.0,
            "{kind} must still make progress under composite faults"
        );
        assert!(
            !r.faults().is_clean(),
            "{kind} must record fault activity under the composite plan"
        );
        tasks.push((kind, r.tasks_per_agent_epoch()));
    }
    let get = |k: PolicyKind| tasks.iter().find(|(p, _)| *p == k).unwrap().1;
    let greedy = get(PolicyKind::Greedy);
    let et = get(PolicyKind::EquilibriumThreshold);
    assert!(
        et > greedy,
        "E-T ({et:.4}) must beat Greedy ({greedy:.4}) even under faults"
    );
}

#[test]
fn faulted_runs_are_bit_reproducible() {
    // Same seed + same active fault plan => bit-identical results, down
    // to the serialized representation.
    let scenario = Scenario::homogeneous(Benchmark::Svm, 150, 400)
        .unwrap()
        .with_faults(FaultPlan::composite(7));
    for kind in PolicyKind::ALL {
        let a = scenario.execute(kind, 99, &mut Telemetry::noop()).unwrap();
        let b = scenario.execute(kind, 99, &mut Telemetry::noop()).unwrap();
        assert_eq!(a, b, "{kind} must be deterministic under faults");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "{kind} serializations must be bit-identical"
        );
    }
}

#[test]
fn inactive_plan_is_rng_neutral() {
    // A plan with no enabled components must reproduce the fault-free
    // run exactly, regardless of its seed: fault randomness is drawn
    // only when a fault is actually configured.
    let base = Scenario::homogeneous(Benchmark::Svm, 120, 300).unwrap();
    let with_empty_plan = base.clone().with_faults(FaultPlan {
        seed: 0xDEAD_BEEF,
        ..FaultPlan::none()
    });
    for kind in PolicyKind::ALL {
        let clean = base.execute(kind, 77, &mut Telemetry::noop()).unwrap();
        let empty = with_empty_plan
            .execute(kind, 77, &mut Telemetry::noop())
            .unwrap();
        assert_eq!(clean, empty, "{kind}: empty plan must not perturb the run");
        assert!(empty.faults().is_clean());
    }
}

#[test]
fn occupancy_accounts_for_crashed_agents() {
    // Crashed agents leave the occupancy ledger; the invariant is
    // occupancy + crashed-agent-epochs == agents * epochs.
    let n = 200u32;
    let epochs = 500usize;
    let plan = FaultPlan {
        seed: 3,
        crash: Some(CrashChurn {
            crash_probability: 0.01,
            p_restart_stay: 0.7,
            reacquire_epochs: 2,
        }),
        ..FaultPlan::none()
    };
    let scenario = Scenario::homogeneous(Benchmark::Kmeans, n, epochs)
        .unwrap()
        .with_faults(plan);
    let r = scenario
        .execute(PolicyKind::Greedy, 5, &mut Telemetry::noop())
        .unwrap();
    let f = r.faults();
    assert!(f.crashes > 0, "crash churn must actually crash agents");
    assert!(f.restarts > 0, "crashed agents must come back");
    assert_eq!(
        r.occupancy().total() + f.crashed_agent_epochs,
        u64::from(n) * epochs as u64,
        "every agent-epoch is either occupied or crashed"
    );
}

#[test]
fn per_fault_counters_record_each_class() {
    let base = Scenario::homogeneous(Benchmark::DecisionTree, 150, 400).unwrap();

    let stuck = base
        .clone()
        .with_faults(FaultPlan {
            seed: 1,
            stuck: Some(sprint_sim::faults::StuckSprinters {
                stick_probability: 0.2,
                p_stuck_stay: 0.8,
            }),
            ..FaultPlan::none()
        })
        .execute(PolicyKind::Greedy, 4, &mut Telemetry::noop())
        .unwrap();
    assert!(
        stuck.faults().stuck_epochs > 0,
        "stuck sprinters must register"
    );

    let sensor = base
        .clone()
        .with_faults(FaultPlan {
            seed: 1,
            sensor: Some(SensorFault {
                relative_sd: 0.1,
                dropout_probability: 0.05,
            }),
            ..FaultPlan::none()
        })
        .execute(PolicyKind::Greedy, 4, &mut Telemetry::noop())
        .unwrap();
    assert!(
        sensor.faults().sensor_dropouts > 0,
        "sensor dropouts must register"
    );

    // A breaker whose band drifted well below the solver's assumption
    // trips at sprinter counts the nominal model calls safe. E-T holds
    // the rack just under the nominal N_min — squarely inside the
    // drifted trip band — so those trips register as spurious.
    let drift = base
        .clone()
        .with_faults(FaultPlan {
            seed: 1,
            breaker_drift: Some(BreakerDrift { band_shift: -0.5 }),
            ..FaultPlan::none()
        })
        .execute(PolicyKind::EquilibriumThreshold, 4, &mut Telemetry::noop())
        .unwrap();
    assert!(
        drift.faults().spurious_trips > 0,
        "a -50% band drift must produce trips the nominal curve rules out"
    );
}

#[test]
fn stale_coordinator_shifts_the_equilibrium() {
    // Thresholds solved for a 30% larger population are more cautious,
    // so the realized dynamics must differ from the fresh solve.
    let base = Scenario::homogeneous(Benchmark::DecisionTree, 200, 600).unwrap();
    let stale = base.clone().with_faults(FaultPlan {
        seed: 1,
        staleness: Some(CoordinatorStaleness {
            population_factor: 1.3,
        }),
        ..FaultPlan::none()
    });
    let fresh_run = base
        .execute(PolicyKind::EquilibriumThreshold, 9, &mut Telemetry::noop())
        .unwrap();
    let stale_run = stale
        .execute(PolicyKind::EquilibriumThreshold, 9, &mut Telemetry::noop())
        .unwrap();
    assert_ne!(
        fresh_run.sprinters_per_epoch(),
        stale_run.sprinters_per_epoch(),
        "stale population must change the realized sprint pattern"
    );
    // Degradation is graceful: the stale equilibrium still makes progress.
    assert!(stale_run.tasks_per_agent_epoch() > 0.0);
}
