//! Simulator-level integration tests: determinism, stationarity, and
//! policy behavior over long horizons.

use sprint_sim::policy::PolicyKind;
use sprint_sim::runner::compare;
use sprint_sim::scenario::Scenario;
use sprint_sim::telemetry::Telemetry;
use sprint_stats::summary::OnlineStats;
use sprint_workloads::Benchmark;

#[test]
fn runs_are_bit_reproducible_across_invocations() {
    let scenario = Scenario::homogeneous(Benchmark::Svm, 120, 300).unwrap();
    for kind in PolicyKind::ALL {
        let a = scenario.execute(kind, 77, &mut Telemetry::noop()).unwrap();
        let b = scenario.execute(kind, 77, &mut Telemetry::noop()).unwrap();
        assert_eq!(a, b, "{kind} must be deterministic under a fixed seed");
    }
}

#[test]
fn different_seeds_produce_different_dynamics() {
    // Enough agents that finite-N band-brushing trips (heavy-tailed via
    // geometric recovery) do not dominate seed-to-seed throughput.
    let scenario = Scenario::homogeneous(Benchmark::Svm, 400, 800).unwrap();
    let a = scenario
        .execute(PolicyKind::EquilibriumThreshold, 1, &mut Telemetry::noop())
        .unwrap();
    let b = scenario
        .execute(PolicyKind::EquilibriumThreshold, 2, &mut Telemetry::noop())
        .unwrap();
    assert_ne!(a.sprinters_per_epoch(), b.sprinters_per_epoch());
    // But aggregate throughput is stable across seeds (stationarity).
    let rel =
        (a.tasks_per_agent_epoch() - b.tasks_per_agent_epoch()).abs() / a.tasks_per_agent_epoch();
    assert!(rel < 0.05, "throughput varies {rel:.3} across seeds");
}

#[test]
fn equilibrium_sprinter_series_is_stationary() {
    // Figure 6: E-T produces a flat series. Split the horizon into
    // quarters; their means must agree within a few percent.
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 400, 800).unwrap();
    let r = scenario
        .execute(PolicyKind::EquilibriumThreshold, 5, &mut Telemetry::noop())
        .unwrap();
    let series: Vec<f64> = r
        .sprinters_per_epoch()
        .iter()
        .map(|&s| f64::from(s))
        .collect();
    let quarter = series.len() / 4;
    let means: Vec<f64> = series
        .chunks(quarter)
        .take(4)
        .map(|c| c.iter().copied().collect::<OnlineStats>().mean())
        .collect();
    let overall = series.iter().copied().collect::<OnlineStats>().mean();
    for (i, m) in means.iter().enumerate() {
        assert!(
            (m - overall).abs() / overall < 0.08,
            "quarter {i}: mean {m:.1} vs overall {overall:.1}"
        );
    }
}

#[test]
fn backoff_stabilizes_after_initial_trips() {
    // E-B learns from early emergencies: the second half of the run must
    // trip much less than the first.
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 300, 1000).unwrap();
    let r = scenario
        .execute(PolicyKind::ExponentialBackoff, 7, &mut Telemetry::noop())
        .unwrap();
    let series = r.sprinters_per_epoch();
    // Count epochs at the rack ceiling (everyone sprinting = the greedy
    // signature) in each half.
    let n = series.len() / 2;
    let saturated = |s: &[u32]| s.iter().filter(|&&x| x == 300).count();
    assert!(
        saturated(&series[n..]) <= saturated(&series[..n]),
        "backoff must not get more aggressive over time"
    );
    assert!(r.trips() < 40, "E-B trips = {}", r.trips());
}

#[test]
fn comparison_is_deterministic_despite_parallelism() {
    // The parallel runner must produce identical aggregates regardless of
    // thread scheduling.
    let scenario = Scenario::homogeneous(Benchmark::Kmeans, 80, 200).unwrap();
    let a = compare(&scenario, &PolicyKind::ALL, &[3, 4], &mut Telemetry::noop()).unwrap();
    let b = compare(&scenario, &PolicyKind::ALL, &[3, 4], &mut Telemetry::noop()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn longer_horizons_do_not_change_the_verdict() {
    // The E-T > G ordering is not an artifact of the horizon length.
    let short = Scenario::homogeneous(Benchmark::PageRank, 150, 200).unwrap();
    let long = Scenario::homogeneous(Benchmark::PageRank, 150, 1600).unwrap();
    for scenario in [short, long] {
        let g = scenario
            .execute(PolicyKind::Greedy, 9, &mut Telemetry::noop())
            .unwrap();
        let et = scenario
            .execute(PolicyKind::EquilibriumThreshold, 9, &mut Telemetry::noop())
            .unwrap();
        assert!(
            et.tasks_per_agent_epoch() > 2.0 * g.tasks_per_agent_epoch(),
            "E-T {} vs G {} at {} epochs",
            et.tasks_per_agent_epoch(),
            g.tasks_per_agent_epoch(),
            scenario.epochs()
        );
    }
}
