//! Sweep-engine integration tests: the parallel sweep must be a pure
//! function of its spec — same spec, any job count, byte-identical
//! aggregate JSON — and must pay for each distinct game's equilibrium
//! solve exactly once.

use sprint_sim::sweep::{run_sweep, GameVariant, PopulationSpec, SweepSpec};
use sprint_sim::telemetry::Telemetry;
use sprint_sim::{PolicyKind, RunOptions};
use sprint_workloads::Benchmark;

fn spec() -> SweepSpec {
    let mut hot = GameVariant::paper("hot");
    hot.p_cooling = 0.70;
    SweepSpec {
        games: vec![GameVariant::paper("paper"), hot],
        populations: vec![PopulationSpec::homogeneous(Benchmark::Svm, 50)],
        plans: Vec::new(),
        adversaries: Vec::new(),
        policies: vec![PolicyKind::Greedy, PolicyKind::EquilibriumThreshold],
        seeds: vec![11, 12, 13, 14],
        epochs: 80,
        options: RunOptions::default(),
    }
}

#[test]
fn fixed_seed_sweep_is_byte_identical_across_job_counts() {
    let spec = spec();
    let serial = run_sweep(&spec, 1, &mut Telemetry::noop()).unwrap();
    let json_serial = serde_json::to_string(&serial).unwrap();
    for jobs in [2, 4, 8] {
        let parallel = run_sweep(&spec, jobs, &mut Telemetry::noop()).unwrap();
        assert_eq!(
            json_serial,
            serde_json::to_string(&parallel).unwrap(),
            "jobs={jobs} must serialize byte-identically to jobs=1"
        );
    }
}

#[test]
fn each_distinct_game_solves_once() {
    let spec = spec();
    let mut kit = Telemetry::in_memory();
    let report = run_sweep(&spec, 4, &mut kit).unwrap();
    assert_eq!(report.trials, 16);
    // 2 games × 4 E-T seeds = 8 solve requests against 2 distinct keys;
    // the warm pre-pass takes the 2 misses, so every trial request hits.
    assert_eq!(
        kit.registry.counter_value("cache.equilibrium.misses"),
        Some(2)
    );
    assert_eq!(
        kit.registry.counter_value("cache.equilibrium.hits"),
        Some(8)
    );
    assert_eq!(
        kit.registry.gauge_value("cache.equilibrium.entries"),
        Some(2.0)
    );
}

#[test]
fn sweep_records_match_unified_single_runs() {
    use sprint_sim::scenario::Scenario;

    let spec = spec();
    let report = run_sweep(&spec, 2, &mut Telemetry::noop()).unwrap();
    let record = &report.records[0];
    assert_eq!(record.policy, PolicyKind::Greedy);
    let scenario = Scenario::homogeneous(Benchmark::Svm, 50, spec.epochs).unwrap();
    let single = scenario
        .execute(PolicyKind::Greedy, record.seed, &mut Telemetry::noop())
        .unwrap();
    assert_eq!(
        record.tasks_per_agent_epoch,
        single.tasks_per_agent_epoch(),
        "a sweep trial must reproduce the equivalent single run bit-for-bit"
    );
    assert_eq!(record.trips, single.trips());
}
