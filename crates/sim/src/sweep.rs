//! Parallel parameter sweeps over the paper's design space.
//!
//! The paper explores Table 2's parameters (`N`, `p_c`, `p_r`, `δ`),
//! benchmark mixes (Figs. 7–10), policies, and fault plans by re-solving
//! Algorithm 1 and re-simulating for every point. A [`SweepSpec`]
//! declares that grid once — games × populations × fault plans ×
//! policies × seeds — and [`run_sweep`] expands it into trials and
//! executes them on a pool of scoped worker threads sized to the
//! available cores.
//!
//! Two properties are load-bearing:
//!
//! - **Byte-reproducible aggregates.** Workers pull trial indices from an
//!   atomic counter and write results into a slot-per-trial table, so
//!   completion order never reaches the output: the same spec serializes
//!   to the same bytes at `--jobs 1` and `--jobs N`. Wall-clock facts
//!   (trial durations, job count, cache counters) go to the telemetry
//!   kit, never into the report.
//! - **Solve memoization.** Every E-T trial resolves its equilibrium
//!   through a shared [`EquilibriumCache`]: trials that vary only
//!   simulation-side knobs (seeds, faults, policies) pay for Algorithm 1
//!   once per distinct game, and cached results are bit-identical to
//!   fresh solves.
//!
//! Trials use only the unified telemetry-carrying API ([`engine::run`],
//! [`Scenario::policy`], [`Scenario::equilibrium_policy_cached`]).
//!
//! Trials run **supervised** ([`Supervision`]): each gets an optional
//! wall-clock deadline (enforced cooperatively at the engine's epoch
//! checkpoints) and a bounded retry budget, and a trial that still
//! panics or errors after its retries is *quarantined* into
//! [`SweepReport::quarantined`] instead of failing the whole sweep.
//! Quarantine preserves byte-reproducibility: records keep expansion
//! order, aggregation groups cells by label rather than position, and
//! the quarantine list is ordered by trial id for every `--jobs`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use sprint_game::{EquilibriumCache, GameConfig};
use sprint_stats::summary::{confidence_interval_95, ConfidenceInterval, OnlineStats};
use sprint_telemetry::{Event, EventRing, Recorder, RingConfig, Telemetry, WorkerHealth};
use sprint_workloads::generator::Population;
use sprint_workloads::Benchmark;

use crate::engine::{self, RunOptions, SimConfig};
use crate::metrics::SimResult;
use crate::policies::{AdversarialPopulation, AdversaryMix};
use crate::policy::{PolicyKind, SprintPolicy};
use crate::runner::NamedPlan;
use crate::scenario::{Scenario, SolveSummary};
use crate::SimError;

/// One point on the sweep's game axis: breaker band as a fraction of the
/// population (so one variant scales across population sizes), plus the
/// Markov persistences and discount.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GameVariant {
    /// Display name (unique within a spec).
    pub name: String,
    /// `N_min` as a fraction of the population (paper: 0.25).
    pub n_min_frac: f64,
    /// `N_max` as a fraction of the population (paper: 0.75).
    pub n_max_frac: f64,
    /// Cooling-state persistence `p_c`.
    pub p_cooling: f64,
    /// Recovery-state persistence `p_r`.
    pub p_recovery: f64,
    /// Discount factor `δ`.
    pub discount: f64,
}

impl GameVariant {
    /// The Table-2 variant under `name`.
    #[must_use]
    pub fn paper(name: impl Into<String>) -> Self {
        let g = GameConfig::paper_defaults();
        GameVariant {
            name: name.into(),
            n_min_frac: g.n_min() / f64::from(g.n_agents()),
            n_max_frac: g.n_max() / f64::from(g.n_agents()),
            p_cooling: g.p_cooling(),
            p_recovery: g.p_recovery(),
            discount: g.discount(),
        }
    }

    /// Instantiate the variant for a concrete population size.
    ///
    /// # Errors
    ///
    /// Propagates [`GameConfig`] builder validation.
    pub fn build(&self, agents: u32) -> crate::Result<GameConfig> {
        GameConfig::builder()
            .n_agents(agents)
            .n_min(f64::from(agents) * self.n_min_frac)
            .n_max(f64::from(agents) * self.n_max_frac)
            .p_cooling(self.p_cooling)
            .p_recovery(self.p_recovery)
            .discount(self.discount)
            .build()
            .map_err(Into::into)
    }
}

/// One point on the sweep's population axis: benchmarks by name (a single
/// name is a homogeneous rack; several are split round-robin).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PopulationSpec {
    /// Display name (unique within a spec).
    pub name: String,
    /// Benchmark names (see [`Benchmark::from_name`]).
    pub benchmarks: Vec<String>,
    /// Rack size.
    pub agents: u32,
}

impl PopulationSpec {
    /// A homogeneous population of `agents` × `benchmark`.
    #[must_use]
    pub fn homogeneous(benchmark: Benchmark, agents: u32) -> Self {
        PopulationSpec {
            name: benchmark.name().to_string(),
            benchmarks: vec![benchmark.name().to_string()],
            agents,
        }
    }

    fn resolve(&self) -> crate::Result<Population> {
        let benchmarks: Vec<Benchmark> = self
            .benchmarks
            .iter()
            .map(|name| {
                Benchmark::from_name(name).ok_or(SimError::InvalidParameter {
                    name: "benchmarks",
                    value: 0.0,
                    expected: "benchmark names known to sprint_workloads",
                })
            })
            .collect::<crate::Result<_>>()?;
        match benchmarks.as_slice() {
            [] => Err(SimError::InvalidParameter {
                name: "benchmarks",
                value: 0.0,
                expected: "at least one benchmark name",
            }),
            [only] => Population::homogeneous(*only, self.agents as usize).map_err(Into::into),
            many => Population::heterogeneous(many, self.agents as usize).map_err(Into::into),
        }
    }
}

/// One point on the sweep's adversary axis: a named [`AdversaryMix`]
/// applied to every policy trial (the label `"honest"` with a zero
/// fraction is the clean default).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NamedAdversaries {
    /// Display name (unique within a spec).
    pub name: String,
    /// The adversary population specification.
    pub mix: AdversaryMix,
}

impl NamedAdversaries {
    /// The clean default: no adversaries.
    #[must_use]
    pub fn honest() -> Self {
        NamedAdversaries {
            name: "honest".to_string(),
            mix: AdversaryMix::honest(),
        }
    }
}

/// A declarative sweep: the cartesian product
/// `games × populations × plans × adversaries × policies × seeds`,
/// expanded in exactly that axis order (seeds fastest) into trials
/// numbered from 0.
///
/// An empty `plans` list means one unnamed clean entry that keeps
/// `options.faults`; every listed plan *overrides* `options.faults` for
/// its trials. An empty `adversaries` list means one honest entry.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SweepSpec {
    /// The game axis.
    pub games: Vec<GameVariant>,
    /// The population axis.
    pub populations: Vec<PopulationSpec>,
    /// The fault-plan axis (may be empty; see above).
    pub plans: Vec<NamedPlan>,
    /// The adversary axis (may be empty; see above).
    pub adversaries: Vec<NamedAdversaries>,
    /// The policy axis.
    pub policies: Vec<PolicyKind>,
    /// The seed axis.
    pub seeds: Vec<u64>,
    /// Simulated epochs per trial.
    pub epochs: usize,
    /// Shared run options (recovery/interruption/estimation/stagger and
    /// the default fault plan).
    pub options: RunOptions,
}

/// Read a required field of a hand-written `Deserialize` impl.
fn de_required<T: serde::Deserialize>(
    obj: &[(String, serde::Value)],
    name: &str,
    parent: &str,
) -> Result<T, serde::DeError> {
    match serde::__field(obj, name) {
        Some(v) => T::from_value(v),
        None => Err(serde::DeError::custom(format!(
            "missing field `{name}` in `{parent}`"
        ))),
    }
}

/// Read an optional field, substituting `default` when absent — the
/// back-compat hook for reports and specs written before the field
/// existed.
fn de_or<T: serde::Deserialize>(
    obj: &[(String, serde::Value)],
    name: &str,
    default: T,
) -> Result<T, serde::DeError> {
    match serde::__field(obj, name) {
        Some(v) => T::from_value(v),
        None => Ok(default),
    }
}

// Hand-written so specs written before the adversary axis (no
// `adversaries` field) keep parsing: an absent axis means all-honest.
impl serde::Deserialize for SweepSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let Some(obj) = value.as_object() else {
            return Err(serde::DeError::type_mismatch("object", value));
        };
        Ok(SweepSpec {
            games: de_required(obj, "games", "SweepSpec")?,
            populations: de_required(obj, "populations", "SweepSpec")?,
            plans: de_required(obj, "plans", "SweepSpec")?,
            adversaries: de_or(obj, "adversaries", Vec::new())?,
            policies: de_required(obj, "policies", "SweepSpec")?,
            seeds: de_required(obj, "seeds", "SweepSpec")?,
            epochs: de_required(obj, "epochs", "SweepSpec")?,
            options: de_required(obj, "options", "SweepSpec")?,
        })
    }
}

impl SweepSpec {
    /// A ready-to-edit example spec: the acceptance sweep — 4 game
    /// variants × 1 population × 4 policies × 4 seeds = 64 trials.
    #[must_use]
    pub fn example() -> Self {
        let paper = GameVariant::paper("paper");
        let mut tight_band = GameVariant::paper("tight-band");
        tight_band.n_min_frac = 0.15;
        tight_band.n_max_frac = 0.60;
        let mut slow_cooling = GameVariant::paper("slow-cooling");
        slow_cooling.p_cooling = 0.75;
        let mut fast_recovery = GameVariant::paper("fast-recovery");
        fast_recovery.p_recovery = 0.70;
        SweepSpec {
            games: vec![paper, tight_band, slow_cooling, fast_recovery],
            populations: vec![PopulationSpec::homogeneous(Benchmark::DecisionTree, 100)],
            plans: Vec::new(),
            adversaries: Vec::new(),
            policies: PolicyKind::ALL.to_vec(),
            seeds: vec![1, 2, 3, 4],
            epochs: 200,
            options: RunOptions::default(),
        }
    }

    /// Trials this spec expands to.
    #[must_use]
    pub fn trial_count(&self) -> usize {
        self.games.len()
            * self.populations.len()
            * self.plans.len().max(1)
            * self.adversaries.len().max(1)
            * self.policies.len()
            * self.seeds.len()
    }

    fn validate(&self) -> crate::Result<()> {
        let axes: [(&str, usize); 4] = [
            ("games", self.games.len()),
            ("populations", self.populations.len()),
            ("policies", self.policies.len()),
            ("seeds", self.seeds.len()),
        ];
        for (name, len) in axes {
            if len == 0 {
                return Err(SimError::InvalidParameter {
                    name,
                    value: 0.0,
                    expected: "a non-empty sweep axis",
                });
            }
        }
        if self.epochs == 0 {
            return Err(SimError::InvalidParameter {
                name: "epochs",
                value: 0.0,
                expected: "at least one epoch",
            });
        }
        for plan in &self.plans {
            plan.plan.validate()?;
        }
        for named in &self.adversaries {
            named.mix.validate()?;
        }
        // Resolve populations eagerly so configuration mistakes fail the
        // sweep up front; quarantine is reserved for runtime failures.
        for population in &self.populations {
            population.resolve()?;
        }
        self.options.faults.validate()?;
        Ok(())
    }

    /// The plan axis with the empty-list default applied.
    fn effective_plans(&self) -> Vec<NamedPlan> {
        if self.plans.is_empty() {
            vec![NamedPlan {
                name: "none".to_string(),
                plan: self.options.faults,
            }]
        } else {
            self.plans.clone()
        }
    }

    /// The adversary axis with the empty-list default applied.
    fn effective_adversaries(&self) -> Vec<NamedAdversaries> {
        if self.adversaries.is_empty() {
            vec![NamedAdversaries::honest()]
        } else {
            self.adversaries.clone()
        }
    }

    fn expand(&self, plans: &[NamedPlan], adversaries: &[NamedAdversaries]) -> Vec<Trial> {
        let mut trials = Vec::with_capacity(self.trial_count());
        for game in 0..self.games.len() {
            for population in 0..self.populations.len() {
                for plan in 0..plans.len() {
                    for adversary in 0..adversaries.len() {
                        for policy in 0..self.policies.len() {
                            for &seed in &self.seeds {
                                trials.push(Trial {
                                    id: trials.len(),
                                    game,
                                    population,
                                    plan,
                                    adversary,
                                    policy,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        trials
    }
}

/// One expanded grid point (indices into the spec's axes).
#[derive(Debug, Clone, Copy)]
struct Trial {
    id: usize,
    game: usize,
    population: usize,
    plan: usize,
    adversary: usize,
    policy: usize,
    seed: u64,
}

/// The outcome of one trial.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SweepRecord {
    /// Trial index in expansion order.
    pub trial: usize,
    /// Game variant name.
    pub game: String,
    /// Population name.
    pub population: String,
    /// Fault-plan name (`"none"` for the clean default).
    pub plan: String,
    /// Adversary-mix name (`"honest"` for the clean default).
    pub adversaries: String,
    /// The policy.
    pub policy: PolicyKind,
    /// The seed.
    pub seed: u64,
    /// Task throughput per agent-epoch.
    pub tasks_per_agent_epoch: f64,
    /// Total tasks completed.
    pub total_tasks: f64,
    /// Breaker trips.
    pub trips: u32,
    /// Mean sprinters per epoch.
    pub mean_sprinters: f64,
    /// Occupancy fractions `[active idle, cooling, recovery, sprinting]`.
    pub occupancy: [f64; 4],
    /// Convergence facts for the offline solve (E-T trials only).
    pub solve: Option<SolveSummary>,
}

// Hand-written so records serialized before the adversary axis keep
// parsing: an absent label means an honest trial.
impl serde::Deserialize for SweepRecord {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let Some(obj) = value.as_object() else {
            return Err(serde::DeError::type_mismatch("object", value));
        };
        Ok(SweepRecord {
            trial: de_required(obj, "trial", "SweepRecord")?,
            game: de_required(obj, "game", "SweepRecord")?,
            population: de_required(obj, "population", "SweepRecord")?,
            plan: de_required(obj, "plan", "SweepRecord")?,
            adversaries: de_or(obj, "adversaries", "honest".to_string())?,
            policy: de_required(obj, "policy", "SweepRecord")?,
            seed: de_required(obj, "seed", "SweepRecord")?,
            tasks_per_agent_epoch: de_required(obj, "tasks_per_agent_epoch", "SweepRecord")?,
            total_tasks: de_required(obj, "total_tasks", "SweepRecord")?,
            trips: de_required(obj, "trips", "SweepRecord")?,
            mean_sprinters: de_required(obj, "mean_sprinters", "SweepRecord")?,
            occupancy: de_required(obj, "occupancy", "SweepRecord")?,
            solve: de_or(obj, "solve", None)?,
        })
    }
}

/// Aggregate over one cell's seeds (one `game × population × plan ×
/// adversaries × policy` point).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SweepCell {
    /// Game variant name.
    pub game: String,
    /// Population name.
    pub population: String,
    /// Fault-plan name.
    pub plan: String,
    /// Adversary-mix name.
    pub adversaries: String,
    /// The policy.
    pub policy: PolicyKind,
    /// Trials aggregated (the seed count).
    pub trials: usize,
    /// Mean task throughput per agent-epoch.
    pub tasks_per_agent_epoch: f64,
    /// Standard deviation of the throughput across seeds.
    pub tasks_std_dev: f64,
    /// 95 % Student-t confidence interval (`None` for one seed).
    pub tasks_ci: Option<ConfidenceInterval>,
    /// Mean breaker trips per run.
    pub trips: f64,
    /// Mean sprinters per epoch.
    pub mean_sprinters: f64,
    /// Mean occupancy fractions.
    pub occupancy: [f64; 4],
    /// Throughput over the same-cell-group Greedy throughput (the
    /// paper's Figure 8/9 metric; `None` when Greedy is not swept).
    pub normalized_to_greedy: Option<f64>,
    /// Convergence facts for the cell's offline solve (E-T cells only;
    /// identical across seeds since the solve is seed-independent).
    pub solve: Option<SolveSummary>,
}

// Hand-written for the same back-compat reason as [`SweepRecord`].
impl serde::Deserialize for SweepCell {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let Some(obj) = value.as_object() else {
            return Err(serde::DeError::type_mismatch("object", value));
        };
        Ok(SweepCell {
            game: de_required(obj, "game", "SweepCell")?,
            population: de_required(obj, "population", "SweepCell")?,
            plan: de_required(obj, "plan", "SweepCell")?,
            adversaries: de_or(obj, "adversaries", "honest".to_string())?,
            policy: de_required(obj, "policy", "SweepCell")?,
            trials: de_required(obj, "trials", "SweepCell")?,
            tasks_per_agent_epoch: de_required(obj, "tasks_per_agent_epoch", "SweepCell")?,
            tasks_std_dev: de_required(obj, "tasks_std_dev", "SweepCell")?,
            tasks_ci: de_or(obj, "tasks_ci", None)?,
            trips: de_required(obj, "trips", "SweepCell")?,
            mean_sprinters: de_required(obj, "mean_sprinters", "SweepCell")?,
            occupancy: de_required(obj, "occupancy", "SweepCell")?,
            normalized_to_greedy: de_or(obj, "normalized_to_greedy", None)?,
            solve: de_or(obj, "solve", None)?,
        })
    }
}

/// A sabotage instruction for supervision tests: make a trial attempt
/// misbehave on purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Panic inside the trial.
    Panic,
    /// Sleep past the trial deadline before running, so the engine's
    /// cooperative deadline check fires on entry.
    Hang,
}

/// A test hook deciding whether a given `(trial, attempt)` is sabotaged.
pub type SabotageHook = fn(trial: usize, attempt: u32) -> Option<Sabotage>;

/// Per-trial supervision policy for a sweep. Runtime-only (never part
/// of a serialized report): wall-clock limits are facts about the host,
/// not the simulation.
#[derive(Debug, Clone)]
pub struct Supervision {
    /// Wall-clock deadline per trial attempt, in milliseconds, enforced
    /// cooperatively at the engine's epoch checkpoints (a hung attempt
    /// is abandoned at the next checkpoint, never preempted). `None`
    /// disables the deadline.
    pub trial_deadline_ms: Option<u64>,
    /// Re-runs granted to a failing trial before quarantine.
    pub retries: u32,
    /// Deliberate-failure injection for supervision tests.
    pub sabotage: Option<SabotageHook>,
    /// Shared cancellation / job-deadline token, checked inside every
    /// trial at the engine's epoch checkpoints. A fired token fails the
    /// *whole sweep* (typed [`SimError::Cancelled`] /
    /// [`SimError::DeadlineExceeded`]) instead of quarantining trials:
    /// cancellation is a caller decision, not a flaky trial.
    pub cancel: Option<engine::CancelToken>,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            trial_deadline_ms: None,
            retries: 1,
            sabotage: None,
            cancel: None,
        }
    }
}

impl Supervision {
    /// Supervision with a per-attempt deadline of `ms` milliseconds.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.trial_deadline_ms = Some(ms);
        self
    }

    /// Supervision carrying a shared cancel token.
    #[must_use]
    pub fn with_cancel(mut self, token: engine::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// A trial that kept failing after its retries and was excluded from
/// the records instead of failing the sweep.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct QuarantinedTrial {
    /// Trial index in expansion order.
    pub trial: usize,
    /// Game variant name.
    pub game: String,
    /// Population name.
    pub population: String,
    /// Fault-plan name.
    pub plan: String,
    /// Adversary-mix name.
    pub adversaries: String,
    /// The policy.
    pub policy: PolicyKind,
    /// The seed.
    pub seed: u64,
    /// Attempts consumed (initial run plus retries).
    pub attempts: u32,
    /// Display form of the final error (panics surface as worker-panic
    /// errors).
    pub error: String,
}

// Hand-written for the same back-compat reason as [`SweepRecord`].
impl serde::Deserialize for QuarantinedTrial {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let Some(obj) = value.as_object() else {
            return Err(serde::DeError::type_mismatch("object", value));
        };
        Ok(QuarantinedTrial {
            trial: de_required(obj, "trial", "QuarantinedTrial")?,
            game: de_required(obj, "game", "QuarantinedTrial")?,
            population: de_required(obj, "population", "QuarantinedTrial")?,
            plan: de_required(obj, "plan", "QuarantinedTrial")?,
            adversaries: de_or(obj, "adversaries", "honest".to_string())?,
            policy: de_required(obj, "policy", "QuarantinedTrial")?,
            seed: de_required(obj, "seed", "QuarantinedTrial")?,
            attempts: de_required(obj, "attempts", "QuarantinedTrial")?,
            error: de_required(obj, "error", "QuarantinedTrial")?,
        })
    }
}

/// A completed sweep: per-trial records (expansion order) and per-cell
/// aggregates. Contains simulation-time data only — wall-clock facts go
/// to the telemetry kit — so serialization is byte-identical across job
/// counts and runs.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Total trials executed.
    pub trials: usize,
    /// Per-trial records in expansion order.
    pub records: Vec<SweepRecord>,
    /// Per-cell aggregates in expansion order.
    pub cells: Vec<SweepCell>,
    /// Trials excluded by supervision, in trial order.
    pub quarantined: Vec<QuarantinedTrial>,
    /// Per-worker utilization and timing for the pool that ran this
    /// sweep, in worker-slot order. Wall-clock, scheduling-dependent
    /// diagnostics: excluded from serialization and equality so the
    /// canonical report stays byte-identical at every job count
    /// (deserialized reports carry an empty list).
    pub workers: Vec<WorkerHealth>,
}

// Hand-written (not derived) so the jobs-dependent `workers` diagnostics
// never reach the canonical bytes: the serialized report is the same at
// `--jobs 1` and `--jobs N`.
impl serde::Serialize for SweepReport {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("trials".to_string(), self.trials.to_value()),
            ("records".to_string(), self.records.to_value()),
            ("cells".to_string(), self.cells.to_value()),
            ("quarantined".to_string(), self.quarantined.to_value()),
        ])
    }
}

// Equality mirrors serialization: two reports with the same
// simulation-time content are equal regardless of pool scheduling.
impl PartialEq for SweepReport {
    fn eq(&self, other: &Self) -> bool {
        self.trials == other.trials
            && self.records == other.records
            && self.cells == other.cells
            && self.quarantined == other.quarantined
    }
}

// Hand-written so reports serialized before the supervision layer (no
// `quarantined` field) keep parsing: an absent list means no quarantine.
impl serde::Deserialize for SweepReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let Some(obj) = value.as_object() else {
            return Err(serde::DeError::type_mismatch("object", value));
        };
        Ok(SweepReport {
            trials: de_required(obj, "trials", "SweepReport")?,
            records: de_required(obj, "records", "SweepReport")?,
            cells: de_required(obj, "cells", "SweepReport")?,
            quarantined: de_or(obj, "quarantined", Vec::new())?,
            workers: Vec::new(),
        })
    }
}

/// Resolve a thread budget into `(pool workers, intra-run engine jobs)`.
///
/// `jobs == 0` means all available cores. The trial pool is never larger
/// than the trial list; when the budget exceeds the trial count, the
/// surplus is split evenly across trial workers as engine-level fan-out
/// (each trial runs its epoch kernel on the persistent worker pool).
/// Byte-safe at any split: engine results are jobs-invariant, so the
/// report bytes depend on the spec alone.
fn thread_budget(jobs: usize, trials: usize) -> (usize, usize) {
    let budget = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        jobs
    };
    let pool = budget.clamp(1, trials.max(1));
    (pool, (budget / pool).max(1))
}

/// Execute a sweep — the unified entry point.
///
/// Expands `spec` into trials and runs them on `jobs` scoped worker
/// threads (`jobs == 0` sizes the pool to the available cores). Workers
/// pull trial indices from a shared atomic counter and publish into a
/// slot-per-trial table, so the report is identical — byte-for-byte under
/// serialization — for every job count. E-T solves are memoized in a
/// sweep-wide [`EquilibriumCache`] whose hit/miss/eviction counters land
/// in the kit's registry (`cache.equilibrium.*`), alongside
/// `sweep.trials` and `sweep.jobs`; per-trial wall-clock durations
/// accumulate in the kit's span profile under `sweep.trial`.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for an empty axis, invalid
/// plan, or unresolvable population. Runtime trial failures are
/// quarantined, not propagated (default supervision: no deadline, one
/// retry).
pub fn run_sweep(
    spec: &SweepSpec,
    jobs: usize,
    telemetry: &mut Telemetry,
) -> crate::Result<SweepReport> {
    run_sweep_supervised(spec, jobs, Supervision::default(), telemetry)
}

/// Execute a sweep under an explicit [`Supervision`] policy.
///
/// # Errors
///
/// As [`run_sweep`]; [`SimError::WorkerPanicked`] additionally surfaces
/// when a worker thread itself dies outside a supervised trial.
pub fn run_sweep_supervised(
    spec: &SweepSpec,
    jobs: usize,
    supervision: Supervision,
    telemetry: &mut Telemetry,
) -> crate::Result<SweepReport> {
    let cache = EquilibriumCache::default();
    run_sweep_on_cache(spec, jobs, supervision, &cache, true, telemetry)
}

/// Execute a sweep against an externally owned [`EquilibriumCache`] —
/// the entry point for long-lived processes (the `sprint serve` daemon,
/// the unified job path) where many jobs share one process-wide cache.
///
/// Unlike [`run_sweep_supervised`], which owns a fresh cache and
/// warm-starts solves from a serial pre-pass, this path solves **cold**:
/// a miss runs Algorithm 1 from scratch, so every [`SolveSummary`] in
/// the report is independent of whatever the shared cache already holds.
/// That makes the report bytes a function of the spec alone — identical
/// whether the cache is empty, pre-warmed by earlier jobs, or being
/// raced by concurrent clients (single-flight dedupes the actual
/// solves). The price is forgoing warm-start iteration savings on the
/// first solve of each distinct game; repeats are cache hits either way.
///
/// # Errors
///
/// As [`run_sweep_supervised`].
pub fn run_sweep_shared(
    spec: &SweepSpec,
    jobs: usize,
    supervision: Supervision,
    cache: &EquilibriumCache,
    telemetry: &mut Telemetry,
) -> crate::Result<SweepReport> {
    run_sweep_on_cache(spec, jobs, supervision, cache, false, telemetry)
}

fn run_sweep_on_cache(
    spec: &SweepSpec,
    jobs: usize,
    supervision: Supervision,
    cache: &EquilibriumCache,
    warm: bool,
    telemetry: &mut Telemetry,
) -> crate::Result<SweepReport> {
    spec.validate()?;
    let plans = spec.effective_plans();
    let adversaries = spec.effective_adversaries();
    let trials = spec.expand(&plans, &adversaries);
    let (jobs, intra_jobs) = thread_budget(jobs, trials.len());

    // Warm pre-pass: solve every distinct E-T cell serially, in expansion
    // order, before the worker pool starts. Each solve warm-starts from
    // the nearest equilibrium already cached, and because every solve
    // completes before any worker touches the cache, warm hints — and
    // therefore the report — stay identical at every job count. Cold
    // (shared-cache) sweeps skip it: their solves never take hints, so
    // there is no ordering to pin down.
    if warm {
        let mut presolved = std::collections::HashSet::new();
        for trial in &trials {
            if spec.policies[trial.policy] != PolicyKind::EquilibriumThreshold
                || !presolved.insert((trial.game, trial.population, trial.plan))
            {
                continue;
            }
            // Failures are not quarantine-worthy here: the trial itself
            // will re-encounter the error under supervision.
            let _ = presolve_cell(spec, &plans, trial, cache);
        }
    }

    type Slot = OnceLock<(crate::Result<SweepRecord>, u64, u32)>;
    let slots: Vec<Slot> = (0..trials.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let profile = telemetry.enabled();

    // Each worker emits trial lifecycle events into its own lock-free
    // ring segment — no shared sink, no contention on the hot path. The
    // ring is sized so a worker that somehow runs every trial still
    // never drops (and drops, were they to happen, are counted).
    let mut ring = None;
    let mut producers: Vec<Option<sprint_telemetry::RingProducer>> = Vec::new();
    if profile {
        let capacity = trials.len().saturating_mul(2).max(16);
        let (r, p) = EventRing::with_config(jobs, &RingConfig::default().with_capacity(capacity));
        ring = Some(r);
        producers = p.into_iter().map(Some).collect();
    } else {
        producers.resize_with(jobs, || None);
    }

    let mut worker_stats: Vec<(usize, u64, u64)> = Vec::with_capacity(jobs);
    let pool_started = std::time::Instant::now();
    let panicked = std::thread::scope(|scope| {
        let slots = &slots;
        let next = &next;
        let trials = &trials;
        let plans = &plans;
        let adversaries = &adversaries;
        let supervision = &supervision;
        let handles: Vec<_> = producers
            .drain(..)
            .enumerate()
            .map(|(worker, mut producer)| {
                scope.spawn(move || {
                    let mut done = 0u64;
                    let mut busy = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(trial) = trials.get(i) else { break };
                        if let Some(p) = producer.as_mut() {
                            p.record(&Event::TrialStarted {
                                trial: trial.id,
                                worker,
                            });
                        }
                        let started = std::time::Instant::now();
                        let (record, attempts) = run_trial_supervised(
                            spec,
                            plans,
                            adversaries,
                            trial,
                            cache,
                            warm,
                            supervision,
                            intra_jobs,
                        );
                        let nanos = started.elapsed().as_nanos() as u64;
                        done += 1;
                        busy += nanos;
                        if let Some(p) = producer.as_mut() {
                            p.record(&Event::TrialFinished {
                                trial: trial.id,
                                worker,
                                attempts,
                                quarantined: record.is_err(),
                            });
                        }
                        // First write wins; a slot is only ever written
                        // once because indices are unique.
                        let _ = slots[i].set((record, nanos, attempts));
                    }
                    (done, busy)
                })
            })
            .collect();
        let mut any_panicked = false;
        for handle in handles {
            match handle.join() {
                Ok((done, busy)) => worker_stats.push((worker_stats.len(), done, busy)),
                Err(_) => any_panicked = true,
            }
        }
        any_panicked
    });
    let pool_nanos = pool_started.elapsed().as_nanos() as u64;
    if panicked {
        return Err(SimError::WorkerPanicked {
            what: "sweep trial",
        });
    }
    // A fired cancel/deadline token fails the sweep outright: partial
    // results from an abandoned sweep must not masquerade as a report
    // whose trials all happened to quarantine.
    if let Some(token) = &supervision.cancel {
        token.check("sweep")?;
    }

    // Per-worker utilization/timing ride on the report as diagnostics
    // (excluded from canonical serialization and equality), and feed the
    // span path table so flamegraphs show the pool split.
    let workers: Vec<WorkerHealth> = worker_stats
        .iter()
        .map(|&(worker, done, busy)| WorkerHealth {
            worker,
            trials: done,
            busy_nanos: busy,
            utilization: busy as f64 / pool_nanos.max(1) as f64,
        })
        .collect();
    if profile {
        telemetry.spans.record_path_nanos("sweep", pool_nanos);
        for w in &workers {
            telemetry
                .spans
                .record_path_nanos(&format!("sweep;worker-{}", w.worker), w.busy_nanos);
        }
    }

    // Drain the ring into the kit's recorder in deterministic (trial id,
    // started-before-finished) order, and mirror its publish/drop
    // accounting into the registry. Worker assignment inside each event
    // is inherently scheduling-dependent; everything else is invariant.
    if let Some(mut ring) = ring {
        ring.export_metrics(&mut telemetry.registry);
        let mut events = ring.drain();
        events.sort_by_key(|e| match e {
            Event::TrialStarted { trial, .. } => (*trial, 0u8),
            Event::TrialFinished { trial, .. } => (*trial, 1),
            _ => (usize::MAX, 2),
        });
        for event in &events {
            telemetry.emit(event);
        }
        telemetry.export_recorder_metrics();
    }
    let mut records = Vec::with_capacity(trials.len());
    let mut quarantined = Vec::new();
    let mut retried = 0u64;
    for (trial, slot) in trials.iter().zip(slots) {
        let (record, nanos, attempts) = slot.into_inner().expect("every trial slot is filled");
        if profile {
            telemetry.spans.record_nanos("sweep.trial", nanos);
        }
        retried += u64::from(attempts.saturating_sub(1));
        match record {
            Ok(record) => records.push(record),
            Err(e) => quarantined.push(QuarantinedTrial {
                trial: trial.id,
                game: spec.games[trial.game].name.clone(),
                population: spec.populations[trial.population].name.clone(),
                plan: plans[trial.plan].name.clone(),
                adversaries: adversaries[trial.adversary].name.clone(),
                policy: spec.policies[trial.policy],
                seed: trial.seed,
                attempts,
                error: e.to_string(),
            }),
        }
    }
    let cells = aggregate_cells(&records);

    cache.export_metrics(&mut telemetry.registry);
    let c = telemetry.registry.counter("sweep.trials");
    telemetry.registry.inc(c, records.len() as u64);
    let c = telemetry.registry.counter("sweep.quarantined");
    telemetry.registry.inc(c, quarantined.len() as u64);
    let c = telemetry.registry.counter("sweep.retries");
    telemetry.registry.inc(c, retried);
    let g = telemetry.registry.gauge("sweep.jobs");
    telemetry.registry.set(g, jobs as f64);
    let g = telemetry.registry.gauge("sweep.intra_jobs");
    telemetry.registry.set(g, intra_jobs as f64);

    Ok(SweepReport {
        trials: records.len(),
        records,
        cells,
        quarantined,
        workers,
    })
}

/// Run one trial under supervision: per-attempt deadline, panic
/// isolation, bounded retry. Returns the final outcome and the attempts
/// consumed.
#[allow(clippy::too_many_arguments)]
fn run_trial_supervised(
    spec: &SweepSpec,
    plans: &[NamedPlan],
    adversaries: &[NamedAdversaries],
    trial: &Trial,
    cache: &EquilibriumCache,
    warm: bool,
    supervision: &Supervision,
    intra_jobs: usize,
) -> (crate::Result<SweepRecord>, u32) {
    let attempts_allowed = supervision.retries.saturating_add(1);
    let mut last = SimError::WorkerPanicked {
        what: "sweep trial",
    };
    for attempt in 0..attempts_allowed {
        // A token that fired between attempts (or before the first) makes
        // further work pointless — and retrying a *cancelled* attempt
        // would defeat the cancellation, so those errors short-circuit
        // the retry loop entirely.
        if let Some(token) = &supervision.cancel {
            if let Err(e) = token.check("sweep trial") {
                return (Err(e), attempt.max(1));
            }
        }
        let guard = engine::RunGuard {
            deadline: supervision
                .trial_deadline_ms
                .map(engine::Deadline::within_ms),
            cancel: supervision.cancel.clone(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = supervision.sabotage {
                match hook(trial.id, attempt) {
                    Some(Sabotage::Panic) => panic!("sabotaged sweep trial {}", trial.id),
                    Some(Sabotage::Hang) => {
                        // Overshoot the deadline, then fall through to the
                        // real trial: the engine's cooperative checkpoint
                        // abandons it on entry.
                        let ms = supervision.trial_deadline_ms.unwrap_or(0);
                        std::thread::sleep(Duration::from_millis(ms + 10));
                    }
                    None => {}
                }
            }
            run_trial(
                spec,
                plans,
                adversaries,
                trial,
                cache,
                warm,
                &guard,
                intra_jobs,
            )
        }));
        match outcome {
            Ok(Ok(record)) => return (Ok(record), attempt + 1),
            Ok(Err(e)) => {
                let fired = supervision
                    .cancel
                    .as_ref()
                    .is_some_and(|t| t.fired().is_some());
                if fired {
                    return (Err(e), attempt + 1);
                }
                last = e;
            }
            Err(_) => {
                last = SimError::WorkerPanicked {
                    what: "sweep trial",
                }
            }
        }
    }
    (Err(last), attempts_allowed)
}

/// Solve one cell's equilibrium into the sweep cache ahead of the worker
/// pool (E-T only; the solve key ignores the seed).
fn presolve_cell(
    spec: &SweepSpec,
    plans: &[NamedPlan],
    trial: &Trial,
    cache: &EquilibriumCache,
) -> crate::Result<()> {
    let variant = &spec.games[trial.game];
    let pop_spec = &spec.populations[trial.population];
    let game = variant.build(pop_spec.agents)?;
    let mut options = spec.options;
    options.faults = plans[trial.plan].plan;
    let scenario =
        Scenario::with_game(pop_spec.resolve()?, game, spec.epochs)?.with_options(options);
    scenario.equilibrium_policy_cached(cache).map(|_| ())
}

/// Run one grid point through the unified API only.
#[allow(clippy::too_many_arguments)]
fn run_trial(
    spec: &SweepSpec,
    plans: &[NamedPlan],
    adversaries: &[NamedAdversaries],
    trial: &Trial,
    cache: &EquilibriumCache,
    warm: bool,
    guard: &engine::RunGuard,
    intra_jobs: usize,
) -> crate::Result<SweepRecord> {
    let variant = &spec.games[trial.game];
    let pop_spec = &spec.populations[trial.population];
    let named = &plans[trial.plan];
    let named_mix = &adversaries[trial.adversary];
    let kind = spec.policies[trial.policy];

    let game = variant.build(pop_spec.agents)?;
    let mut options = spec.options;
    options.faults = named.plan;
    let scenario =
        Scenario::with_game(pop_spec.resolve()?, game, spec.epochs)?.with_options(options);

    let (mut policy, solve): (Box<dyn SprintPolicy>, Option<SolveSummary>) = match kind {
        PolicyKind::EquilibriumThreshold => {
            let (policy, summary) = if warm {
                scenario.equilibrium_policy_cached(cache)?
            } else {
                scenario.equilibrium_policy_cached_cold(cache)?
            };
            (Box::new(policy), Some(summary))
        }
        other => (
            scenario.policy(other, trial.seed, &mut Telemetry::noop())?,
            None,
        ),
    };
    if named_mix.mix.fraction > 0.0 {
        policy = Box::new(AdversarialPopulation::new(
            policy,
            named_mix.mix,
            pop_spec.agents as usize,
        )?);
    }
    let config = SimConfig::new(game, spec.epochs, trial.seed)?.with_options(*scenario.options());
    let mut streams = scenario.population().spawn_streams(trial.seed)?;
    let result = engine::run_guarded(
        &config,
        &mut streams,
        policy.as_mut(),
        guard,
        intra_jobs,
        &mut Telemetry::noop(),
    )?;

    Ok(record_of(
        trial, variant, pop_spec, named, named_mix, kind, &result, solve,
    ))
}

#[allow(clippy::too_many_arguments)]
fn record_of(
    trial: &Trial,
    variant: &GameVariant,
    pop_spec: &PopulationSpec,
    named: &NamedPlan,
    named_mix: &NamedAdversaries,
    kind: PolicyKind,
    result: &SimResult,
    solve: Option<SolveSummary>,
) -> SweepRecord {
    SweepRecord {
        trial: trial.id,
        game: variant.name.clone(),
        population: pop_spec.name.clone(),
        plan: named.name.clone(),
        adversaries: named_mix.name.clone(),
        policy: kind,
        seed: trial.seed,
        tasks_per_agent_epoch: result.tasks_per_agent_epoch(),
        total_tasks: result.total_tasks(),
        trips: result.trips(),
        mean_sprinters: result.mean_sprinters(),
        occupancy: result.occupancy().fractions(),
        solve,
    }
}

/// Fold records into per-cell aggregates, normalizing each policy cell
/// against the Greedy cell of the same `game × population × plan`
/// group. Grouping is by label, not position, so quarantine holes in
/// the record list shrink a cell's seed count instead of smearing
/// neighbouring cells into each other; cells keep first-seen (i.e.
/// expansion) order.
fn aggregate_cells(records: &[SweepRecord]) -> Vec<SweepCell> {
    let mut groups: Vec<Vec<&SweepRecord>> = Vec::new();
    for r in records {
        let key = (&r.game, &r.population, &r.plan, &r.adversaries, r.policy);
        match groups.iter_mut().find(|g| {
            (
                &g[0].game,
                &g[0].population,
                &g[0].plan,
                &g[0].adversaries,
                g[0].policy,
            ) == key
        }) {
            Some(group) => group.push(r),
            None => groups.push(vec![r]),
        }
    }

    let mut cells: Vec<SweepCell> = groups
        .iter()
        .map(|chunk| {
            let first = chunk[0];
            let per_trial: Vec<f64> = chunk.iter().map(|r| r.tasks_per_agent_epoch).collect();
            let tasks: OnlineStats = per_trial.iter().copied().collect();
            let mut occupancy = [0.0f64; 4];
            for r in chunk {
                for (acc, x) in occupancy.iter_mut().zip(r.occupancy) {
                    *acc += x;
                }
            }
            for acc in &mut occupancy {
                *acc /= chunk.len() as f64;
            }
            SweepCell {
                game: first.game.clone(),
                population: first.population.clone(),
                plan: first.plan.clone(),
                adversaries: first.adversaries.clone(),
                policy: first.policy,
                trials: chunk.len(),
                tasks_per_agent_epoch: tasks.mean(),
                tasks_std_dev: tasks.std_dev(),
                tasks_ci: confidence_interval_95(&per_trial).ok(),
                trips: chunk.iter().map(|r| f64::from(r.trips)).sum::<f64>() / chunk.len() as f64,
                mean_sprinters: chunk.iter().map(|r| r.mean_sprinters).sum::<f64>()
                    / chunk.len() as f64,
                occupancy,
                normalized_to_greedy: None,
                solve: chunk.iter().find_map(|r| r.solve),
            }
        })
        .collect();

    for i in 0..cells.len() {
        let greedy = cells
            .iter()
            .find(|c| {
                c.policy == PolicyKind::Greedy
                    && c.game == cells[i].game
                    && c.population == cells[i].population
                    && c.plan == cells[i].plan
                    && c.adversaries == cells[i].adversaries
            })
            .map(|c| c.tasks_per_agent_epoch)
            .filter(|&g| g > 0.0);
        if let Some(greedy) = greedy {
            cells[i].normalized_to_greedy = Some(cells[i].tasks_per_agent_epoch / greedy);
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            games: vec![GameVariant::paper("paper")],
            populations: vec![PopulationSpec::homogeneous(Benchmark::DecisionTree, 40)],
            plans: Vec::new(),
            adversaries: Vec::new(),
            policies: vec![PolicyKind::Greedy, PolicyKind::EquilibriumThreshold],
            seeds: vec![1, 2, 3],
            epochs: 60,
            options: RunOptions::default(),
        }
    }

    #[test]
    fn shared_cache_sweep_bytes_ignore_prior_cache_content() {
        // The serve-daemon property: a sweep through a shared process
        // cache must serialize identically whether the cache is fresh or
        // already warmed by earlier jobs — cold solves keep iteration
        // counts out of reach of cache history.
        let spec = small_spec();
        let fresh = EquilibriumCache::default();
        let a = run_sweep_shared(
            &spec,
            2,
            Supervision::default(),
            &fresh,
            &mut Telemetry::noop(),
        )
        .unwrap();
        let reused = EquilibriumCache::default();
        let _ = run_sweep_shared(
            &spec,
            1,
            Supervision::default(),
            &reused,
            &mut Telemetry::noop(),
        )
        .unwrap();
        let before = reused.stats();
        let b = run_sweep_shared(
            &spec,
            2,
            Supervision::default(),
            &reused,
            &mut Telemetry::noop(),
        )
        .unwrap();
        assert_eq!(a, b, "report must not depend on prior cache content");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "canonical bytes must match through a warmed shared cache"
        );
        let after = reused.stats();
        assert_eq!(after.misses, before.misses, "re-run solves nothing new");
        assert!(after.hits > before.hits, "re-run hits the shared cache");
    }

    #[test]
    fn worker_stats_ride_the_report_outside_the_canonical_bytes() {
        let spec = small_spec();
        let mut kit = Telemetry::in_memory();
        let report = run_sweep(&spec, 2, &mut kit).unwrap();
        assert_eq!(report.workers.len(), 2);
        let done: u64 = report.workers.iter().map(|w| w.trials).sum();
        assert_eq!(done as usize, report.trials);
        for w in &report.workers {
            assert!(w.utilization >= 0.0);
            assert!(w.busy_nanos > 0 || w.trials == 0);
        }
        // The diagnostics never reach the canonical bytes or equality.
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("\"workers\""), "{json}");
        let mut stripped = report.clone();
        stripped.workers.clear();
        assert_eq!(report, stripped, "equality ignores pool diagnostics");
        // The pool split lands in the span path table for flamegraphs.
        assert!(kit.spans.path_stats("sweep").is_some());
        assert!(kit.spans.path_stats("sweep;worker-0").is_some());
        assert!(kit.spans.path_stats("sweep;worker-1").is_some());
    }

    #[test]
    fn trial_lifecycle_events_drain_from_the_ring_in_trial_order() {
        let spec = small_spec(); // 2 policies × 3 seeds = 6 trials
        let mut kit = Telemetry::in_memory();
        let report = run_sweep(&spec, 3, &mut kit).unwrap();
        assert_eq!(report.trials, 6);
        let events = kit.events().unwrap();
        let lifecycle: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::TrialStarted { .. } | Event::TrialFinished { .. }))
            .collect();
        assert_eq!(lifecycle.len(), 12, "start + finish per trial");
        for (i, pair) in lifecycle.chunks(2).enumerate() {
            match (pair[0], pair[1]) {
                (
                    Event::TrialStarted { trial: a, .. },
                    Event::TrialFinished {
                        trial: b,
                        attempts,
                        quarantined,
                        ..
                    },
                ) => {
                    assert_eq!(*a, i);
                    assert_eq!(*b, i);
                    assert_eq!(*attempts, 1);
                    assert!(!*quarantined);
                }
                other => panic!("unexpected lifecycle pair {other:?}"),
            }
        }
        // Ring accounting is mirrored into the registry: publishes
        // counted, drops zero (the ring is sized to the trial list).
        assert_eq!(kit.registry.counter_value("ring.published"), Some(12));
        assert_eq!(kit.registry.counter_value("ring.dropped"), Some(0));
        assert_eq!(
            kit.registry.counter_value("telemetry.recorder.written"),
            Some(events.len() as u64)
        );
    }

    #[test]
    fn validates_axes() {
        let mut spec = small_spec();
        spec.seeds.clear();
        assert!(run_sweep(&spec, 1, &mut Telemetry::noop()).is_err());
        let mut spec = small_spec();
        spec.policies.clear();
        assert!(run_sweep(&spec, 1, &mut Telemetry::noop()).is_err());
        let mut spec = small_spec();
        spec.epochs = 0;
        assert!(run_sweep(&spec, 1, &mut Telemetry::noop()).is_err());
        let mut spec = small_spec();
        spec.populations[0].benchmarks = vec!["no-such-benchmark".to_string()];
        assert!(run_sweep(&spec, 1, &mut Telemetry::noop()).is_err());
    }

    #[test]
    fn expansion_orders_trials_seeds_fastest() {
        let spec = small_spec();
        assert_eq!(spec.trial_count(), 6);
        let report = run_sweep(&spec, 1, &mut Telemetry::noop()).unwrap();
        assert_eq!(report.trials, 6);
        let seeds: Vec<u64> = report.records.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, [1, 2, 3, 1, 2, 3]);
        assert_eq!(report.records[0].policy, PolicyKind::Greedy);
        assert_eq!(report.records[3].policy, PolicyKind::EquilibriumThreshold);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.trial, i);
            assert_eq!(r.plan, "none");
        }
    }

    #[test]
    fn aggregate_is_identical_across_job_counts() {
        let spec = small_spec();
        let serial = run_sweep(&spec, 1, &mut Telemetry::noop()).unwrap();
        let parallel = run_sweep(&spec, 4, &mut Telemetry::noop()).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "reports must serialize byte-identically across job counts"
        );
    }

    #[test]
    fn cells_normalize_to_greedy_and_carry_solves() {
        let report = run_sweep(&small_spec(), 2, &mut Telemetry::noop()).unwrap();
        assert_eq!(report.cells.len(), 2);
        let greedy = &report.cells[0];
        let et = &report.cells[1];
        assert_eq!(greedy.policy, PolicyKind::Greedy);
        assert!((greedy.normalized_to_greedy.unwrap() - 1.0).abs() < 1e-12);
        assert!(et.normalized_to_greedy.unwrap() > 1.0, "E-T beats G");
        assert!(greedy.solve.is_none());
        let solve = et.solve.expect("E-T cells carry solve summaries");
        assert!(solve.converged);
        assert_eq!(greedy.trials, 3);
        assert!(greedy.tasks_ci.is_some());
    }

    #[test]
    fn equilibrium_solves_hit_the_cache_across_seeds() {
        let mut spec = small_spec();
        spec.policies = vec![PolicyKind::EquilibriumThreshold];
        spec.seeds = (1..=8).collect();
        let mut kit = Telemetry::in_memory();
        let report = run_sweep(&spec, 4, &mut kit).unwrap();
        assert_eq!(report.trials, 8);
        assert_eq!(
            kit.registry.counter_value("cache.equilibrium.misses"),
            Some(1),
            "one distinct game solves once"
        );
        // The warm pre-pass takes the one miss; all eight trials hit.
        assert_eq!(
            kit.registry.counter_value("cache.equilibrium.hits"),
            Some(8)
        );
        assert_eq!(kit.registry.counter_value("sweep.trials"), Some(8));
        assert_eq!(kit.spans.stats("sweep.trial").unwrap().count, 8);
    }

    #[test]
    fn plan_axis_overrides_spec_faults() {
        let mut spec = small_spec();
        spec.policies = vec![PolicyKind::Greedy];
        spec.seeds = vec![1];
        spec.plans = vec![
            NamedPlan {
                name: "clean".to_string(),
                plan: FaultPlan::none(),
            },
            NamedPlan {
                name: "composite".to_string(),
                plan: FaultPlan::composite(7),
            },
        ];
        let report = run_sweep(&spec, 1, &mut Telemetry::noop()).unwrap();
        assert_eq!(report.trials, 2);
        assert_eq!(report.records[0].plan, "clean");
        assert_eq!(report.records[1].plan, "composite");
        assert_ne!(
            report.records[0].tasks_per_agent_epoch, report.records[1].tasks_per_agent_epoch,
            "the composite plan must perturb the run"
        );
    }

    fn sabotage_first_attempts(trial: usize, attempt: u32) -> Option<Sabotage> {
        // Trial 1 panics on every attempt; trial 2 panics once and then
        // recovers on retry.
        match (trial, attempt) {
            (1, _) => Some(Sabotage::Panic),
            (2, 0) => Some(Sabotage::Panic),
            _ => None,
        }
    }

    fn sabotage_hang(trial: usize, _attempt: u32) -> Option<Sabotage> {
        (trial == 0).then_some(Sabotage::Hang)
    }

    #[test]
    fn panicking_trials_are_quarantined_not_fatal() {
        let mut spec = small_spec();
        spec.policies = vec![PolicyKind::Greedy];
        let supervision = Supervision {
            sabotage: Some(sabotage_first_attempts),
            ..Supervision::default()
        };
        let report = run_sweep_supervised(&spec, 2, supervision, &mut Telemetry::noop()).unwrap();
        assert_eq!(report.trials, 2, "two of three trials survive");
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!((q.trial, q.attempts), (1, 2), "one retry before quarantine");
        assert!(q.error.contains("panicked"));
        // The recovered-on-retry trial is a normal record.
        assert!(report.records.iter().any(|r| r.trial == 2));
        // Aggregation shrinks the cell instead of failing it.
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].trials, 2);
    }

    #[test]
    fn hanging_trials_hit_the_cooperative_deadline() {
        let mut spec = small_spec();
        spec.policies = vec![PolicyKind::Greedy];
        spec.seeds = vec![1, 2];
        let supervision = Supervision {
            retries: 0,
            sabotage: Some(sabotage_hang),
            ..Supervision::default()
        }
        .with_deadline_ms(40);
        let mut kit = Telemetry::in_memory();
        let report = run_sweep_supervised(&spec, 2, supervision, &mut kit).unwrap();
        assert_eq!(report.trials, 1);
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!(q.trial, 0);
        assert!(
            q.error.contains("40 ms deadline"),
            "deadline error carries the configured limit: {}",
            q.error
        );
        assert_eq!(kit.registry.counter_value("sweep.quarantined"), Some(1));
    }

    #[test]
    fn quarantined_reports_are_identical_across_job_counts() {
        let mut spec = small_spec();
        spec.policies = vec![PolicyKind::Greedy, PolicyKind::EquilibriumThreshold];
        let supervision = Supervision {
            sabotage: Some(sabotage_first_attempts),
            ..Supervision::default()
        };
        let serial =
            run_sweep_supervised(&spec, 1, supervision.clone(), &mut Telemetry::noop()).unwrap();
        let parallel = run_sweep_supervised(&spec, 4, supervision, &mut Telemetry::noop()).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "quarantine must not break byte-reproducibility"
        );
        assert_eq!(serial.quarantined.len(), 1);
    }

    #[test]
    fn pre_cancelled_sweep_returns_typed_cancelled_error() {
        let token = engine::CancelToken::new();
        token.cancel();
        let supervision = Supervision::default().with_cancel(token);
        let err = run_sweep_supervised(&small_spec(), 2, supervision, &mut Telemetry::noop())
            .unwrap_err();
        assert!(matches!(err, SimError::Cancelled { .. }), "got {err:?}");
    }

    #[test]
    fn armed_job_deadline_fails_sweep_with_typed_error() {
        let token = engine::CancelToken::new();
        token.arm_deadline_ms(0);
        // An already-expired job deadline: every trial aborts at its first
        // cooperative checkpoint and the sweep surfaces the typed error
        // instead of an all-quarantined report.
        std::thread::sleep(Duration::from_millis(5));
        let supervision = Supervision::default().with_cancel(token);
        let err = run_sweep_supervised(&small_spec(), 2, supervision, &mut Telemetry::noop())
            .unwrap_err();
        assert!(
            matches!(err, SimError::DeadlineExceeded { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn report_round_trips_through_serde() {
        let report = run_sweep(&small_spec(), 2, &mut Telemetry::noop()).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // Pre-supervision reports (no quarantine field) still parse.
        let legacy = json.replace(",\"quarantined\":[]", "");
        assert_ne!(legacy, json);
        let legacy: SweepReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(legacy, report);
        let spec_json = serde_json::to_string(&SweepSpec::example()).unwrap();
        let spec_back: SweepSpec = serde_json::from_str(&spec_json).unwrap();
        assert_eq!(spec_back, SweepSpec::example());
        assert_eq!(SweepSpec::example().trial_count(), 64);
    }

    #[test]
    fn pre_adversary_json_parses_as_honest() {
        let report = run_sweep(&small_spec(), 1, &mut Telemetry::noop()).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        // Strip the adversary labels everywhere, as reports serialized
        // before the axis existed would lack them.
        let legacy = json.replace("\"adversaries\":\"honest\",", "");
        assert_ne!(legacy, json);
        let back: SweepReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, report);
        // Same for specs missing the axis entirely.
        let spec_json = serde_json::to_string(&small_spec()).unwrap();
        let legacy_spec = spec_json.replace("\"adversaries\":[],", "");
        assert_ne!(legacy_spec, spec_json);
        let back: SweepSpec = serde_json::from_str(&legacy_spec).unwrap();
        assert_eq!(back, small_spec());
    }

    #[test]
    fn adversary_axis_expands_labels_and_degrades_honest_cells() {
        let mut spec = small_spec();
        spec.policies = vec![PolicyKind::EquilibriumThreshold];
        spec.adversaries = vec![
            NamedAdversaries::honest(),
            NamedAdversaries {
                name: "greedy@0.2".to_string(),
                mix: AdversaryMix::greedy(0.2, 7),
            },
        ];
        assert_eq!(spec.trial_count(), 6);
        let report = run_sweep(&spec, 1, &mut Telemetry::noop()).unwrap();
        assert_eq!(report.trials, 6);
        let labels: Vec<&str> = report
            .records
            .iter()
            .map(|r| r.adversaries.as_str())
            .collect();
        assert_eq!(
            labels,
            [
                "honest",
                "honest",
                "honest",
                "greedy@0.2",
                "greedy@0.2",
                "greedy@0.2"
            ],
            "adversary axis sits between plans and policies"
        );
        assert_eq!(report.cells.len(), 2);
        let honest = &report.cells[0];
        let attacked = &report.cells[1];
        assert_eq!(honest.adversaries, "honest");
        assert_eq!(attacked.adversaries, "greedy@0.2");
        assert!(
            attacked.trips > honest.trips,
            "unchecked defectors must trip the breaker more: {} vs {}",
            attacked.trips,
            honest.trips
        );
    }

    #[test]
    fn adversary_trials_are_identical_across_job_counts() {
        let mut spec = small_spec();
        spec.adversaries = vec![NamedAdversaries {
            name: "cheat".to_string(),
            mix: AdversaryMix {
                kind: crate::policies::AdversaryKind::StochasticCheater {
                    cheat_probability: 0.3,
                },
                fraction: 0.15,
                seed: 9,
                ceasefire_epoch: None,
            },
        }];
        let serial = run_sweep(&spec, 1, &mut Telemetry::noop()).unwrap();
        let parallel = run_sweep(&spec, 4, &mut Telemetry::noop()).unwrap();
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }
}
