//! Epoch-driven rack simulator for the computational sprinting game.
//!
//! Reimplements the paper's R-based simulator (§5, "Simulation Methods"):
//! 1000 users per rack, each running a workload whose per-epoch sprint
//! utility comes from calibrated phase processes. The simulator models the
//! full system dynamics — sprints, chip cooling, breaker trips, rack-wide
//! recovery with staggered wake-up — under the paper's four policies:
//!
//! - **Greedy (G)** — sprint at every opportunity ([`policies::Greedy`]).
//! - **Exponential Backoff (E-B)** — greedy with randomized post-trip
//!   backoff that contracts after 100 quiet epochs
//!   ([`policies::ExponentialBackoff`]).
//! - **Equilibrium Threshold (E-T)** — per-type thresholds from the
//!   mean-field game ([`policies::ThresholdPolicy`] +
//!   [`scenario::Scenario::equilibrium_thresholds`]).
//! - **Cooperative Threshold (C-T)** — the globally optimal common
//!   threshold ([`scenario::Scenario::cooperative_policy`]).
//!
//! # Example
//!
//! ```
//! use sprint_sim::scenario::Scenario;
//! use sprint_sim::policy::PolicyKind;
//! use sprint_sim::telemetry::Telemetry;
//! use sprint_workloads::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 200, 300)?;
//! let greedy = scenario.execute(PolicyKind::Greedy, 7, &mut Telemetry::noop())?;
//! let equilibrium = scenario.execute(PolicyKind::EquilibriumThreshold, 7, &mut Telemetry::noop())?;
//! assert!(equilibrium.tasks_per_agent_epoch() > greedy.tasks_per_agent_epoch());
//! # Ok(())
//! # }
//! ```

pub mod cluster;
pub mod control;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod policies;
pub mod policy;
pub mod runner;
pub mod scenario;
pub mod sweep;

mod error;

/// The telemetry subsystem (re-exported): structured tracing, metrics
/// registry, and timing spans. Every unified entry point —
/// [`engine::run`], [`scenario::Scenario::execute`], [`runner::compare`],
/// [`runner::chaos`], [`sweep::run_sweep`] — takes a
/// [`Telemetry`](telemetry::Telemetry) kit; pass
/// [`Telemetry::noop()`](telemetry::Telemetry::noop) for unobserved runs.
pub use sprint_telemetry as telemetry;

pub use control::{
    ControlConfig, ControlReport, ControlSim, DefenseReport, DetectorConfig, FaultyTransport,
    Transport,
};
pub use engine::{
    CancelToken, Deadline, Interrupt, RecoverySemantics, RunGuard, RunOptions, SimConfig,
};
pub use error::SimError;
pub use faults::{FaultMetrics, FaultPlan, RackPartition, TransportFault};
pub use metrics::SimResult;
pub use policies::{AdversarialPopulation, AdversaryKind, AdversaryMix};
pub use policy::{PolicyKind, SprintPolicy};
pub use runner::{AdversaryReport, AdversaryTrial};
pub use sweep::{NamedAdversaries, SweepRecord, SweepReport, SweepSpec};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SimError>;
