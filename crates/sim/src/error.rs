use std::error::Error;
use std::fmt;

use sprint_game::GameError;
use sprint_workloads::WorkloadError;

/// Error raised by simulation setup or execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
        /// Human-readable description of the valid domain.
        expected: &'static str,
    },
    /// A game solve required by a policy failed.
    Game(GameError),
    /// Workload construction failed.
    Workload(WorkloadError),
    /// A parallel worker thread panicked; its trial produced no result.
    ///
    /// Surfaced as a typed error instead of propagating the panic so a
    /// multi-trial experiment degrades gracefully (paper §3.1's recovery
    /// stance applied to the harness itself).
    WorkerPanicked {
        /// What the worker was computing.
        what: &'static str,
    },
    /// A supervised computation ran past its wall-clock deadline and was
    /// abandoned at the next cooperative checkpoint.
    DeadlineExceeded {
        /// What was being computed when the deadline fired.
        what: &'static str,
        /// The deadline that was exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// A computation was cancelled through its [`CancelToken`] and
    /// abandoned at the next cooperative checkpoint.
    ///
    /// [`CancelToken`]: crate::engine::CancelToken
    Cancelled {
        /// What was being computed when the cancellation landed.
        what: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "parameter `{name}` = {value} is invalid: expected {expected}"
            ),
            SimError::Game(e) => write!(f, "game solver error: {e}"),
            SimError::Workload(e) => write!(f, "workload error: {e}"),
            SimError::WorkerPanicked { what } => {
                write!(f, "worker thread panicked while computing {what}")
            }
            SimError::DeadlineExceeded { what, limit_ms } => {
                write!(f, "{what} exceeded its {limit_ms} ms deadline")
            }
            SimError::Cancelled { what } => write!(f, "{what} was cancelled"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Game(e) => Some(e),
            SimError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GameError> for SimError {
    fn from(e: GameError) -> Self {
        SimError::Game(e)
    }
}

impl From<WorkloadError> for SimError {
    fn from(e: WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::InvalidParameter {
            name: "epochs",
            value: 0.0,
            expected: "at least one epoch",
        };
        assert!(e.to_string().contains("epochs"));
        assert!(e.source().is_none());
        let e: SimError = GameError::NoEquilibrium {
            iterations: 1,
            residual: 1.0,
        }
        .into();
        assert!(e.source().is_some());
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
