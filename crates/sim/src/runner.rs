//! Multi-trial experiment runner.
//!
//! The paper reports averages over repeated randomized runs (e.g.
//! Figure 9 repeats each mix ten times). [`compare`] runs a scenario
//! under several policies across several seeds in parallel (one thread
//! per policy × seed pair, via `std::thread::scope`) and aggregates the
//! metrics; [`chaos`] crosses that with fault plans. For full cartesian
//! grids over games, populations, and options, see [`crate::sweep`].

use sprint_stats::summary::{confidence_interval_95, ConfidenceInterval, OnlineStats};
use sprint_telemetry::{SpanProfile, Telemetry};

use crate::control::{ControlConfig, ControlReport, ControlSim, DetectorConfig};
use crate::faults::{FaultMetrics, FaultPlan};
use crate::metrics::SimResult;
use crate::policies::AdversaryMix;
use crate::policy::PolicyKind;
use crate::scenario::Scenario;
use crate::SimError;

/// Aggregated outcome of one policy across trials.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PolicyOutcome {
    /// The policy.
    pub policy: PolicyKind,
    /// Mean task throughput per agent-epoch across trials.
    pub tasks_per_agent_epoch: f64,
    /// Standard deviation of the throughput across trials.
    pub tasks_std_dev: f64,
    /// 95 % Student-t confidence interval of the throughput across trials
    /// (`None` when only one trial was run).
    pub tasks_ci: Option<ConfidenceInterval>,
    /// Mean occupancy fractions `[active idle, cooling, recovery,
    /// sprinting]`.
    pub occupancy: [f64; 4],
    /// Mean sprinters per epoch.
    pub mean_sprinters: f64,
    /// Mean breaker trips per run.
    pub trips: f64,
    /// Per-fault counters summed across trials (all zero without an
    /// active fault plan).
    pub faults: FaultMetrics,
}

/// A full policy comparison with Greedy-normalized throughput.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Comparison {
    outcomes: Vec<PolicyOutcome>,
}

impl Comparison {
    /// Per-policy outcomes in the order requested.
    #[must_use]
    pub fn outcomes(&self) -> &[PolicyOutcome] {
        &self.outcomes
    }

    /// Outcome for a specific policy.
    #[must_use]
    pub fn outcome(&self, policy: PolicyKind) -> Option<&PolicyOutcome> {
        self.outcomes.iter().find(|o| o.policy == policy)
    }

    /// Throughput normalized to Greedy (the paper's Figure 8/9 metric),
    /// or `None` when Greedy was not among the compared policies.
    #[must_use]
    pub fn normalized_to_greedy(&self, policy: PolicyKind) -> Option<f64> {
        let greedy = self.outcome(PolicyKind::Greedy)?.tasks_per_agent_epoch;
        let target = self.outcome(policy)?.tasks_per_agent_epoch;
        if greedy <= 0.0 {
            return None;
        }
        Some(target / greedy)
    }
}

fn aggregate(policy: PolicyKind, results: &[SimResult]) -> PolicyOutcome {
    let per_trial: Vec<f64> = results
        .iter()
        .map(SimResult::tasks_per_agent_epoch)
        .collect();
    let tasks: OnlineStats = per_trial.iter().copied().collect();
    let tasks_ci = confidence_interval_95(&per_trial).ok();
    let mut occupancy = [0.0f64; 4];
    for r in results {
        let f = r.occupancy().fractions();
        for (acc, x) in occupancy.iter_mut().zip(f) {
            *acc += x;
        }
    }
    for acc in &mut occupancy {
        *acc /= results.len() as f64;
    }
    let mut faults = FaultMetrics::default();
    for r in results {
        let f = r.faults();
        faults.crashes += f.crashes;
        faults.restarts += f.restarts;
        faults.crashed_agent_epochs += f.crashed_agent_epochs;
        faults.stuck_epochs += f.stuck_epochs;
        faults.sensor_dropouts += f.sensor_dropouts;
        faults.spurious_trips += f.spurious_trips;
        faults.missed_trips += f.missed_trips;
    }
    PolicyOutcome {
        policy,
        tasks_per_agent_epoch: tasks.mean(),
        tasks_std_dev: tasks.std_dev(),
        tasks_ci,
        occupancy,
        mean_sprinters: results.iter().map(SimResult::mean_sprinters).sum::<f64>()
            / results.len() as f64,
        trips: results.iter().map(|r| f64::from(r.trips())).sum::<f64>() / results.len() as f64,
        faults,
    }
}

/// Run `scenario` under each policy for every seed, in parallel, and
/// aggregate — the unified entry point. Pass [`Telemetry::noop()`] for
/// an unprofiled comparison; with a kit attached, each `policy × seed`
/// thread times its own trial and the durations accumulate in the kit's
/// span profile under `trial.<policy>` (plus `runner.compare` for the
/// whole comparison), without perturbing the parallel execution.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for empty `policies`/`seeds`
/// and propagates the first simulation error encountered.
pub fn compare(
    scenario: &Scenario,
    policies: &[PolicyKind],
    seeds: &[u64],
    telemetry: &mut Telemetry,
) -> crate::Result<Comparison> {
    compare_impl(scenario, policies, seeds, 1, &mut telemetry.spans)
}

/// [`compare`] with each trial's agent kernel fanned out over `jobs`
/// scoped threads ([`Scenario::execute_jobs`]); aggregates are
/// byte-identical at every job count.
///
/// # Errors
///
/// As [`compare`].
pub fn compare_jobs(
    scenario: &Scenario,
    policies: &[PolicyKind],
    seeds: &[u64],
    jobs: usize,
    telemetry: &mut Telemetry,
) -> crate::Result<Comparison> {
    compare_impl(scenario, policies, seeds, jobs, &mut telemetry.spans)
}

fn compare_impl(
    scenario: &Scenario,
    policies: &[PolicyKind],
    seeds: &[u64],
    jobs: usize,
    spans: &mut SpanProfile,
) -> crate::Result<Comparison> {
    if policies.is_empty() {
        return Err(SimError::InvalidParameter {
            name: "policies",
            value: 0.0,
            expected: "at least one policy",
        });
    }
    if seeds.is_empty() {
        return Err(SimError::InvalidParameter {
            name: "seeds",
            value: 0.0,
            expected: "at least one seed",
        });
    }

    let compare_started = std::time::Instant::now();
    let results: Vec<crate::Result<(PolicyKind, SimResult, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = policies
            .iter()
            .flat_map(|&policy| seeds.iter().map(move |&seed| (policy, seed)))
            .map(|(policy, seed)| {
                scope.spawn(move || {
                    let started = std::time::Instant::now();
                    scenario
                        .execute_jobs(policy, seed, jobs, &mut Telemetry::noop())
                        .map(|r| (policy, r, started.elapsed().as_nanos() as u64))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or(Err(SimError::WorkerPanicked {
                    what: "policy comparison trial",
                }))
            })
            .collect()
    });
    spans.record_nanos(
        "runner.compare",
        compare_started.elapsed().as_nanos() as u64,
    );

    let mut by_policy: Vec<(PolicyKind, Vec<SimResult>)> =
        policies.iter().map(|&p| (p, Vec::new())).collect();
    for r in results {
        let (policy, result, nanos) = r?;
        spans.record_nanos(&format!("trial.{policy}"), nanos);
        if let Some((_, bucket)) = by_policy.iter_mut().find(|(p, _)| *p == policy) {
            bucket.push(result);
        }
    }
    Ok(Comparison {
        outcomes: by_policy.iter().map(|(p, rs)| aggregate(*p, rs)).collect(),
    })
}

/// A fault plan with a display name, for chaos-matrix axes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NamedPlan {
    /// Human-readable plan name (unique within a suite).
    pub name: String,
    /// The fault plan.
    pub plan: FaultPlan,
}

/// The standard single-fault plans plus the composite mix, all built from
/// [`FaultPlan::composite`]'s component intensities.
#[must_use]
pub fn standard_fault_suite(seed: u64) -> Vec<NamedPlan> {
    let composite = FaultPlan::composite(seed);
    let single = |name: &str, f: &dyn Fn(&mut FaultPlan)| {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::none()
        };
        f(&mut plan);
        NamedPlan {
            name: name.to_string(),
            plan,
        }
    };
    vec![
        single("crash-churn", &|p| p.crash = composite.crash),
        single("stuck-sprinters", &|p| p.stuck = composite.stuck),
        single("sensor-noise", &|p| p.sensor = composite.sensor),
        single("breaker-drift", &|p| {
            p.breaker_drift = composite.breaker_drift
        }),
        single("stale-coordinator", &|p| p.staleness = composite.staleness),
        NamedPlan {
            name: "composite".to_string(),
            plan: composite,
        },
    ]
}

/// One cell of the chaos matrix: one policy under one fault plan.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosCell {
    /// The policy.
    pub policy: PolicyKind,
    /// The fault plan's name.
    pub plan: String,
    /// Mean throughput per agent-epoch under the faults.
    pub tasks_per_agent_epoch: f64,
    /// Mean throughput of the same policy with no faults.
    pub baseline_tasks_per_agent_epoch: f64,
    /// Faulty throughput over fault-free throughput (1.0 = unharmed,
    /// 0.0 when the baseline itself produced nothing).
    pub degradation: f64,
    /// Mean breaker trips per run under the faults.
    pub trips: f64,
    /// Per-fault counters summed across trials.
    pub faults: FaultMetrics,
}

/// The full policy × fault-plan resilience report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosReport {
    plans: Vec<NamedPlan>,
    baseline: Vec<PolicyOutcome>,
    cells: Vec<ChaosCell>,
}

impl ChaosReport {
    /// The fault plans exercised, in matrix order.
    #[must_use]
    pub fn plans(&self) -> &[NamedPlan] {
        &self.plans
    }

    /// Fault-free outcomes per policy.
    #[must_use]
    pub fn baseline(&self) -> &[PolicyOutcome] {
        &self.baseline
    }

    /// All matrix cells, plan-major.
    #[must_use]
    pub fn cells(&self) -> &[ChaosCell] {
        &self.cells
    }

    /// The cell for one policy under one named plan.
    #[must_use]
    pub fn cell(&self, policy: PolicyKind, plan: &str) -> Option<&ChaosCell> {
        self.cells
            .iter()
            .find(|c| c.policy == policy && c.plan == plan)
    }
}

/// Run the policy × fault-plan chaos matrix: every policy under every
/// plan across every seed, compared against the same policies' fault-free
/// baseline — the unified entry point. Pass [`Telemetry::noop()`] for an
/// unprofiled matrix; with a kit attached, trial durations accumulate in
/// its span profile under `trial.<policy>` across the baseline and every
/// fault plan.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for empty inputs or an invalid
/// fault plan, and propagates the first simulation error encountered.
pub fn chaos(
    scenario: &Scenario,
    policies: &[PolicyKind],
    plans: &[NamedPlan],
    seeds: &[u64],
    telemetry: &mut Telemetry,
) -> crate::Result<ChaosReport> {
    chaos_impl(scenario, policies, plans, seeds, 1, &mut telemetry.spans)
}

/// [`chaos`] with each trial's agent kernel fanned out over `jobs`
/// scoped threads; the report is byte-identical at every job count.
///
/// # Errors
///
/// As [`chaos`].
pub fn chaos_jobs(
    scenario: &Scenario,
    policies: &[PolicyKind],
    plans: &[NamedPlan],
    seeds: &[u64],
    jobs: usize,
    telemetry: &mut Telemetry,
) -> crate::Result<ChaosReport> {
    chaos_impl(scenario, policies, plans, seeds, jobs, &mut telemetry.spans)
}

fn chaos_impl(
    scenario: &Scenario,
    policies: &[PolicyKind],
    plans: &[NamedPlan],
    seeds: &[u64],
    jobs: usize,
    spans: &mut SpanProfile,
) -> crate::Result<ChaosReport> {
    if plans.is_empty() {
        return Err(SimError::InvalidParameter {
            name: "plans",
            value: 0.0,
            expected: "at least one fault plan",
        });
    }
    for p in plans {
        p.plan.validate()?;
    }
    let baseline = compare_impl(
        &scenario.clone().with_faults(FaultPlan::none()),
        policies,
        seeds,
        jobs,
        spans,
    )?;
    let mut cells = Vec::with_capacity(plans.len() * policies.len());
    for named in plans {
        let faulted = scenario.clone().with_faults(named.plan);
        let cmp = compare_impl(&faulted, policies, seeds, jobs, spans)?;
        for outcome in cmp.outcomes() {
            let base = baseline
                .outcome(outcome.policy)
                .map_or(0.0, |o| o.tasks_per_agent_epoch);
            let degradation = if base > 0.0 {
                outcome.tasks_per_agent_epoch / base
            } else {
                0.0
            };
            cells.push(ChaosCell {
                policy: outcome.policy,
                plan: named.name.clone(),
                tasks_per_agent_epoch: outcome.tasks_per_agent_epoch,
                baseline_tasks_per_agent_epoch: base,
                degradation,
                trips: outcome.trips,
                faults: outcome.faults,
            });
        }
    }
    Ok(ChaosReport {
        plans: plans.to_vec(),
        baseline: baseline.outcomes().to_vec(),
        cells,
    })
}

/// Aggregated outcome of the partition-resilience suite: one
/// [`ControlSim`] trial per seed under a shared fault plan, with the
/// acceptance invariants pre-digested.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResilienceReport {
    /// The fault plan every trial ran under.
    pub plan: FaultPlan,
    /// Control-plane timing in effect.
    pub control: ControlConfig,
    /// Per-seed control-plane reports, in seed order.
    pub trials: Vec<ControlReport>,
    /// Agent-epochs at which any agent lacked a usable threshold,
    /// summed across trials. The suite's hard invariant: must be 0.
    pub invariant_violations: u64,
    /// Recovery-weighted mean epochs back to the equilibrium tier.
    pub mean_recovery_epochs: Option<f64>,
    /// Mean realized sprint-gain proxy across trials.
    pub mean_utility: f64,
    /// The always-conservative baseline proxy (identical across trials).
    pub conservative_utility: f64,
}

impl ResilienceReport {
    /// Whether mean recovery landed within `lease_periods` lease windows.
    /// Vacuously true when nothing ever degraded.
    #[must_use]
    pub fn recovered_within(&self, lease_periods: f64) -> bool {
        self.mean_recovery_epochs
            .is_none_or(|m| m <= lease_periods * f64::from(self.control.lease_epochs))
    }
}

/// Run the partition-resilience suite: one [`ControlSim`] trial per
/// seed (in parallel, one thread each) under `plan`, aggregated in seed
/// order so the report is byte-reproducible. With a telemetry kit
/// attached, per-trial durations accumulate under `trial.control`.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for empty `seeds` and
/// propagates configuration errors; degraded trials are data, not
/// errors.
pub fn resilience(
    scenario: &Scenario,
    plan: FaultPlan,
    control: ControlConfig,
    seeds: &[u64],
    telemetry: &mut Telemetry,
) -> crate::Result<ResilienceReport> {
    if seeds.is_empty() {
        return Err(SimError::InvalidParameter {
            name: "seeds",
            value: 0.0,
            expected: "at least one seed",
        });
    }
    let sim = ControlSim::new(
        *scenario.game(),
        scenario.mixture_density()?,
        scenario.epochs(),
    )?
    .with_faults(plan)
    .with_control(control);
    let results: Vec<crate::Result<(ControlReport, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let sim = &sim;
                scope.spawn(move || {
                    let started = std::time::Instant::now();
                    sim.run(seed, &mut Telemetry::noop())
                        .map(|r| (r, started.elapsed().as_nanos() as u64))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or(Err(SimError::WorkerPanicked {
                    what: "control-plane resilience trial",
                }))
            })
            .collect()
    });

    let mut trials = Vec::with_capacity(seeds.len());
    for r in results {
        let (report, nanos) = r?;
        telemetry.spans.record_nanos("trial.control", nanos);
        trials.push(report);
    }
    let invariant_violations = trials.iter().map(|t| t.invariant_violations).sum();
    let recoveries: u64 = trials.iter().map(|t| t.recoveries).sum();
    let mean_recovery_epochs = (recoveries > 0).then(|| {
        trials
            .iter()
            .filter_map(|t| Some(t.mean_recovery_epochs? * t.recoveries as f64))
            .sum::<f64>()
            / recoveries as f64
    });
    let mean_utility = trials.iter().map(|t| t.mean_utility).sum::<f64>() / trials.len() as f64;
    let conservative_utility = trials[0].conservative_utility;
    Ok(ResilienceReport {
        plan,
        control,
        trials,
        invariant_violations,
        mean_recovery_epochs,
        mean_utility,
        conservative_utility,
    })
}

/// One seed of the adversary-defense suite: the same scenario run three
/// ways so enforcement value is measured against matched baselines.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdversaryTrial {
    /// Trial seed.
    pub seed: u64,
    /// Fully honest population with the detector armed — the throughput
    /// baseline and the false-positive self-test.
    pub honest: ControlReport,
    /// Adversaries present, detector observing but never punishing —
    /// the damage they do unchecked.
    pub unenforced: ControlReport,
    /// Adversaries present, graduated sanctions enforced.
    pub enforced: ControlReport,
}

/// Aggregated outcome of the adversary-defense acceptance suite.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdversaryReport {
    /// The fault plan every trial ran under.
    pub plan: FaultPlan,
    /// Control-plane timing in effect.
    pub control: ControlConfig,
    /// Detector and sanctions configuration.
    pub detector: DetectorConfig,
    /// The adversary population specification.
    pub mix: AdversaryMix,
    /// Agents per trial.
    pub agents: u32,
    /// Epochs per trial.
    pub epochs: usize,
    /// Per-seed triples, in seed order.
    pub trials: Vec<AdversaryTrial>,
    /// Mean honest-population throughput (tasks per agent-epoch).
    pub honest_throughput: f64,
    /// Mean throughput with adversaries unchecked.
    pub unenforced_throughput: f64,
    /// Mean throughput with graduated enforcement.
    pub enforced_throughput: f64,
    /// `enforced / honest` — the acceptance gate requires ≥ 0.95.
    pub recovery_ratio: f64,
    /// `unenforced / honest` — how much damage enforcement undoes.
    pub unenforced_ratio: f64,
    /// Detections across enforced trials.
    pub detections: u64,
    /// Permanent exclusions across enforced trials.
    pub exclusions: u64,
    /// Completed probations across enforced trials.
    pub readmissions: u64,
    /// Honest agents permanently excluded, across the honest *and*
    /// enforced legs — the acceptance gate requires exactly 0.
    pub false_positive_exclusions: u64,
    /// Adversaries never detected, summed across enforced trials.
    pub false_negatives: u64,
    /// Detection-count-weighted mean epochs to first detection.
    pub mean_detection_latency_epochs: Option<f64>,
}

/// Run the adversary-defense suite: for each seed, the same rack is run
/// honest (detector armed — any sanction is a false positive), with
/// adversaries unchecked, and with graduated enforcement. One thread
/// per seed; aggregation is in seed order so the report is
/// byte-reproducible at any parallelism. With a telemetry kit attached,
/// per-trial durations accumulate under `trial.adversary` and per-trial
/// detection-latency / false-positive / false-negative distributions
/// land in the metrics registry.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for empty `seeds` or an
/// adversary fraction of zero, and propagates configuration errors.
pub fn adversary_defense(
    scenario: &Scenario,
    plan: FaultPlan,
    control: ControlConfig,
    detector: DetectorConfig,
    mix: AdversaryMix,
    seeds: &[u64],
    telemetry: &mut Telemetry,
) -> crate::Result<AdversaryReport> {
    if seeds.is_empty() {
        return Err(SimError::InvalidParameter {
            name: "seeds",
            value: 0.0,
            expected: "at least one seed",
        });
    }
    if mix.fraction <= 0.0 {
        return Err(SimError::InvalidParameter {
            name: "fraction",
            value: mix.fraction,
            expected: "a positive adversary fraction (the honest leg is built in)",
        });
    }
    mix.validate()?;
    detector.validate()?;
    let base = ControlSim::new(
        *scenario.game(),
        scenario.mixture_density()?,
        scenario.epochs(),
    )?
    .with_faults(plan)
    .with_control(control);
    let honest_sim = base.clone().with_detector(detector);
    let unenforced_sim = base
        .clone()
        .with_adversaries(mix)
        .with_detector(DetectorConfig {
            enforcement: false,
            ..detector
        });
    let enforced_sim = base.with_adversaries(mix).with_detector(detector);

    let results: Vec<crate::Result<(AdversaryTrial, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let (h, u, e) = (&honest_sim, &unenforced_sim, &enforced_sim);
                scope.spawn(move || {
                    let started = std::time::Instant::now();
                    let honest = h.run(seed, &mut Telemetry::noop())?;
                    let unenforced = u.run(seed, &mut Telemetry::noop())?;
                    let enforced = e.run(seed, &mut Telemetry::noop())?;
                    Ok((
                        AdversaryTrial {
                            seed,
                            honest,
                            unenforced,
                            enforced,
                        },
                        started.elapsed().as_nanos() as u64,
                    ))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or(Err(SimError::WorkerPanicked {
                    what: "adversary-defense trial",
                }))
            })
            .collect()
    });

    let mut trials = Vec::with_capacity(seeds.len());
    for r in results {
        let (trial, nanos) = r?;
        telemetry.spans.record_nanos("trial.adversary", nanos);
        trials.push(trial);
    }

    let mean_throughput = |pick: fn(&AdversaryTrial) -> &ControlReport| -> f64 {
        trials
            .iter()
            .filter_map(|t| pick(t).defense.as_ref().map(|d| d.throughput))
            .sum::<f64>()
            / trials.len() as f64
    };
    let honest_throughput = mean_throughput(|t| &t.honest);
    let unenforced_throughput = mean_throughput(|t| &t.unenforced);
    let enforced_throughput = mean_throughput(|t| &t.enforced);
    let ratio = |num: f64| {
        if honest_throughput > 0.0 {
            num / honest_throughput
        } else {
            0.0
        }
    };

    let mut detections = 0u64;
    let mut exclusions = 0u64;
    let mut readmissions = 0u64;
    let mut false_positive_exclusions = 0u64;
    let mut false_negatives = 0u64;
    let mut latency_weighted = 0.0f64;
    let mut latency_count = 0u64;
    for t in &trials {
        if let Some(d) = &t.enforced.defense {
            detections += d.detections;
            exclusions += d.exclusions;
            readmissions += d.readmissions;
            false_positive_exclusions += d.false_positive_exclusions;
            false_negatives += u64::from(d.false_negatives);
            if let Some(m) = d.mean_detection_latency_epochs {
                let k = u64::from(d.adversaries - d.false_negatives);
                latency_weighted += m * k as f64;
                latency_count += k;
            }
        }
        if let Some(d) = &t.honest.defense {
            // No adversaries exist in the honest leg: every exclusion
            // there is a false positive by construction.
            false_positive_exclusions += d.exclusions;
        }
    }
    let mean_detection_latency_epochs =
        (latency_count > 0).then(|| latency_weighted / latency_count as f64);

    if telemetry.enabled() {
        let reg = &mut telemetry.registry;
        let lat = reg.histogram(
            "defense.trial.detection_latency_epochs",
            &[10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0],
        );
        let fps = reg.histogram(
            "defense.trial.false_positives",
            &[0.5, 1.5, 2.5, 4.5, 8.5, 16.5],
        );
        let fns = reg.histogram(
            "defense.trial.false_negatives",
            &[0.5, 1.5, 2.5, 4.5, 8.5, 16.5],
        );
        for t in &trials {
            if let Some(d) = &t.enforced.defense {
                if let Some(m) = d.mean_detection_latency_epochs {
                    reg.observe(lat, m);
                }
                let fp = d.false_positive_warnings
                    + d.false_positive_revocations
                    + d.false_positive_exclusions;
                reg.observe(fps, fp as f64);
                reg.observe(fns, f64::from(d.false_negatives));
            }
        }
    }

    Ok(AdversaryReport {
        plan,
        control,
        detector,
        mix,
        agents: scenario.game().n_agents(),
        epochs: scenario.epochs(),
        trials,
        honest_throughput,
        unenforced_throughput,
        enforced_throughput,
        recovery_ratio: ratio(enforced_throughput),
        unenforced_ratio: ratio(unenforced_throughput),
        detections,
        exclusions,
        readmissions,
        false_positive_exclusions,
        false_negatives,
        mean_detection_latency_epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::Benchmark;

    #[test]
    fn validates_inputs() {
        let s = Scenario::homogeneous(Benchmark::Svm, 20, 10).unwrap();
        assert!(compare(&s, &[], &[1], &mut Telemetry::noop()).is_err());
        assert!(compare(&s, &[PolicyKind::Greedy], &[], &mut Telemetry::noop()).is_err());
    }

    #[test]
    fn comparison_reproduces_figure8_ordering() {
        // E-T and C-T beat E-B which beats (or ties) G for a diverse
        // profile, even at reduced scale.
        let s = Scenario::homogeneous(Benchmark::DecisionTree, 120, 300).unwrap();
        let cmp = compare(&s, &PolicyKind::ALL, &[1, 2], &mut Telemetry::noop()).unwrap();
        let g = cmp
            .outcome(PolicyKind::Greedy)
            .unwrap()
            .tasks_per_agent_epoch;
        let eb = cmp
            .outcome(PolicyKind::ExponentialBackoff)
            .unwrap()
            .tasks_per_agent_epoch;
        let et = cmp
            .outcome(PolicyKind::EquilibriumThreshold)
            .unwrap()
            .tasks_per_agent_epoch;
        let ct = cmp
            .outcome(PolicyKind::CooperativeThreshold)
            .unwrap()
            .tasks_per_agent_epoch;
        assert!(et > eb, "E-T {et} must beat E-B {eb}");
        assert!(eb >= g * 0.9, "E-B {eb} roughly matches or beats G {g}");
        assert!(ct > g, "C-T {ct} must beat G {g}");
        let norm = cmp
            .normalized_to_greedy(PolicyKind::EquilibriumThreshold)
            .unwrap();
        assert!(norm > 2.0, "E-T/G = {norm}");
    }

    #[test]
    fn greedy_normalization_is_one() {
        let s = Scenario::homogeneous(Benchmark::Als, 40, 60).unwrap();
        let cmp = compare(&s, &[PolicyKind::Greedy], &[5], &mut Telemetry::noop()).unwrap();
        assert!((cmp.normalized_to_greedy(PolicyKind::Greedy).unwrap() - 1.0).abs() < 1e-12);
        assert!(cmp
            .normalized_to_greedy(PolicyKind::CooperativeThreshold)
            .is_none());
    }

    #[test]
    fn aggregation_averages_across_seeds() {
        let s = Scenario::homogeneous(Benchmark::Kmeans, 30, 50).unwrap();
        let cmp = compare(
            &s,
            &[PolicyKind::Greedy],
            &[1, 2, 3],
            &mut Telemetry::noop(),
        )
        .unwrap();
        let o = cmp.outcome(PolicyKind::Greedy).unwrap();
        assert!(o.tasks_per_agent_epoch > 0.0);
        assert!(o.tasks_std_dev >= 0.0);
        let occ_sum: f64 = o.occupancy.iter().sum();
        assert!((occ_sum - 1.0).abs() < 1e-9);
        // Three trials yield a confidence interval containing the mean.
        let ci = o.tasks_ci.expect("multiple trials");
        assert!(ci.contains(o.tasks_per_agent_epoch));
    }

    #[test]
    fn profiled_comparison_times_every_trial() {
        let s = Scenario::homogeneous(Benchmark::Svm, 20, 30).unwrap();
        let mut kit = Telemetry::in_memory();
        let policies = [PolicyKind::Greedy, PolicyKind::ExponentialBackoff];
        let cmp = compare(&s, &policies, &[1, 2, 3], &mut kit).unwrap();
        let spans = kit.spans;
        assert_eq!(cmp.outcomes().len(), 2);
        for p in policies {
            let stats = spans.stats(&format!("trial.{p}")).expect("trial span");
            assert_eq!(stats.count, 3, "one span per seed for {p}");
        }
        assert_eq!(spans.stats("runner.compare").unwrap().count, 1);
    }

    #[test]
    fn standard_suite_covers_every_fault_kind() {
        let suite = standard_fault_suite(9);
        assert_eq!(suite.len(), 6);
        let names: Vec<&str> = suite.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "crash-churn",
                "stuck-sprinters",
                "sensor-noise",
                "breaker-drift",
                "stale-coordinator",
                "composite"
            ]
        );
        // Each single-fault plan enables exactly one component.
        for named in &suite[..5] {
            let p = named.plan;
            let enabled = usize::from(p.crash.is_some())
                + usize::from(p.stuck.is_some())
                + usize::from(p.sensor.is_some())
                + usize::from(p.breaker_drift.is_some())
                + usize::from(p.staleness.is_some());
            assert_eq!(enabled, 1, "{} enables one fault", named.name);
            p.validate().unwrap();
        }
        assert_eq!(suite[5].plan, FaultPlan::composite(9));
    }

    #[test]
    fn chaos_matrix_validates_and_fills_cells() {
        let s = Scenario::homogeneous(Benchmark::Svm, 30, 40).unwrap();
        assert!(chaos(&s, &[PolicyKind::Greedy], &[], &[1], &mut Telemetry::noop()).is_err());
        let plans = vec![
            NamedPlan {
                name: "clean".to_string(),
                plan: FaultPlan::none(),
            },
            NamedPlan {
                name: "composite".to_string(),
                plan: FaultPlan::composite(3),
            },
        ];
        let policies = [PolicyKind::Greedy, PolicyKind::EquilibriumThreshold];
        let report = chaos(&s, &policies, &plans, &[1, 2], &mut Telemetry::noop()).unwrap();
        assert_eq!(report.plans().len(), 2);
        assert_eq!(report.baseline().len(), 2);
        assert_eq!(report.cells().len(), 4);
        // The clean "plan" reproduces the baseline exactly.
        for kind in policies {
            let cell = report.cell(kind, "clean").unwrap();
            assert!(
                (cell.tasks_per_agent_epoch - cell.baseline_tasks_per_agent_epoch).abs() < 1e-12,
                "clean plan must match baseline for {kind:?}"
            );
            assert!((cell.degradation - 1.0).abs() < 1e-12);
            assert!(cell.faults.is_clean());
        }
        // The composite plan records fault activity and finite degradation.
        let cell = report.cell(PolicyKind::Greedy, "composite").unwrap();
        assert!(!cell.faults.is_clean(), "composite plan must leave traces");
        assert!(cell.degradation.is_finite());
        assert!(report.cell(PolicyKind::Greedy, "missing").is_none());
    }

    #[test]
    fn adversary_defense_validates_inputs() {
        let s = Scenario::homogeneous(Benchmark::Svm, 30, 40).unwrap();
        let mix = AdversaryMix::greedy(0.1, 7);
        assert!(adversary_defense(
            &s,
            FaultPlan::none(),
            ControlConfig::default(),
            DetectorConfig::default(),
            mix,
            &[],
            &mut Telemetry::noop(),
        )
        .is_err());
        assert!(adversary_defense(
            &s,
            FaultPlan::none(),
            ControlConfig::default(),
            DetectorConfig::default(),
            AdversaryMix::honest(),
            &[1],
            &mut Telemetry::noop(),
        )
        .is_err());
    }

    #[test]
    fn adversary_defense_detects_and_recovers() {
        let s = Scenario::homogeneous(Benchmark::Svm, 40, 400).unwrap();
        let mut telemetry = Telemetry::in_memory();
        let report = adversary_defense(
            &s,
            FaultPlan::adversary_chaos(11),
            ControlConfig::default(),
            DetectorConfig::default(),
            AdversaryMix::greedy(0.1, 11),
            &[1, 2],
            &mut telemetry,
        )
        .unwrap();
        assert_eq!(report.trials.len(), 2);
        assert_eq!(report.agents, 40);
        assert!(
            report.detections > 0,
            "greedy defectors must be detected: {report:?}"
        );
        assert!(
            report.recovery_ratio > report.unenforced_ratio,
            "enforcement must beat laissez-faire: {} vs {}",
            report.recovery_ratio,
            report.unenforced_ratio
        );
        for t in &report.trials {
            let h = t.honest.defense.as_ref().unwrap();
            assert_eq!(h.adversaries, 0);
            let e = t.enforced.defense.as_ref().unwrap();
            assert_eq!(e.adversaries, 4, "10% of 40 agents");
        }
        // Per-trial distributions landed in the registry and spans.
        let snapshot = telemetry.registry.snapshot();
        assert!(snapshot
            .histograms
            .contains_key("defense.trial.detection_latency_epochs"));
        assert_eq!(telemetry.spans.stats("trial.adversary").unwrap().count, 2);
    }

    #[test]
    fn adversary_defense_report_serializes() {
        let s = Scenario::homogeneous(Benchmark::Kmeans, 20, 120).unwrap();
        let report = adversary_defense(
            &s,
            FaultPlan::none(),
            ControlConfig::default(),
            DetectorConfig::default(),
            AdversaryMix::greedy(0.15, 3),
            &[5],
            &mut Telemetry::noop(),
        )
        .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: AdversaryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn chaos_report_serializes() {
        let s = Scenario::homogeneous(Benchmark::Kmeans, 25, 30).unwrap();
        let plans = standard_fault_suite(5);
        let report = chaos(
            &s,
            &[PolicyKind::Greedy],
            &plans,
            &[4],
            &mut Telemetry::noop(),
        )
        .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"composite\""));
        assert!(json.contains("degradation"));
        let back: ChaosReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
