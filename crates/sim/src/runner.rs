//! Multi-trial experiment runner.
//!
//! The paper reports averages over repeated randomized runs (e.g.
//! Figure 9 repeats each mix ten times). [`compare_policies`] runs a
//! scenario under several policies across several seeds in parallel
//! (one thread per policy × seed pair, via crossbeam's scoped threads)
//! and aggregates the metrics.

use crossbeam::thread;
use sprint_stats::summary::{confidence_interval_95, ConfidenceInterval, OnlineStats};

use crate::metrics::SimResult;
use crate::policy::PolicyKind;
use crate::scenario::Scenario;
use crate::SimError;

/// Aggregated outcome of one policy across trials.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PolicyOutcome {
    /// The policy.
    pub policy: PolicyKind,
    /// Mean task throughput per agent-epoch across trials.
    pub tasks_per_agent_epoch: f64,
    /// Standard deviation of the throughput across trials.
    pub tasks_std_dev: f64,
    /// 95 % Student-t confidence interval of the throughput across trials
    /// (`None` when only one trial was run).
    pub tasks_ci: Option<ConfidenceInterval>,
    /// Mean occupancy fractions `[active idle, cooling, recovery,
    /// sprinting]`.
    pub occupancy: [f64; 4],
    /// Mean sprinters per epoch.
    pub mean_sprinters: f64,
    /// Mean breaker trips per run.
    pub trips: f64,
}

/// A full policy comparison with Greedy-normalized throughput.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Comparison {
    outcomes: Vec<PolicyOutcome>,
}

impl Comparison {
    /// Per-policy outcomes in the order requested.
    #[must_use]
    pub fn outcomes(&self) -> &[PolicyOutcome] {
        &self.outcomes
    }

    /// Outcome for a specific policy.
    #[must_use]
    pub fn outcome(&self, policy: PolicyKind) -> Option<&PolicyOutcome> {
        self.outcomes.iter().find(|o| o.policy == policy)
    }

    /// Throughput normalized to Greedy (the paper's Figure 8/9 metric),
    /// or `None` when Greedy was not among the compared policies.
    #[must_use]
    pub fn normalized_to_greedy(&self, policy: PolicyKind) -> Option<f64> {
        let greedy = self.outcome(PolicyKind::Greedy)?.tasks_per_agent_epoch;
        let target = self.outcome(policy)?.tasks_per_agent_epoch;
        if greedy <= 0.0 {
            return None;
        }
        Some(target / greedy)
    }
}

fn aggregate(policy: PolicyKind, results: &[SimResult]) -> PolicyOutcome {
    let per_trial: Vec<f64> = results
        .iter()
        .map(SimResult::tasks_per_agent_epoch)
        .collect();
    let tasks: OnlineStats = per_trial.iter().copied().collect();
    let tasks_ci = confidence_interval_95(&per_trial).ok();
    let mut occupancy = [0.0f64; 4];
    for r in results {
        let f = r.occupancy().fractions();
        for (acc, x) in occupancy.iter_mut().zip(f) {
            *acc += x;
        }
    }
    for acc in &mut occupancy {
        *acc /= results.len() as f64;
    }
    PolicyOutcome {
        policy,
        tasks_per_agent_epoch: tasks.mean(),
        tasks_std_dev: tasks.std_dev(),
        tasks_ci,
        occupancy,
        mean_sprinters: results.iter().map(SimResult::mean_sprinters).sum::<f64>()
            / results.len() as f64,
        trips: results.iter().map(|r| f64::from(r.trips())).sum::<f64>() / results.len() as f64,
    }
}

/// Run `scenario` under each policy for every seed, in parallel, and
/// aggregate.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for empty `policies`/`seeds`
/// and propagates the first simulation error encountered.
pub fn compare_policies(
    scenario: &Scenario,
    policies: &[PolicyKind],
    seeds: &[u64],
) -> crate::Result<Comparison> {
    if policies.is_empty() {
        return Err(SimError::InvalidParameter {
            name: "policies",
            value: 0.0,
            expected: "at least one policy",
        });
    }
    if seeds.is_empty() {
        return Err(SimError::InvalidParameter {
            name: "seeds",
            value: 0.0,
            expected: "at least one seed",
        });
    }

    let results: Vec<crate::Result<(PolicyKind, SimResult)>> = thread::scope(|scope| {
        let handles: Vec<_> = policies
            .iter()
            .flat_map(|&policy| seeds.iter().map(move |&seed| (policy, seed)))
            .map(|(policy, seed)| {
                scope.spawn(move |_| scenario.run(policy, seed).map(|r| (policy, r)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("simulation threads do not panic"))
            .collect()
    })
    .expect("scoped threads do not panic");

    let mut by_policy: Vec<(PolicyKind, Vec<SimResult>)> =
        policies.iter().map(|&p| (p, Vec::new())).collect();
    for r in results {
        let (policy, result) = r?;
        by_policy
            .iter_mut()
            .find(|(p, _)| *p == policy)
            .expect("policy was requested")
            .1
            .push(result);
    }
    Ok(Comparison {
        outcomes: by_policy
            .iter()
            .map(|(p, rs)| aggregate(*p, rs))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::Benchmark;

    #[test]
    fn validates_inputs() {
        let s = Scenario::homogeneous(Benchmark::Svm, 20, 10).unwrap();
        assert!(compare_policies(&s, &[], &[1]).is_err());
        assert!(compare_policies(&s, &[PolicyKind::Greedy], &[]).is_err());
    }

    #[test]
    fn comparison_reproduces_figure8_ordering() {
        // E-T and C-T beat E-B which beats (or ties) G for a diverse
        // profile, even at reduced scale.
        let s = Scenario::homogeneous(Benchmark::DecisionTree, 120, 300).unwrap();
        let cmp = compare_policies(&s, &PolicyKind::ALL, &[1, 2]).unwrap();
        let g = cmp.outcome(PolicyKind::Greedy).unwrap().tasks_per_agent_epoch;
        let eb = cmp
            .outcome(PolicyKind::ExponentialBackoff)
            .unwrap()
            .tasks_per_agent_epoch;
        let et = cmp
            .outcome(PolicyKind::EquilibriumThreshold)
            .unwrap()
            .tasks_per_agent_epoch;
        let ct = cmp
            .outcome(PolicyKind::CooperativeThreshold)
            .unwrap()
            .tasks_per_agent_epoch;
        assert!(et > eb, "E-T {et} must beat E-B {eb}");
        assert!(eb >= g * 0.9, "E-B {eb} roughly matches or beats G {g}");
        assert!(ct > g, "C-T {ct} must beat G {g}");
        let norm = cmp
            .normalized_to_greedy(PolicyKind::EquilibriumThreshold)
            .unwrap();
        assert!(norm > 2.0, "E-T/G = {norm}");
    }

    #[test]
    fn greedy_normalization_is_one() {
        let s = Scenario::homogeneous(Benchmark::Als, 40, 60).unwrap();
        let cmp = compare_policies(&s, &[PolicyKind::Greedy], &[5]).unwrap();
        assert!((cmp.normalized_to_greedy(PolicyKind::Greedy).unwrap() - 1.0).abs() < 1e-12);
        assert!(cmp
            .normalized_to_greedy(PolicyKind::CooperativeThreshold)
            .is_none());
    }

    #[test]
    fn aggregation_averages_across_seeds() {
        let s = Scenario::homogeneous(Benchmark::Kmeans, 30, 50).unwrap();
        let cmp = compare_policies(&s, &[PolicyKind::Greedy], &[1, 2, 3]).unwrap();
        let o = cmp.outcome(PolicyKind::Greedy).unwrap();
        assert!(o.tasks_per_agent_epoch > 0.0);
        assert!(o.tasks_std_dev >= 0.0);
        let occ_sum: f64 = o.occupancy.iter().sum();
        assert!((occ_sum - 1.0).abs() < 1e-9);
        // Three trials yield a confidence interval containing the mean.
        let ci = o.tasks_ci.expect("multiple trials");
        assert!(ci.contains(o.tasks_per_agent_epoch));
    }
}
