//! Simulation metrics: throughput, state occupancy, sprint dynamics.
//!
//! The paper reports task throughput (TPS, Figure 8/9), the number of
//! sprinters per epoch (Figure 6), and the share of time agents spend in
//! each state (Figure 7). [`SimResult`] collects all three from one run,
//! plus per-fault counters ([`crate::faults::FaultMetrics`]) when a fault
//! plan is active.

use crate::faults::FaultMetrics;

/// Epochs spent in each condition, summed over agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct StateOccupancy {
    /// Active epochs spent in normal mode (not sprinting).
    pub active_idle: u64,
    /// Epochs spent sprinting.
    pub sprinting: u64,
    /// Epochs spent chip-cooling.
    pub cooling: u64,
    /// Epochs spent in rack recovery.
    pub recovery: u64,
}

impl StateOccupancy {
    /// Total agent-epochs observed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.active_idle + self.sprinting + self.cooling + self.recovery
    }

    /// Fractions in Figure 7's order:
    /// `[active (not sprinting), cooling, recovery, sprinting]`.
    #[must_use]
    pub fn fractions(&self) -> [f64; 4] {
        let total = self.total().max(1) as f64;
        [
            self.active_idle as f64 / total,
            self.cooling as f64 / total,
            self.recovery as f64 / total,
            self.sprinting as f64 / total,
        ]
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimResult {
    pub(crate) n_agents: u32,
    pub(crate) epochs: usize,
    pub(crate) sprinters_per_epoch: Vec<u32>,
    pub(crate) total_tasks: f64,
    pub(crate) trips: u32,
    pub(crate) occupancy: StateOccupancy,
    pub(crate) faults: FaultMetrics,
}

impl SimResult {
    /// Number of simulated agents.
    #[must_use]
    pub fn n_agents(&self) -> u32 {
        self.n_agents
    }

    /// Number of simulated epochs.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Sprinter count per epoch — the Figure 6 time series.
    #[must_use]
    pub fn sprinters_per_epoch(&self) -> &[u32] {
        &self.sprinters_per_epoch
    }

    /// Total task-units completed (normal-mode epoch = 1 task-unit).
    #[must_use]
    pub fn total_tasks(&self) -> f64 {
        self.total_tasks
    }

    /// Task throughput per agent per epoch — the paper's TPS metric,
    /// normalized so an always-normal-mode agent scores 1. An empty run
    /// (no agents or no epochs) scores 0, not NaN.
    #[must_use]
    pub fn tasks_per_agent_epoch(&self) -> f64 {
        let denom = f64::from(self.n_agents) * self.epochs as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.total_tasks / denom
        }
    }

    /// Number of power emergencies (breaker trips).
    #[must_use]
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// State occupancy, summed over agents — the Figure 7 data.
    #[must_use]
    pub fn occupancy(&self) -> StateOccupancy {
        self.occupancy
    }

    /// Per-fault counters: all zero unless the run carried an active
    /// fault plan.
    #[must_use]
    pub fn faults(&self) -> FaultMetrics {
        self.faults
    }

    /// Mean sprinters per epoch (recovery epochs count as zero sprinters,
    /// exactly as Figure 6 plots them).
    #[must_use]
    pub fn mean_sprinters(&self) -> f64 {
        if self.sprinters_per_epoch.is_empty() {
            return 0.0;
        }
        self.sprinters_per_epoch
            .iter()
            .map(|&s| f64::from(s))
            .sum::<f64>()
            / self.sprinters_per_epoch.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_fractions_sum_to_one() {
        let occ = StateOccupancy {
            active_idle: 10,
            sprinting: 20,
            cooling: 30,
            recovery: 40,
        };
        assert_eq!(occ.total(), 100);
        let f = occ.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[3] - 0.2).abs() < 1e-12, "sprinting fraction");
    }

    #[test]
    fn empty_occupancy_is_safe() {
        let occ = StateOccupancy::default();
        assert_eq!(occ.total(), 0);
        assert_eq!(occ.fractions(), [0.0; 4]);
    }

    #[test]
    fn result_accessors() {
        let r = SimResult {
            n_agents: 10,
            epochs: 4,
            sprinters_per_epoch: vec![1, 2, 3, 4],
            total_tasks: 80.0,
            trips: 1,
            occupancy: StateOccupancy::default(),
            faults: FaultMetrics::default(),
        };
        assert!(r.faults().is_clean());
        assert_eq!(r.tasks_per_agent_epoch(), 2.0);
        assert_eq!(r.mean_sprinters(), 2.5);
        assert_eq!(r.trips(), 1);
        assert_eq!(r.sprinters_per_epoch().len(), 4);
    }

    #[test]
    fn empty_run_throughput_is_zero_not_nan() {
        // `SimConfig` rejects zero epochs, but results can also be built
        // from archived JSON (see the serde test) where nothing enforces
        // that; ratios over an empty run must stay finite.
        for (n_agents, epochs) in [(0u32, 0usize), (0, 5), (10, 0)] {
            let r = SimResult {
                n_agents,
                epochs,
                sprinters_per_epoch: vec![],
                total_tasks: 0.0,
                trips: 0,
                occupancy: StateOccupancy::default(),
                faults: FaultMetrics::default(),
            };
            assert_eq!(r.tasks_per_agent_epoch(), 0.0, "{n_agents}x{epochs}");
            assert_eq!(r.mean_sprinters(), 0.0);
            assert_eq!(r.occupancy().fractions(), [0.0; 4]);
        }
    }

    #[test]
    fn serde_round_trips_results() {
        let r = SimResult {
            n_agents: 10,
            epochs: 2,
            sprinters_per_epoch: vec![3, 0],
            total_tasks: 25.5,
            trips: 1,
            occupancy: StateOccupancy {
                active_idle: 5,
                sprinting: 3,
                cooling: 2,
                recovery: 10,
            },
            faults: FaultMetrics {
                crashes: 2,
                restarts: 1,
                crashed_agent_epochs: 4,
                stuck_epochs: 3,
                sensor_dropouts: 1,
                spurious_trips: 1,
                missed_trips: 0,
            },
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: SimResult = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        // Results are archivable: experiment records survive the trip.
        assert_eq!(back.occupancy().fractions(), r.occupancy().fractions());
    }
}
