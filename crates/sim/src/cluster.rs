//! Cluster-level sprinting: multiple racks under a facility breaker.
//!
//! An extension beyond the paper toward its cited future work (datacenter
//! sprinting, hierarchical power control): `K` racks each run the
//! single-rack game behind their own breaker, but their *total* sprinter
//! count also loads a facility-level breaker. A facility emergency idles
//! every rack at once.
//!
//! The interesting question is strategic: agents that best-respond only to
//! their rack's band can be collectively safe per rack yet overload the
//! facility. [`ClusterConfig::facility_aware_band`] gives the standard
//! fix — each rack
//! plays the game against the *tighter* of its own band and its share of
//! the facility band — and [`simulate_cluster`] lets both designs be
//! compared under full dynamics.

use rand::Rng;

use sprint_game::trip::TripCurve;
use sprint_game::{AgentState, GameConfig};
use sprint_stats::rng::seeded_rng;
use sprint_workloads::phases::PhasedUtility;

use crate::policy::SprintPolicy;
use crate::SimError;

/// Configuration of a multi-rack cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Per-rack game parameters (every rack is identical).
    rack_game: GameConfig,
    /// Number of racks.
    n_racks: u32,
    /// Facility breaker band over the cluster-wide sprinter count.
    facility_n_min: f64,
    facility_n_max: f64,
    /// Persistence of a facility-level emergency (like `p_r`, but for the
    /// facility supply).
    facility_p_recovery: f64,
    epochs: usize,
    seed: u64,
}

impl ClusterConfig {
    /// Create a cluster configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero racks/epochs, an
    /// inverted facility band, or a facility persistence outside `[0, 1]`.
    pub fn new(
        rack_game: GameConfig,
        n_racks: u32,
        facility_n_min: f64,
        facility_n_max: f64,
        facility_p_recovery: f64,
        epochs: usize,
        seed: u64,
    ) -> crate::Result<Self> {
        if n_racks == 0 {
            return Err(SimError::InvalidParameter {
                name: "n_racks",
                value: 0.0,
                expected: "at least one rack",
            });
        }
        if epochs == 0 {
            return Err(SimError::InvalidParameter {
                name: "epochs",
                value: 0.0,
                expected: "at least one epoch",
            });
        }
        if facility_n_max <= facility_n_min || facility_n_min < 0.0 || facility_n_max.is_nan() {
            return Err(SimError::InvalidParameter {
                name: "facility_n_max",
                value: facility_n_max,
                expected: "a facility band with 0 <= n_min < n_max",
            });
        }
        if !(0.0..=1.0).contains(&facility_p_recovery) {
            return Err(SimError::InvalidParameter {
                name: "facility_p_recovery",
                value: facility_p_recovery,
                expected: "a probability in [0, 1]",
            });
        }
        Ok(ClusterConfig {
            rack_game,
            n_racks,
            facility_n_min,
            facility_n_max,
            facility_p_recovery,
            epochs,
            seed,
        })
    }

    /// Per-rack game parameters.
    #[must_use]
    pub fn rack_game(&self) -> &GameConfig {
        &self.rack_game
    }

    /// Number of racks.
    #[must_use]
    pub fn n_racks(&self) -> u32 {
        self.n_racks
    }

    /// The game configuration a *facility-aware* rack should solve: its
    /// effective band is the tighter of the rack band and the rack's
    /// proportional share of the facility band.
    ///
    /// # Errors
    ///
    /// Propagates configuration-validation errors (cannot occur for a
    /// valid cluster).
    pub fn facility_aware_band(&self) -> crate::Result<GameConfig> {
        let share = f64::from(self.n_racks);
        let n_min = self.rack_game.n_min().min(self.facility_n_min / share);
        let n_max = self.rack_game.n_max().min(self.facility_n_max / share);
        Ok(GameConfig::builder()
            .n_agents(self.rack_game.n_agents())
            .n_min(n_min)
            .n_max(n_max.max(n_min + 1.0))
            .p_cooling(self.rack_game.p_cooling())
            .p_recovery(self.rack_game.p_recovery())
            .discount(self.rack_game.discount())
            .build()?)
    }
}

/// Outcome of a cluster simulation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterResult {
    /// Task throughput per agent-epoch, per rack.
    pub per_rack_tasks: Vec<f64>,
    /// Cluster-wide task throughput per agent-epoch.
    pub tasks_per_agent_epoch: f64,
    /// Rack-level breaker trips, summed over racks.
    pub rack_trips: u32,
    /// Facility-level emergencies.
    pub facility_trips: u32,
}

/// Simulate `n_racks` racks, each driven by its own policy instance.
///
/// `streams` holds one utility stream per agent, rack-major
/// (`n_racks × rack_game.n_agents()` total); `policies` holds one policy
/// per rack.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] when stream or policy counts do
/// not match the configuration.
pub fn simulate_cluster(
    config: &ClusterConfig,
    streams: &mut [PhasedUtility],
    policies: &mut [Box<dyn SprintPolicy>],
) -> crate::Result<ClusterResult> {
    let per_rack = config.rack_game.n_agents() as usize;
    let n_racks = config.n_racks as usize;
    if streams.len() != per_rack * n_racks {
        return Err(SimError::InvalidParameter {
            name: "streams",
            value: streams.len() as f64,
            expected: "n_racks * n_agents utility streams",
        });
    }
    if policies.len() != n_racks {
        return Err(SimError::InvalidParameter {
            name: "policies",
            value: policies.len() as f64,
            expected: "one policy per rack",
        });
    }

    let mut rng = seeded_rng(config.seed ^ 0xC1_0573);
    let rack_curve = TripCurve::from_config(&config.rack_game);
    let facility_curve = TripCurve::new(config.facility_n_min, config.facility_n_max);
    let p_cool_exit = 1.0 - config.rack_game.p_cooling();
    let p_rack_exit = 1.0 - config.rack_game.p_recovery();
    let p_facility_exit = 1.0 - config.facility_p_recovery;

    let mut states = vec![AgentState::Active; per_rack * n_racks];
    let mut rack_recovering = vec![false; n_racks];
    let mut facility_recovering = false;
    let mut sprinted = vec![false; per_rack * n_racks];

    let mut per_rack_tasks = vec![0.0f64; n_racks];
    let mut rack_trips = 0u32;
    let mut facility_trips = 0u32;

    for _epoch in 0..config.epochs {
        let utilities: Vec<f64> = streams
            .iter_mut()
            .map(PhasedUtility::next_utility)
            .collect();

        if facility_recovering {
            if rng.gen::<f64>() < p_facility_exit {
                facility_recovering = false;
                states.fill(AgentState::Active);
                rack_recovering.fill(false);
            }
            for p in policies.iter_mut() {
                p.epoch_end(false);
            }
            continue;
        }

        // Decisions per rack.
        let mut rack_sprinters = vec![0u32; n_racks];
        for rack in 0..n_racks {
            if rack_recovering[rack] {
                continue;
            }
            for local in 0..per_rack {
                let i = rack * per_rack + local;
                sprinted[i] = states[i] == AgentState::Active
                    && policies[rack].wants_sprint(local, utilities[i]);
                if sprinted[i] {
                    rack_sprinters[rack] += 1;
                }
            }
        }
        let total_sprinters: u32 = rack_sprinters.iter().sum();

        // Throughput.
        for rack in 0..n_racks {
            if rack_recovering[rack] {
                continue;
            }
            for local in 0..per_rack {
                let i = rack * per_rack + local;
                per_rack_tasks[rack] += if sprinted[i] { utilities[i] } else { 1.0 };
            }
        }

        // Facility breaker first (it protects the shared supply), then
        // rack breakers.
        let facility_tripped = {
            let p = facility_curve.p_trip(f64::from(total_sprinters));
            p > 0.0 && rng.gen::<f64>() < p
        };
        if facility_tripped {
            facility_trips += 1;
            facility_recovering = true;
            states.fill(AgentState::Recovery);
            for p in policies.iter_mut() {
                p.epoch_end(true);
            }
            continue;
        }

        for rack in 0..n_racks {
            if rack_recovering[rack] {
                // Rack-level battery recharge.
                if rng.gen::<f64>() < p_rack_exit {
                    rack_recovering[rack] = false;
                    for local in 0..per_rack {
                        states[rack * per_rack + local] = AgentState::Active;
                    }
                }
                policies[rack].epoch_end(false);
                continue;
            }
            let p = rack_curve.p_trip(f64::from(rack_sprinters[rack]));
            let tripped = p > 0.0 && rng.gen::<f64>() < p;
            if tripped {
                rack_trips += 1;
                rack_recovering[rack] = true;
                for local in 0..per_rack {
                    states[rack * per_rack + local] = AgentState::Recovery;
                }
            } else {
                for local in 0..per_rack {
                    let i = rack * per_rack + local;
                    states[i] = match states[i] {
                        AgentState::Active if sprinted[i] => AgentState::Cooling,
                        AgentState::Cooling => {
                            if rng.gen::<f64>() < p_cool_exit {
                                AgentState::Active
                            } else {
                                AgentState::Cooling
                            }
                        }
                        s => s,
                    };
                }
            }
            policies[rack].epoch_end(tripped);
        }
    }

    let denom = per_rack as f64 * config.epochs as f64;
    let per_rack_tasks: Vec<f64> = per_rack_tasks.into_iter().map(|t| t / denom).collect();
    Ok(ClusterResult {
        tasks_per_agent_epoch: per_rack_tasks.iter().sum::<f64>() / n_racks as f64,
        per_rack_tasks,
        rack_trips,
        facility_trips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::ThresholdPolicy;
    use sprint_game::{MeanFieldSolver, ThresholdStrategy};
    use sprint_workloads::generator::Population;
    use sprint_workloads::Benchmark;

    fn rack_game(n: u32) -> GameConfig {
        GameConfig::builder()
            .n_agents(n)
            .n_min(f64::from(n) * 0.25)
            .n_max(f64::from(n) * 0.75)
            .build()
            .unwrap()
    }

    fn cluster_streams(n_total: usize, seed: u64) -> Vec<PhasedUtility> {
        Population::homogeneous(Benchmark::DecisionTree, n_total)
            .unwrap()
            .spawn_streams(seed)
            .unwrap()
    }

    fn threshold_policies(n_racks: usize, per_rack: usize, t: f64) -> Vec<Box<dyn SprintPolicy>> {
        (0..n_racks)
            .map(|_| {
                Box::new(
                    ThresholdPolicy::uniform("E-T", ThresholdStrategy::new(t).unwrap(), per_rack)
                        .unwrap(),
                ) as Box<dyn SprintPolicy>
            })
            .collect()
    }

    #[test]
    fn validates_configuration() {
        let g = rack_game(100);
        assert!(ClusterConfig::new(g, 0, 10.0, 20.0, 0.9, 10, 1).is_err());
        assert!(ClusterConfig::new(g, 2, 10.0, 20.0, 0.9, 0, 1).is_err());
        assert!(ClusterConfig::new(g, 2, 20.0, 10.0, 0.9, 10, 1).is_err());
        assert!(ClusterConfig::new(g, 2, 10.0, 20.0, 1.5, 10, 1).is_err());
    }

    #[test]
    fn validates_runtime_inputs() {
        let g = rack_game(50);
        let cfg = ClusterConfig::new(g, 2, 100.0, 200.0, 0.9, 10, 1).unwrap();
        let mut streams = cluster_streams(50, 1); // should be 100
        let mut policies = threshold_policies(2, 50, 3.0);
        assert!(simulate_cluster(&cfg, &mut streams, &mut policies).is_err());
        let mut streams = cluster_streams(100, 1);
        let mut one_policy = threshold_policies(1, 50, 3.0);
        assert!(simulate_cluster(&cfg, &mut streams, &mut one_policy).is_err());
    }

    #[test]
    fn generous_facility_band_changes_nothing() {
        // A facility band far above any reachable sprinter count leaves
        // the racks running the single-rack game.
        let g = rack_game(100);
        let cfg = ClusterConfig::new(g, 3, 1e6, 2e6, 0.9, 400, 7).unwrap();
        let eq = MeanFieldSolver::new(g)
            .run(
                &Benchmark::DecisionTree.utility_density(256).unwrap(),
                &mut sprint_telemetry::Telemetry::noop(),
            )
            .unwrap();
        let mut streams = cluster_streams(300, 7);
        let mut policies = threshold_policies(3, 100, eq.threshold());
        let r = simulate_cluster(&cfg, &mut streams, &mut policies).unwrap();
        assert_eq!(r.facility_trips, 0);
        assert!(r.tasks_per_agent_epoch > 1.3);
        assert_eq!(r.per_rack_tasks.len(), 3);
    }

    #[test]
    fn oversubscribed_facility_punishes_rack_only_thresholds() {
        // Facility band tighter than the sum of rack bands. Rack-only
        // equilibrium thresholds overload it constantly. Note that simply
        // re-solving the *equilibrium* on the tightened band does NOT
        // help: thresholds are insensitive to recovery cost (Figure 13),
        // so strategic agents rationally keep tripping the facility. The
        // facility operator must assign the *cooperative* threshold for
        // the tightened band (a coordinator-enforced policy, as in §6.4).
        let g = rack_game(100);
        // Sum of rack N_min = 4 * 25 = 100, but the facility tolerates
        // only 40 sprinters before its band.
        let cfg = ClusterConfig::new(g, 4, 40.0, 120.0, 0.95, 800, 11).unwrap();
        let density = Benchmark::DecisionTree.utility_density(256).unwrap();

        let naive_eq = MeanFieldSolver::new(g)
            .run(&density, &mut sprint_telemetry::Telemetry::noop())
            .unwrap();
        let mut streams = cluster_streams(400, 11);
        let mut naive = threshold_policies(4, 100, naive_eq.threshold());
        let naive_result = simulate_cluster(&cfg, &mut streams, &mut naive).unwrap();

        let aware_game = cfg.facility_aware_band().unwrap();
        assert!(aware_game.n_min() < g.n_min());
        let aware_ct = sprint_game::cooperative::CooperativeSearch::default_resolution()
            .solve(&aware_game, &density)
            .unwrap();
        let mut streams = cluster_streams(400, 11);
        let mut aware = threshold_policies(4, 100, aware_ct.threshold);
        let aware_result = simulate_cluster(&cfg, &mut streams, &mut aware).unwrap();

        assert!(
            naive_result.facility_trips > 3 * aware_result.facility_trips.max(1),
            "naive {} vs aware {} facility trips",
            naive_result.facility_trips,
            aware_result.facility_trips
        );
        assert!(
            aware_result.tasks_per_agent_epoch > naive_result.tasks_per_agent_epoch,
            "aware {} vs naive {}",
            aware_result.tasks_per_agent_epoch,
            naive_result.tasks_per_agent_epoch
        );
    }

    #[test]
    fn facility_aware_band_tightens_only_when_binding() {
        let g = rack_game(100);
        let loose = ClusterConfig::new(g, 2, 1e5, 2e5, 0.9, 10, 1).unwrap();
        let t = loose.facility_aware_band().unwrap();
        assert_eq!(t.n_min(), g.n_min());
        let tight = ClusterConfig::new(g, 2, 20.0, 60.0, 0.9, 10, 1).unwrap();
        let t = tight.facility_aware_band().unwrap();
        assert_eq!(t.n_min(), 10.0);
        assert_eq!(t.n_max(), 30.0);
    }
}
