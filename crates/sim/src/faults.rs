//! Fault injection for the sprinting rack.
//!
//! The paper's protocols assume a well-behaved rack: agents stay up,
//! sprinters release power when their epoch ends, the breaker sees the
//! true aggregate current, and the coordinator's offline analysis (§4.4)
//! matches the population actually racked. A [`FaultPlan`] breaks each of
//! those assumptions independently so the degradation of every policy can
//! be measured:
//!
//! - [`CrashChurn`] — agents crash mid-epoch and restart cold, losing
//!   their sprint privileges until they re-acquire thresholds from the
//!   coordinator.
//! - [`StuckSprinters`] — a sprinter's power gate sticks at sprint
//!   completion, so the rack keeps drawing its sprint current even though
//!   the chip does no sprint work.
//! - [`SensorFault`] — the panel's current sensor reports noisy values or
//!   drops out entirely, so the breaker's stress diverges from the truth
//!   the policies reason about.
//! - [`BreakerDrift`] — the breaker's tolerance band has drifted from the
//!   §2.2 calibration the solvers assume.
//! - [`CoordinatorStaleness`] — equilibrium thresholds were solved for an
//!   outdated population size (machines since added or drained).
//! - [`TransportFault`] — the coordinator↔agent control channel loses,
//!   delays, or duplicates messages ([`crate::control`]).
//! - [`RackPartition`] — a window of epochs during which some fraction of
//!   agents cannot exchange any message with the coordinator.
//!
//! Fault randomness is drawn from a dedicated stream seeded by
//! [`FaultPlan::seed`], *never* from the simulation's main stream, so an
//! empty plan reproduces fault-free runs bit for bit.

use crate::SimError;

/// Agent crash/restart churn.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CrashChurn {
    /// Per-agent, per-epoch probability of crashing.
    pub crash_probability: f64,
    /// Probability a crashed agent stays down another epoch (geometric
    /// restart delay, like the paper's geometric recovery).
    pub p_restart_stay: f64,
    /// Epochs a restarted agent must wait before sprinting again while it
    /// re-acquires its threshold from the coordinator (cold start).
    pub reacquire_epochs: u32,
}

/// Sprinters whose power gate fails to release at sprint completion.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StuckSprinters {
    /// Probability a completing sprint sticks in the power-on position.
    pub stick_probability: f64,
    /// Probability a stuck gate stays stuck another epoch (geometric
    /// release).
    pub p_stuck_stay: f64,
}

/// Noise and dropout on the panel's aggregate current sensor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SensorFault {
    /// Relative standard deviation of multiplicative Gaussian noise on
    /// the measured sprinter-equivalent load.
    pub relative_sd: f64,
    /// Per-epoch probability the sensor drops out and holds its last good
    /// reading.
    pub dropout_probability: f64,
}

/// Breaker tolerance-band miscalibration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BreakerDrift {
    /// Relative shift of both band edges: the breaker actually trips on
    /// the band `[(1 + shift)·N_min, (1 + shift)·N_max]` while every
    /// solver still assumes the nominal §2.2 band. Negative values model
    /// a breaker that trips early; positive, one that trips late.
    pub band_shift: f64,
}

/// Coordinator thresholds solved for an outdated population.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoordinatorStaleness {
    /// Ratio of the population the coordinator solved for to the
    /// population actually racked (`> 1`: machines have since drained;
    /// `< 1`: machines have since been added).
    pub population_factor: f64,
}

/// Unreliable coordinator↔agent message transport.
///
/// Applied per message by [`crate::control::FaultyTransport`]: a message
/// is first dropped with `loss_probability`; a surviving message is
/// delayed a uniform `1..=max_delay_epochs` extra epochs with
/// `delay_probability`, and an extra copy is enqueued with
/// `duplicate_probability`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransportFault {
    /// Per-message probability of silent loss.
    pub loss_probability: f64,
    /// Per-message probability of extra delivery delay.
    pub delay_probability: f64,
    /// Maximum extra delay, in epochs (ignored unless delay fires).
    pub max_delay_epochs: u32,
    /// Per-message probability of a duplicate delivery.
    pub duplicate_probability: f64,
}

/// A rack partition: a contiguous window of epochs during which a
/// fraction of agents exchange no messages with the coordinator in
/// either direction (messages are dropped, not queued).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RackPartition {
    /// First epoch of the partition window.
    pub start_epoch: usize,
    /// Length of the window, in epochs.
    pub duration_epochs: usize,
    /// Fraction of agents cut off, in `(0, 1]` (1.0 = the whole rack
    /// loses its coordinator). Agents `0..ceil(fraction · n)` are the
    /// partitioned ones, so the affected set is deterministic.
    pub fraction: f64,
}

impl RackPartition {
    /// Whether `agent` (of `n_agents`) is cut off at `epoch`.
    #[must_use]
    pub fn cuts(&self, epoch: usize, agent: u32, n_agents: u32) -> bool {
        if epoch < self.start_epoch || epoch >= self.start_epoch + self.duration_epochs {
            return false;
        }
        let affected = (self.fraction * f64::from(n_agents)).ceil() as u32;
        agent < affected
    }

    /// First epoch after the partition heals.
    #[must_use]
    pub fn heal_epoch(&self) -> usize {
        self.start_epoch + self.duration_epochs
    }
}

/// A complete, serializable fault schedule for one run.
///
/// Each component is optional; [`FaultPlan::none`] is the fault-free plan
/// and leaves simulations bit-identical to runs that never heard of
/// faults.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Seed for the dedicated fault randomness stream.
    pub seed: u64,
    /// Agent crash/restart churn.
    pub crash: Option<CrashChurn>,
    /// Stuck sprinter power gates.
    pub stuck: Option<StuckSprinters>,
    /// Current-sensor noise and dropout.
    pub sensor: Option<SensorFault>,
    /// Breaker band miscalibration.
    pub breaker_drift: Option<BreakerDrift>,
    /// Stale coordinator thresholds.
    pub staleness: Option<CoordinatorStaleness>,
    /// Lossy/delaying/duplicating control-plane transport. `serde`
    /// defaults keep pre-control-plane plan JSON loadable.
    #[serde(default)]
    pub transport: Option<TransportFault>,
    /// A scheduled rack partition.
    #[serde(default)]
    pub partition: Option<RackPartition>,
}

fn check_probability(name: &'static str, p: f64) -> crate::Result<()> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(SimError::InvalidParameter {
            name,
            value: p,
            expected: "a probability in [0, 1]",
        });
    }
    Ok(())
}

impl FaultPlan {
    /// The fault-free plan.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A moderate composite plan enabling every fault class at once —
    /// the stress mix the chaos matrix uses by default.
    #[must_use]
    pub fn composite(seed: u64) -> Self {
        FaultPlan {
            seed,
            crash: Some(CrashChurn {
                crash_probability: 0.002,
                p_restart_stay: 0.8,
                reacquire_epochs: 3,
            }),
            stuck: Some(StuckSprinters {
                stick_probability: 0.05,
                p_stuck_stay: 0.6,
            }),
            sensor: Some(SensorFault {
                relative_sd: 0.05,
                dropout_probability: 0.01,
            }),
            breaker_drift: Some(BreakerDrift { band_shift: -0.05 }),
            staleness: Some(CoordinatorStaleness {
                population_factor: 1.1,
            }),
            transport: None,
            partition: None,
        }
    }

    /// A partition-chaos plan: ≥ 20% message loss with delays and
    /// duplicates, plus a full-rack partition over the given window —
    /// the acceptance mix of the partition resilience suite.
    #[must_use]
    pub fn partition_chaos(seed: u64, start_epoch: usize, duration_epochs: usize) -> Self {
        FaultPlan {
            seed,
            transport: Some(TransportFault {
                loss_probability: 0.2,
                delay_probability: 0.1,
                max_delay_epochs: 3,
                duplicate_probability: 0.05,
            }),
            partition: Some(RackPartition {
                start_epoch,
                duration_epochs,
                fraction: 1.0,
            }),
            ..FaultPlan::none()
        }
    }

    /// The adversary-defense acceptance mix: noisy, occasionally dropped
    /// sensor readings over a lossy, delaying, duplicating transport.
    /// No partition — the detector must prove itself against degraded
    /// evidence, not a severed control plane.
    #[must_use]
    pub fn adversary_chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            sensor: Some(SensorFault {
                relative_sd: 0.05,
                dropout_probability: 0.01,
            }),
            transport: Some(TransportFault {
                loss_probability: 0.2,
                delay_probability: 0.1,
                max_delay_epochs: 3,
                duplicate_probability: 0.05,
            }),
            ..FaultPlan::none()
        }
    }

    /// Whether any fault class is enabled.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.crash.is_some()
            || self.stuck.is_some()
            || self.sensor.is_some()
            || self.breaker_drift.is_some()
            || self.staleness.is_some()
            || self.transport.is_some()
            || self.partition.is_some()
    }

    /// Validate every enabled component.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for out-of-range
    /// probabilities, a non-finite noise level, a band shift at or below
    /// −1 (a breaker with a negative band), or a non-positive population
    /// factor.
    pub fn validate(&self) -> crate::Result<()> {
        if let Some(c) = self.crash {
            check_probability("crash_probability", c.crash_probability)?;
            check_probability("p_restart_stay", c.p_restart_stay)?;
        }
        if let Some(s) = self.stuck {
            check_probability("stick_probability", s.stick_probability)?;
            check_probability("p_stuck_stay", s.p_stuck_stay)?;
        }
        if let Some(s) = self.sensor {
            if s.relative_sd < 0.0 || !s.relative_sd.is_finite() {
                return Err(SimError::InvalidParameter {
                    name: "relative_sd",
                    value: s.relative_sd,
                    expected: "a non-negative finite noise level",
                });
            }
            check_probability("dropout_probability", s.dropout_probability)?;
        }
        if let Some(d) = self.breaker_drift {
            if d.band_shift <= -1.0 || !d.band_shift.is_finite() {
                return Err(SimError::InvalidParameter {
                    name: "band_shift",
                    value: d.band_shift,
                    expected: "a finite relative shift above -1",
                });
            }
        }
        if let Some(s) = self.staleness {
            if s.population_factor <= 0.0 || !s.population_factor.is_finite() {
                return Err(SimError::InvalidParameter {
                    name: "population_factor",
                    value: s.population_factor,
                    expected: "a positive finite population ratio",
                });
            }
        }
        if let Some(t) = self.transport {
            check_probability("loss_probability", t.loss_probability)?;
            check_probability("delay_probability", t.delay_probability)?;
            check_probability("duplicate_probability", t.duplicate_probability)?;
        }
        if let Some(p) = self.partition {
            if !(p.fraction > 0.0 && p.fraction <= 1.0) {
                return Err(SimError::InvalidParameter {
                    name: "fraction",
                    value: p.fraction,
                    expected: "a partitioned fraction in (0, 1]",
                });
            }
            if p.duration_epochs == 0 {
                return Err(SimError::InvalidParameter {
                    name: "duration_epochs",
                    value: 0.0,
                    expected: "a partition lasting at least one epoch",
                });
            }
        }
        Ok(())
    }
}

/// Per-fault counters collected during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct FaultMetrics {
    /// Agent crashes.
    pub crashes: u64,
    /// Agent restarts after a crash.
    pub restarts: u64,
    /// Agent-epochs lost to crashes (the agent was down).
    pub crashed_agent_epochs: u64,
    /// Agent-epochs with a stuck power gate drawing phantom sprint load.
    pub stuck_epochs: u64,
    /// Epochs the current sensor dropped out and held its last reading.
    pub sensor_dropouts: u64,
    /// Trips fired while the *decided* sprinter count was below `N_min`
    /// (the nominal curve says the breaker could not trip).
    pub spurious_trips: u32,
    /// Epochs the breaker failed to trip although the decided count was
    /// at or above `N_max` (the nominal curve says it must trip).
    pub missed_trips: u32,
}

impl FaultMetrics {
    /// Whether every counter is zero (a clean run).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        *self == FaultMetrics::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn composite_enables_everything() {
        let plan = FaultPlan::composite(7);
        assert!(plan.is_active());
        assert!(plan.validate().is_ok());
        assert!(plan.crash.is_some());
        assert!(plan.stuck.is_some());
        assert!(plan.sensor.is_some());
        assert!(plan.breaker_drift.is_some());
        assert!(plan.staleness.is_some());
        assert_eq!(plan.seed, 7);
    }

    #[test]
    fn validate_rejects_bad_components() {
        let mut plan = FaultPlan::none();
        plan.crash = Some(CrashChurn {
            crash_probability: 1.5,
            p_restart_stay: 0.5,
            reacquire_epochs: 1,
        });
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.stuck = Some(StuckSprinters {
            stick_probability: 0.1,
            p_stuck_stay: -0.1,
        });
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.sensor = Some(SensorFault {
            relative_sd: f64::NAN,
            dropout_probability: 0.0,
        });
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.breaker_drift = Some(BreakerDrift { band_shift: -1.0 });
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.staleness = Some(CoordinatorStaleness {
            population_factor: 0.0,
        });
        assert!(plan.validate().is_err());
    }

    #[test]
    fn partition_chaos_meets_the_acceptance_floor() {
        let plan = FaultPlan::partition_chaos(9, 100, 3);
        assert!(plan.is_active());
        assert!(plan.validate().is_ok());
        let t = plan.transport.unwrap();
        assert!(t.loss_probability >= 0.2, "acceptance demands ≥ 20% loss");
        let p = plan.partition.unwrap();
        assert_eq!((p.start_epoch, p.duration_epochs), (100, 3));
        assert_eq!(p.heal_epoch(), 103);
        // Full-rack partition: every agent is cut inside the window,
        // nobody outside it.
        assert!(p.cuts(100, 0, 64) && p.cuts(102, 63, 64));
        assert!(!p.cuts(99, 0, 64) && !p.cuts(103, 0, 64));
    }

    #[test]
    fn partial_partition_cuts_a_deterministic_prefix() {
        let p = RackPartition {
            start_epoch: 0,
            duration_epochs: 10,
            fraction: 0.25,
        };
        assert!(p.cuts(5, 0, 100) && p.cuts(5, 24, 100));
        assert!(!p.cuts(5, 25, 100) && !p.cuts(5, 99, 100));
    }

    #[test]
    fn validate_rejects_bad_transport_and_partition() {
        let mut plan = FaultPlan::none();
        plan.transport = Some(TransportFault {
            loss_probability: 1.2,
            delay_probability: 0.0,
            max_delay_epochs: 1,
            duplicate_probability: 0.0,
        });
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.partition = Some(RackPartition {
            start_epoch: 0,
            duration_epochs: 5,
            fraction: 0.0,
        });
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.partition = Some(RackPartition {
            start_epoch: 0,
            duration_epochs: 0,
            fraction: 1.0,
        });
        assert!(plan.validate().is_err());
    }

    #[test]
    fn pre_transport_plan_json_still_parses() {
        // Plans serialized before the control plane existed carry no
        // transport/partition keys; they must load as None.
        let legacy = r#"{"seed":7,"crash":null,"stuck":null,"sensor":null,
                          "breaker_drift":null,"staleness":null}"#;
        let plan: FaultPlan = serde_json::from_str(legacy).unwrap();
        assert!(plan.transport.is_none() && plan.partition.is_none());
        assert!(!plan.is_active());
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = FaultPlan::composite(42);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);

        let none = FaultPlan::none();
        let json = serde_json::to_string(&none).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(none, back);
    }

    #[test]
    fn metrics_default_is_clean() {
        let m = FaultMetrics::default();
        assert!(m.is_clean());
        let dirty = FaultMetrics {
            crashes: 1,
            ..FaultMetrics::default()
        };
        assert!(!dirty.is_clean());
    }
}
