//! The Exponential Backoff (E-B) policy.
//!
//! "Exponential Backoff throttles the frequency at which agents sprint. An
//! agent sprints greedily until the breaker trips. After the first trip,
//! agents wait 0–1 epoch before sprinting again. After the second trip,
//! agents wait 0–3 epochs. After the t-th trip, agents wait for some
//! number of epochs drawn randomly from `[0, 2^t − 1]`. The waiting
//! interval contracts by half if the breaker has not been tripped in the
//! past 100 epochs." (§6)

use rand::rngs::StdRng;
use rand::Rng;

use sprint_stats::rng::seeded_rng;

use crate::policy::SprintPolicy;

/// Epochs without a trip before the backoff interval contracts.
const CONTRACTION_WINDOW: usize = 100;

/// Cap on the backoff exponent (`2^16 − 1` epochs is already far beyond
/// any simulation horizon; the cap prevents shift overflow).
const MAX_EXPONENT: u32 = 16;

/// Greedy sprinting with randomized exponential backoff after trips.
#[derive(Debug, Clone)]
pub struct ExponentialBackoff {
    /// Remaining wait epochs per agent.
    waits: Vec<u32>,
    /// Current backoff exponent `t` (trips since last contraction phase).
    exponent: u32,
    /// Epochs since the last trip.
    quiet_epochs: usize,
    rng: StdRng,
}

impl ExponentialBackoff {
    /// Create the policy for `n_agents` agents with a deterministic seed.
    #[must_use]
    pub fn new(n_agents: usize, seed: u64) -> Self {
        ExponentialBackoff {
            waits: vec![0; n_agents],
            exponent: 0,
            quiet_epochs: 0,
            rng: seeded_rng(seed ^ 0xE_B0FF),
        }
    }

    /// Current backoff exponent `t`.
    #[must_use]
    pub fn exponent(&self) -> u32 {
        self.exponent
    }
}

impl SprintPolicy for ExponentialBackoff {
    fn name(&self) -> &'static str {
        "Exponential Backoff"
    }

    fn wants_sprint(&mut self, agent: usize, _utility: f64) -> bool {
        let wait = &mut self.waits[agent];
        if *wait > 0 {
            *wait -= 1;
            false
        } else {
            true
        }
    }

    fn export_metrics(&self, registry: &mut sprint_telemetry::Registry) {
        let g = registry.gauge("policy.backoff.exponent");
        registry.set(g, f64::from(self.exponent));
        let g = registry.gauge("policy.backoff.quiet_epochs");
        registry.set(g, self.quiet_epochs as f64);
        let g = registry.gauge("policy.backoff.waiting_agents");
        registry.set(g, self.waits.iter().filter(|&&w| w > 0).count() as f64);
    }

    fn epoch_end(&mut self, tripped: bool) {
        if tripped {
            self.exponent = (self.exponent + 1).min(MAX_EXPONENT);
            self.quiet_epochs = 0;
            let bound = (1u32 << self.exponent) - 1; // wait ∈ [0, 2^t − 1]
            for w in &mut self.waits {
                *w = if bound == 0 {
                    0
                } else {
                    self.rng.gen_range(0..=bound)
                };
            }
        } else {
            self.quiet_epochs += 1;
            if self.quiet_epochs >= CONTRACTION_WINDOW && self.exponent > 0 {
                self.exponent -= 1; // interval contracts by half
                self.quiet_epochs = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprints_greedily_before_any_trip() {
        let mut p = ExponentialBackoff::new(4, 1);
        for a in 0..4 {
            assert!(p.wants_sprint(a, 1.0));
        }
        assert_eq!(p.exponent(), 0);
    }

    #[test]
    fn first_trip_waits_zero_or_one() {
        let mut p = ExponentialBackoff::new(1000, 2);
        p.epoch_end(true);
        assert_eq!(p.exponent(), 1);
        assert!(p.waits.iter().all(|&w| w <= 1));
        // Roughly half wait one epoch.
        let waiting = p.waits.iter().filter(|&&w| w == 1).count();
        assert!((300..700).contains(&waiting), "waiting = {waiting}");
    }

    #[test]
    fn repeated_trips_grow_the_interval() {
        let mut p = ExponentialBackoff::new(1000, 3);
        p.epoch_end(true);
        p.epoch_end(true);
        p.epoch_end(true);
        assert_eq!(p.exponent(), 3);
        assert!(p.waits.iter().all(|&w| w <= 7), "waits ∈ [0, 2^3 − 1]");
        assert!(p.waits.iter().any(|&w| w > 1), "some waits exceed 1");
    }

    #[test]
    fn waiting_agents_do_not_sprint() {
        let mut p = ExponentialBackoff::new(100, 4);
        for _ in 0..4 {
            p.epoch_end(true);
        }
        let sprinting_now = (0..100).filter(|&a| p.wants_sprint(a, 1.0)).count();
        assert!(sprinting_now < 40, "{sprinting_now} sprint immediately");
        // Waits drain one epoch at a time; eventually everyone sprints.
        let mut rounds = 0;
        loop {
            let all = (0..100).all(|a| {
                // Peek by cloning the wait (wants_sprint decrements).
                p.waits[a] == 0
            });
            if all {
                break;
            }
            for a in 0..100 {
                let _ = p.wants_sprint(a, 1.0);
            }
            rounds += 1;
            assert!(rounds < 20, "waits must drain within 2^4 epochs");
        }
    }

    #[test]
    fn quiet_century_contracts_interval() {
        let mut p = ExponentialBackoff::new(10, 5);
        p.epoch_end(true);
        p.epoch_end(true);
        assert_eq!(p.exponent(), 2);
        for _ in 0..100 {
            p.epoch_end(false);
        }
        assert_eq!(p.exponent(), 1);
        for _ in 0..100 {
            p.epoch_end(false);
        }
        assert_eq!(p.exponent(), 0);
        // Cannot contract below zero.
        for _ in 0..100 {
            p.epoch_end(false);
        }
        assert_eq!(p.exponent(), 0);
    }

    #[test]
    fn exponent_is_capped() {
        let mut p = ExponentialBackoff::new(4, 6);
        for _ in 0..40 {
            p.epoch_end(true);
        }
        assert_eq!(p.exponent(), 16);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = ExponentialBackoff::new(50, 9);
        let mut b = ExponentialBackoff::new(50, 9);
        a.epoch_end(true);
        b.epoch_end(true);
        assert_eq!(a.waits, b.waits);
    }
}
