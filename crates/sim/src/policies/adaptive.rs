//! Adaptive threshold learning — an extension beyond the paper.
//!
//! The paper's coordinator computes equilibrium thresholds *offline* with
//! full knowledge of the population (Algorithm 1). This policy asks: can
//! agents reach the same equilibrium *online*, with no coordinator, by
//! best-responding to the trip frequency they actually observe?
//!
//! Each agent maintains an exponentially weighted estimate of the
//! per-epoch tripping probability and periodically re-solves its Bellman
//! equation against that belief. If the learning dynamics converge, they
//! must converge to a mean-field equilibrium — the fixed point is the
//! same — which makes this a constructive justification for the
//! equilibrium concept (cf. §4.4 "over time, population behavior and
//! agent strategies converge to a stationary distribution").

use sprint_game::bellman::{self, BellmanMethod};
use sprint_game::GameConfig;
use sprint_stats::density::DiscreteDensity;

use crate::policy::SprintPolicy;
use crate::SimError;

/// Online best-response learner: estimates `P_trip` from observed trips
/// and periodically re-optimizes its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveThreshold {
    config: GameConfig,
    density: DiscreteDensity,
    /// EWMA weight on each epoch's trip observation.
    learning_rate: f64,
    /// Epochs between Bellman re-solves.
    refresh_epochs: usize,
    belief_p_trip: f64,
    threshold: f64,
    epochs_seen: usize,
    threshold_history: Vec<f64>,
}

impl AdaptiveThreshold {
    /// Create a learner for agents whose utilities follow `density`.
    ///
    /// `initial_belief` seeds the tripping-probability estimate (the
    /// paper's Algorithm 1 starts from 1).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a learning rate outside
    /// `(0, 1]`, a zero refresh interval, or an initial belief outside
    /// `[0, 1]`, and propagates Bellman-solver errors for the initial
    /// threshold.
    pub fn new(
        config: GameConfig,
        density: DiscreteDensity,
        learning_rate: f64,
        refresh_epochs: usize,
        initial_belief: f64,
    ) -> crate::Result<Self> {
        if learning_rate.is_nan() || learning_rate <= 0.0 || learning_rate > 1.0 {
            return Err(SimError::InvalidParameter {
                name: "learning_rate",
                value: learning_rate,
                expected: "a weight in (0, 1]",
            });
        }
        if refresh_epochs == 0 {
            return Err(SimError::InvalidParameter {
                name: "refresh_epochs",
                value: 0.0,
                expected: "at least one epoch between refreshes",
            });
        }
        if !(0.0..=1.0).contains(&initial_belief) {
            return Err(SimError::InvalidParameter {
                name: "initial_belief",
                value: initial_belief,
                expected: "a probability in [0, 1]",
            });
        }
        let threshold = bellman::solve(
            &config,
            &density,
            initial_belief,
            BellmanMethod::PolicyIteration,
        )?
        .threshold;
        Ok(AdaptiveThreshold {
            config,
            density,
            learning_rate,
            refresh_epochs,
            belief_p_trip: initial_belief,
            threshold,
            epochs_seen: 0,
            threshold_history: vec![threshold],
        })
    }

    /// Sensible defaults: learning rate 0.02 (≈50-epoch memory), refresh
    /// every 10 epochs, pessimistic initial belief 1.0 as in Algorithm 1.
    ///
    /// # Errors
    ///
    /// Propagates [`AdaptiveThreshold::new`] errors.
    pub fn with_defaults(config: GameConfig, density: DiscreteDensity) -> crate::Result<Self> {
        AdaptiveThreshold::new(config, density, 0.02, 10, 1.0)
    }

    /// Current belief about the per-epoch tripping probability.
    #[must_use]
    pub fn belief_p_trip(&self) -> f64 {
        self.belief_p_trip
    }

    /// Current threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The thresholds after each refresh (for convergence plots).
    #[must_use]
    pub fn threshold_history(&self) -> &[f64] {
        &self.threshold_history
    }
}

impl SprintPolicy for AdaptiveThreshold {
    fn name(&self) -> &'static str {
        "Adaptive Threshold"
    }

    fn wants_sprint(&mut self, _agent: usize, utility: f64) -> bool {
        utility > self.threshold
    }

    fn export_metrics(&self, registry: &mut sprint_telemetry::Registry) {
        let g = registry.gauge("policy.adaptive.belief_p_trip");
        registry.set(g, self.belief_p_trip);
        let g = registry.gauge("policy.adaptive.threshold");
        registry.set(g, self.threshold);
        let s = registry.series("policy.adaptive.threshold_history");
        registry.extend_series(s, &self.threshold_history);
    }

    fn epoch_end(&mut self, tripped: bool) {
        let observation = if tripped { 1.0 } else { 0.0 };
        self.belief_p_trip += self.learning_rate * (observation - self.belief_p_trip);
        self.epochs_seen += 1;
        if self.epochs_seen.is_multiple_of(self.refresh_epochs) {
            if let Ok(sol) = bellman::solve(
                &self.config,
                &self.density,
                self.belief_p_trip,
                BellmanMethod::PolicyIteration,
            ) {
                self.threshold = sol.threshold;
                self.threshold_history.push(sol.threshold);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_game::MeanFieldSolver;
    use sprint_workloads::Benchmark;

    fn setup() -> (GameConfig, DiscreteDensity) {
        (
            GameConfig::paper_defaults(),
            Benchmark::DecisionTree.utility_density(256).unwrap(),
        )
    }

    #[test]
    fn validates_parameters() {
        let (cfg, d) = setup();
        assert!(AdaptiveThreshold::new(cfg, d.clone(), 0.0, 10, 1.0).is_err());
        assert!(AdaptiveThreshold::new(cfg, d.clone(), 1.5, 10, 1.0).is_err());
        assert!(AdaptiveThreshold::new(cfg, d.clone(), 0.1, 0, 1.0).is_err());
        assert!(AdaptiveThreshold::new(cfg, d, 0.1, 10, 2.0).is_err());
    }

    #[test]
    fn starts_aggressive_under_pessimistic_belief() {
        // Belief P = 1 collapses the threshold (Equation 8's (1 − P)).
        let (cfg, d) = setup();
        let p = AdaptiveThreshold::with_defaults(cfg, d).unwrap();
        assert!(p.threshold() < 0.01);
        assert_eq!(p.belief_p_trip(), 1.0);
    }

    #[test]
    fn quiet_epochs_decay_belief_and_raise_threshold() {
        let (cfg, d) = setup();
        let mut p = AdaptiveThreshold::with_defaults(cfg, d.clone()).unwrap();
        for _ in 0..500 {
            p.epoch_end(false);
        }
        assert!(p.belief_p_trip() < 0.01);
        // Belief ≈ 0: the learned threshold approaches the offline
        // equilibrium threshold for this (zero-trip) regime.
        let eq = MeanFieldSolver::new(cfg)
            .run(&d, &mut sprint_telemetry::Telemetry::noop())
            .unwrap();
        assert!(
            (p.threshold() - eq.threshold()).abs() < 0.05,
            "learned {} vs equilibrium {}",
            p.threshold(),
            eq.threshold()
        );
        assert!(p.threshold_history().len() > 10);
    }

    #[test]
    fn trips_raise_belief_and_lower_threshold() {
        let (cfg, d) = setup();
        let mut p = AdaptiveThreshold::new(cfg, d, 0.1, 5, 0.0).unwrap();
        let calm_threshold = p.threshold();
        for _ in 0..50 {
            p.epoch_end(true);
        }
        assert!(p.belief_p_trip() > 0.9);
        assert!(p.threshold() < calm_threshold);
    }

    #[test]
    fn decision_compares_against_current_threshold() {
        let (cfg, d) = setup();
        let mut p = AdaptiveThreshold::new(cfg, d, 0.1, 5, 0.0).unwrap();
        let t = p.threshold();
        assert!(p.wants_sprint(0, t + 0.1));
        assert!(!p.wants_sprint(0, t - 0.1));
    }
}
