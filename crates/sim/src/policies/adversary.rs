//! The adversary policy zoo: strategically misbehaving agents mixed into
//! an otherwise cooperative population.
//!
//! The folk-theorem argument (paper §6.4) only matters if someone actually
//! deviates. This module supplies the deviators. Each [`AdversaryKind`]
//! captures one strategic failure mode observed in shared-resource games:
//!
//! - **greedy defectors** sprint at every opportunity, the paper's
//!   canonical deviation;
//! - **stochastic cheaters** mostly conform but sprint below threshold
//!   with a configured probability, hiding inside sensor noise;
//! - **collusive cliques** coordinate sprint timing so their combined
//!   surge concentrates trip risk while each member's average rate stays
//!   moderate (the dynamic-player-set stochastic game of
//!   arXiv:1809.03143 motivates coordinated subpopulations);
//! - **fictitious-play learners** best-respond to the empirical trip
//!   frequency: while the rack looks safe they ratchet their effective
//!   threshold down, and back off after trips.
//!
//! An [`AdversarialPopulation`] wraps any honest [`SprintPolicy`] and
//! overrides the decisions of a deterministic suffix of the population,
//! so the same seed and population produce the same adversary membership
//! regardless of scheduling. All randomness is counter-based
//! ([`CounterRng`]) keyed by `(agent, epoch)`, never by call order, so
//! runs stay byte-identical at any `--jobs` count.

use crate::policy::SprintPolicy;
use crate::SimError;
use serde::{Deserialize, Serialize};
use sprint_stats::rng::CounterRng;

/// Counter-RNG purpose tag for stochastic-cheater draws. Distinct from
/// every engine stream (trip = 2, cooling = 3, utility streams) so mixing
/// adversaries never perturbs honest draws.
const CHEAT_STREAM: u64 = 0xAD_5A;

/// Multiplicative step the fictitious-play learner takes per epoch.
const LEARNER_STEP: f64 = 0.97;

/// The learner never drops its effective threshold below this fraction
/// of the honest bar.
const LEARNER_FLOOR: f64 = 0.10;

/// One strategic misbehavior archetype.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// Sprint at every opportunity, ignoring the assignment entirely.
    GreedyDefector,
    /// Conform most of the time; sprint below threshold with probability
    /// `cheat_probability` per active epoch.
    StochasticCheater {
        /// Per-epoch probability of an unjustified sprint.
        cheat_probability: f64,
    },
    /// All clique members sprint together every `period` epochs and
    /// conform in between, synchronizing their surge.
    CollusiveClique {
        /// Epochs between coordinated sprints.
        period: u32,
    },
    /// Best-respond to the observed trip frequency via fictitious play:
    /// while the empirical trip rate stays below `pivot`, shave the
    /// effective threshold multiplicatively toward a floor; after trips
    /// push the rate above `pivot`, restore it.
    FictitiousPlay {
        /// Trip-frequency pivot separating "safe, defect harder" from
        /// "risky, back off".
        pivot: f64,
    },
}

impl AdversaryKind {
    /// All archetypes (with representative parameters), for sweeps and
    /// acceptance matrices.
    pub const ALL: [AdversaryKind; 4] = [
        AdversaryKind::GreedyDefector,
        AdversaryKind::StochasticCheater {
            cheat_probability: 0.25,
        },
        AdversaryKind::CollusiveClique { period: 4 },
        AdversaryKind::FictitiousPlay { pivot: 0.05 },
    ];

    /// Stable snake_case name, used for metrics, sweep axis labels, and
    /// report keys.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryKind::GreedyDefector => "greedy_defector",
            AdversaryKind::StochasticCheater { .. } => "stochastic_cheater",
            AdversaryKind::CollusiveClique { .. } => "collusive_clique",
            AdversaryKind::FictitiousPlay { .. } => "fictitious_play",
        }
    }

    /// Parse a CLI-facing kind name (parameters take their
    /// representative defaults from [`AdversaryKind::ALL`]).
    #[must_use]
    pub fn from_name(name: &str) -> Option<AdversaryKind> {
        AdversaryKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// One adversarial sprint decision, shared by the engine-side
    /// [`AdversarialPopulation`] wrapper and the control plane's rack
    /// model. `honest` is what a conforming agent would do, `threshold`
    /// the bar the fictitious-play learner scales, and `learner_scale`
    /// its current multiplier. Randomness comes only from `(agent,
    /// epoch)` counters, never call order.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn decide(
        &self,
        honest: bool,
        utility: f64,
        threshold: f64,
        agent: u64,
        epoch: u64,
        rng: &CounterRng,
        learner_scale: f64,
    ) -> bool {
        match *self {
            AdversaryKind::GreedyDefector => true,
            AdversaryKind::StochasticCheater { cheat_probability } => {
                honest || rng.uniform(agent, epoch, 0) < cheat_probability
            }
            AdversaryKind::CollusiveClique { period } => {
                // Surge together on the clique's beat; lie low otherwise
                // so the average rate stays plausible.
                epoch.is_multiple_of(u64::from(period)) || honest
            }
            AdversaryKind::FictitiousPlay { .. } => honest || utility > learner_scale * threshold,
        }
    }

    /// Fictitious-play update: step the learner's threshold scale given
    /// the empirical trip frequency. Identity for every other kind.
    #[must_use]
    pub fn learner_step(&self, scale: f64, trip_frequency: f64) -> f64 {
        if let AdversaryKind::FictitiousPlay { pivot } = *self {
            if trip_frequency < pivot {
                (scale * LEARNER_STEP).max(LEARNER_FLOOR)
            } else {
                (scale / LEARNER_STEP).min(1.0)
            }
        } else {
            scale
        }
    }

    fn validate(&self) -> crate::Result<()> {
        match *self {
            AdversaryKind::GreedyDefector => Ok(()),
            AdversaryKind::StochasticCheater { cheat_probability } => {
                if (0.0..=1.0).contains(&cheat_probability) {
                    Ok(())
                } else {
                    Err(SimError::InvalidParameter {
                        name: "cheat_probability",
                        value: cheat_probability,
                        expected: "a probability in [0, 1]",
                    })
                }
            }
            AdversaryKind::CollusiveClique { period } => {
                if period >= 1 {
                    Ok(())
                } else {
                    Err(SimError::InvalidParameter {
                        name: "period",
                        value: f64::from(period),
                        expected: "a period of at least one epoch",
                    })
                }
            }
            AdversaryKind::FictitiousPlay { pivot } => {
                if (0.0..=1.0).contains(&pivot) && pivot.is_finite() {
                    Ok(())
                } else {
                    Err(SimError::InvalidParameter {
                        name: "pivot",
                        value: pivot,
                        expected: "a trip-frequency pivot in [0, 1]",
                    })
                }
            }
        }
    }
}

/// An adversary population specification: which archetype, what fraction
/// of the rack, and when (if ever) it stands down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryMix {
    /// The misbehavior archetype.
    pub kind: AdversaryKind,
    /// Fraction of the population that misbehaves, in `[0, 1]`. Members
    /// are the deterministic suffix of agent indices, so membership never
    /// depends on scheduling (and never collides with the partition
    /// layer's prefix cut).
    pub fraction: f64,
    /// Seed for adversary-internal randomness (stochastic cheaters).
    pub seed: u64,
    /// Epoch after which the adversaries stand down and conform. `None`
    /// means they misbehave for the whole run. Models the dynamic player
    /// set of arXiv:1809.03143 and lets tests drive the
    /// revoke → probation → re-admission path.
    pub ceasefire_epoch: Option<usize>,
}

impl AdversaryMix {
    /// A mix with no adversaries at all (the honest baseline).
    #[must_use]
    pub fn honest() -> Self {
        AdversaryMix {
            kind: AdversaryKind::GreedyDefector,
            fraction: 0.0,
            seed: 0,
            ceasefire_epoch: None,
        }
    }

    /// The acceptance-criterion mix: `fraction` greedy defectors.
    #[must_use]
    pub fn greedy(fraction: f64, seed: u64) -> Self {
        AdversaryMix {
            kind: AdversaryKind::GreedyDefector,
            fraction,
            seed,
            ceasefire_epoch: None,
        }
    }

    /// Validate the fraction and the archetype's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when the fraction is outside
    /// `[0, 1]` or the kind's parameters are out of range.
    pub fn validate(&self) -> crate::Result<()> {
        if !(0.0..=1.0).contains(&self.fraction) || !self.fraction.is_finite() {
            return Err(SimError::InvalidParameter {
                name: "fraction",
                value: self.fraction,
                expected: "an adversary fraction in [0, 1]",
            });
        }
        self.kind.validate()
    }

    /// Number of adversarial agents in a population of `n`.
    #[must_use]
    pub fn adversary_count(&self, n: usize) -> usize {
        ((self.fraction * n as f64).ceil() as usize).min(n)
    }

    /// Whether agent `i` (of `n`) is adversarial: membership is the
    /// deterministic suffix of the index range.
    #[must_use]
    pub fn is_adversary(&self, i: usize, n: usize) -> bool {
        i >= n - self.adversary_count(n)
    }

    /// Whether the adversaries are still active at `epoch`.
    #[must_use]
    pub fn active_at(&self, epoch: usize) -> bool {
        self.fraction > 0.0 && self.ceasefire_epoch.is_none_or(|c| epoch < c)
    }

    /// The counter-based stream adversary randomness draws from — one
    /// construction shared by the engine-side wrapper and the control
    /// plane's rack model, so both see the same cheat schedule.
    #[must_use]
    pub fn cheat_rng(&self) -> CounterRng {
        CounterRng::new(self.seed, CHEAT_STREAM)
    }

    /// Stable label for sweep axes and report keys: `kind@fraction`.
    #[must_use]
    pub fn label(&self) -> String {
        if self.fraction == 0.0 {
            "honest".to_string()
        } else {
            format!("{}@{:.2}", self.kind.name(), self.fraction)
        }
    }
}

/// Wraps an honest policy and overrides the decisions of the adversarial
/// suffix of the population.
///
/// The inner policy is always consulted first (so its own state — bans,
/// backoff windows, learned estimates — evolves exactly as it would in an
/// honest run), then the adversary archetype decides whether to override.
/// `static_decider` is `None`: the engine runs adversarial populations
/// through the serial decision loop, which is already pinned
/// byte-identical across `--jobs` counts.
pub struct AdversarialPopulation {
    inner: Box<dyn SprintPolicy>,
    mix: AdversaryMix,
    n_agents: usize,
    epoch: usize,
    trips: u64,
    /// Fictitious-play state: the learner's multiplicative threshold
    /// scale and its running estimate of the honest bar.
    learner_scale: f64,
    threshold_estimate: f64,
    rng: CounterRng,
    forced_sprints: u64,
}

impl AdversarialPopulation {
    /// Wrap `inner` for a population of `n_agents`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for an invalid mix or an
    /// empty population.
    pub fn new(
        inner: Box<dyn SprintPolicy>,
        mix: AdversaryMix,
        n_agents: usize,
    ) -> crate::Result<Self> {
        mix.validate()?;
        if n_agents == 0 {
            return Err(SimError::InvalidParameter {
                name: "n_agents",
                value: 0.0,
                expected: "a non-empty population",
            });
        }
        Ok(AdversarialPopulation {
            inner,
            mix,
            n_agents,
            epoch: 0,
            trips: 0,
            learner_scale: 1.0,
            threshold_estimate: 0.0,
            rng: mix.cheat_rng(),
            forced_sprints: 0,
        })
    }

    /// The mix this population was built with.
    #[must_use]
    pub fn mix(&self) -> AdversaryMix {
        self.mix
    }

    /// Decisions where an adversary sprinted against the honest call.
    #[must_use]
    pub fn forced_sprints(&self) -> u64 {
        self.forced_sprints
    }
}

impl SprintPolicy for AdversarialPopulation {
    fn name(&self) -> &'static str {
        match self.mix.kind {
            AdversaryKind::GreedyDefector => "Adversarial (greedy defectors)",
            AdversaryKind::StochasticCheater { .. } => "Adversarial (stochastic cheaters)",
            AdversaryKind::CollusiveClique { .. } => "Adversarial (collusive clique)",
            AdversaryKind::FictitiousPlay { .. } => "Adversarial (fictitious play)",
        }
    }

    fn wants_sprint(&mut self, agent: usize, utility: f64) -> bool {
        let honest = self.inner.wants_sprint(agent, utility);
        if !self.mix.active_at(self.epoch) || !self.mix.is_adversary(agent, self.n_agents) {
            return honest;
        }
        // Track the honest bar from the adversary's own declined
        // utilities (the inner policy sprints iff u > t, so declined
        // draws approach t from below); the learner scales it.
        if !honest && utility > self.threshold_estimate {
            self.threshold_estimate = utility;
        }
        let sprint = self.mix.kind.decide(
            honest,
            utility,
            self.threshold_estimate,
            agent as u64,
            self.epoch as u64,
            &self.rng,
            self.learner_scale,
        );
        if sprint && !honest {
            self.forced_sprints += 1;
        }
        sprint
    }

    fn note_decisions(&mut self, n: u64) {
        self.inner.note_decisions(n);
    }

    fn epoch_end(&mut self, tripped: bool) {
        self.inner.epoch_end(tripped);
        if tripped {
            self.trips += 1;
        }
        // Fictitious play over the empirical trip frequency: defect
        // harder while the rack looks safe, back off after trips.
        let freq = self.trips as f64 / (self.epoch + 1) as f64;
        self.learner_scale = self.mix.kind.learner_step(self.learner_scale, freq);
        self.epoch += 1;
    }

    fn export_metrics(&self, registry: &mut sprint_telemetry::Registry) {
        self.inner.export_metrics(registry);
        let g = registry.gauge("policy.adversary.agents");
        registry.set(g, self.mix.adversary_count(self.n_agents) as f64);
        let c = registry.counter("policy.adversary.forced_sprints");
        registry.inc(c, self.forced_sprints);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::ThresholdPolicy;

    fn honest(n: usize) -> Box<dyn SprintPolicy> {
        Box::new(ThresholdPolicy::new("honest", vec![3.0; n]).unwrap())
    }

    #[test]
    fn validates_mix() {
        assert!(AdversaryMix::greedy(1.5, 0).validate().is_err());
        assert!(AdversaryMix {
            kind: AdversaryKind::StochasticCheater {
                cheat_probability: -0.1
            },
            ..AdversaryMix::honest()
        }
        .validate()
        .is_err());
        assert!(AdversaryMix {
            kind: AdversaryKind::CollusiveClique { period: 0 },
            ..AdversaryMix::honest()
        }
        .validate()
        .is_err());
        assert!(AdversaryMix::greedy(0.1, 7).validate().is_ok());
    }

    #[test]
    fn membership_is_the_population_suffix() {
        let mix = AdversaryMix::greedy(0.1, 1);
        assert_eq!(mix.adversary_count(100), 10);
        assert!(!mix.is_adversary(89, 100));
        assert!(mix.is_adversary(90, 100));
        assert!(mix.is_adversary(99, 100));
        assert_eq!(AdversaryMix::honest().adversary_count(100), 0);
    }

    #[test]
    fn greedy_defectors_always_sprint_and_honest_agents_conform() {
        let mut p =
            AdversarialPopulation::new(honest(10), AdversaryMix::greedy(0.2, 3), 10).unwrap();
        assert!(!p.wants_sprint(0, 1.0), "honest agent below threshold");
        assert!(p.wants_sprint(0, 5.0), "honest agent above threshold");
        assert!(p.wants_sprint(8, 1.0), "defector sprints regardless");
        assert!(p.wants_sprint(9, 0.0));
        assert_eq!(p.forced_sprints(), 2);
    }

    #[test]
    fn ceasefire_restores_conformance() {
        let mix = AdversaryMix {
            ceasefire_epoch: Some(2),
            ..AdversaryMix::greedy(0.5, 3)
        };
        let mut p = AdversarialPopulation::new(honest(4), mix, 4).unwrap();
        assert!(p.wants_sprint(3, 1.0), "active adversary defects");
        p.epoch_end(false);
        p.epoch_end(false);
        assert!(!p.wants_sprint(3, 1.0), "after ceasefire it conforms");
    }

    #[test]
    fn stochastic_cheater_is_deterministic_per_agent_epoch() {
        let mix = AdversaryMix {
            kind: AdversaryKind::StochasticCheater {
                cheat_probability: 0.5,
            },
            ..AdversaryMix::greedy(1.0, 11)
        };
        let mut a = AdversarialPopulation::new(honest(4), mix, 4).unwrap();
        let mut b = AdversarialPopulation::new(honest(4), mix, 4).unwrap();
        for epoch in 0..50 {
            for agent in 0..4 {
                let u = 0.1 * (agent + epoch) as f64 % 6.0;
                assert_eq!(a.wants_sprint(agent, u), b.wants_sprint(agent, u));
            }
            a.epoch_end(false);
            b.epoch_end(false);
        }
        assert!(a.forced_sprints() > 0, "a 50% cheater must cheat sometimes");
        assert_eq!(a.forced_sprints(), b.forced_sprints());
    }

    #[test]
    fn clique_surges_on_its_beat() {
        let mix = AdversaryMix {
            kind: AdversaryKind::CollusiveClique { period: 4 },
            ..AdversaryMix::greedy(0.5, 5)
        };
        let mut p = AdversarialPopulation::new(honest(4), mix, 4).unwrap();
        // Epoch 0 is on the beat: both members sprint sub-threshold.
        assert!(p.wants_sprint(2, 1.0));
        assert!(p.wants_sprint(3, 1.0));
        p.epoch_end(false);
        // Off the beat the clique conforms.
        assert!(!p.wants_sprint(2, 1.0));
        assert!(p.wants_sprint(2, 5.0));
    }

    #[test]
    fn learner_defects_while_safe_and_backs_off_after_trips() {
        let mix = AdversaryMix {
            kind: AdversaryKind::FictitiousPlay { pivot: 0.3 },
            ..AdversaryMix::greedy(1.0, 9)
        };
        let mut p = AdversarialPopulation::new(honest(2), mix, 2).unwrap();
        // Teach it the bar, then let a trip-free stretch embolden it.
        assert!(!p.wants_sprint(0, 2.9), "learner starts honest");
        for _ in 0..40 {
            p.epoch_end(false);
        }
        assert!(
            p.wants_sprint(0, 2.0),
            "after a calm stretch the scaled bar admits 2.0"
        );
        // A long run of trips pushes the cumulative empirical frequency
        // over the pivot and the learner restores its threshold.
        for _ in 0..200 {
            p.epoch_end(true);
        }
        assert!(!p.wants_sprint(0, 2.0), "after trips it conforms again");
    }

    #[test]
    fn static_decider_is_disabled() {
        let p = AdversarialPopulation::new(honest(4), AdversaryMix::greedy(0.25, 1), 4).unwrap();
        assert!(p.static_decider().is_none());
    }
}
