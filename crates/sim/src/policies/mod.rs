//! The paper's four sprinting policies (§6) plus two extensions: online
//! best-response learning and grim-trigger enforcement (§6.4).

mod adaptive;
mod backoff;
mod greedy;
mod grim;
mod predictive;
mod threshold;

pub use adaptive::AdaptiveThreshold;
pub use backoff::ExponentialBackoff;
pub use greedy::Greedy;
pub use grim::GrimTrigger;
pub use predictive::PredictiveThreshold;
pub use threshold::ThresholdPolicy;
