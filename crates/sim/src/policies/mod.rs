//! The paper's four sprinting policies (§6) plus extensions: online
//! best-response learning, grim-trigger enforcement (§6.4), and the
//! adversary zoo of strategically misbehaving populations.

mod adaptive;
mod adversary;
mod backoff;
mod greedy;
mod grim;
mod predictive;
mod threshold;

pub use adaptive::AdaptiveThreshold;
pub use adversary::{AdversarialPopulation, AdversaryKind, AdversaryMix};
pub use backoff::ExponentialBackoff;
pub use greedy::Greedy;
pub use grim::GrimTrigger;
pub use predictive::PredictiveThreshold;
pub use threshold::ThresholdPolicy;
