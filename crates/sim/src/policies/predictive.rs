//! Prediction-based thresholding — quantifying the value of profiling.
//!
//! The paper's online strategy estimates the epoch's utility by briefly
//! profiling at epoch start (§4.4). That costs a slice of every epoch.
//! The alternative is to *predict* the epoch's utility from history and
//! decide before running anything. This policy does exactly that: each
//! agent feeds its measured utilities into a phase-local predictor
//! ([`sprint_game::agent::UtilityPredictor`]) and compares the
//! *prediction* — not the measurement — against its threshold.
//!
//! Because phases persist, prediction is accurate inside a phase and
//! wrong for exactly one epoch at each phase boundary; the bench target
//! `ablation_estimation_noise` and this policy bracket the value of the
//! paper's profiling step from both sides.

use sprint_game::agent::UtilityPredictor;

use crate::policy::SprintPolicy;
use crate::SimError;

/// Threshold policy deciding on predicted (not measured) utility.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictiveThreshold {
    thresholds: Vec<f64>,
    predictors: Vec<UtilityPredictor>,
}

impl PredictiveThreshold {
    /// Create the policy with one threshold per agent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for an empty or invalid
    /// threshold list.
    pub fn new(thresholds: Vec<f64>) -> crate::Result<Self> {
        if thresholds.is_empty() {
            return Err(SimError::InvalidParameter {
                name: "thresholds",
                value: 0.0,
                expected: "one threshold per agent",
            });
        }
        if thresholds.iter().any(|&t| t < 0.0 || !t.is_finite()) {
            return Err(SimError::InvalidParameter {
                name: "thresholds",
                value: f64::NAN,
                expected: "non-negative finite thresholds",
            });
        }
        let predictors = vec![UtilityPredictor::phase_local(); thresholds.len()];
        Ok(PredictiveThreshold {
            thresholds,
            predictors,
        })
    }

    /// Uniform thresholds for `n_agents` agents.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `n_agents` is 0 or the
    /// threshold is invalid.
    pub fn uniform(threshold: f64, n_agents: usize) -> crate::Result<Self> {
        if n_agents == 0 {
            return Err(SimError::InvalidParameter {
                name: "n_agents",
                value: 0.0,
                expected: "at least one agent",
            });
        }
        PredictiveThreshold::new(vec![threshold; n_agents])
    }
}

impl SprintPolicy for PredictiveThreshold {
    fn name(&self) -> &'static str {
        "Predictive Threshold"
    }

    fn wants_sprint(&mut self, agent: usize, utility: f64) -> bool {
        // Decide on the prediction from *past* epochs; the measurement
        // only updates the predictor for future decisions. The first
        // epoch has no history and conservatively declines to sprint.
        let decision = self.predictors[agent]
            .predict()
            .is_some_and(|predicted| predicted > self.thresholds[agent]);
        self.predictors[agent].observe(utility);
        decision
    }

    fn export_metrics(&self, registry: &mut sprint_telemetry::Registry) {
        let g = registry.gauge("policy.predictive.agents");
        registry.set(g, self.thresholds.len() as f64);
        let mean = self.thresholds.iter().sum::<f64>() / self.thresholds.len() as f64;
        let g = registry.gauge("policy.predictive.mean_threshold");
        registry.set(g, mean);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_inputs() {
        assert!(PredictiveThreshold::new(vec![]).is_err());
        assert!(PredictiveThreshold::new(vec![-1.0]).is_err());
        assert!(PredictiveThreshold::uniform(2.0, 0).is_err());
    }

    #[test]
    fn first_epoch_never_sprints() {
        let mut p = PredictiveThreshold::uniform(1.0, 2).unwrap();
        assert!(!p.wants_sprint(0, 100.0), "no history yet");
        // Second epoch predicts from the first observation.
        assert!(p.wants_sprint(0, 100.0));
    }

    #[test]
    fn decisions_lag_phase_changes_by_one_epoch() {
        let mut p = PredictiveThreshold::uniform(3.0, 1).unwrap();
        // Warm up in a low phase.
        for _ in 0..5 {
            assert!(!p.wants_sprint(0, 1.0));
        }
        // Phase jumps high: the first high epoch is missed...
        assert!(!p.wants_sprint(0, 8.0));
        // ...but subsequent high epochs are caught.
        assert!(p.wants_sprint(0, 8.0));
        // Phase drops low: one spurious sprint...
        assert!(p.wants_sprint(0, 1.0));
        // ...then the predictor catches down. (The EWMA memory may take
        // an extra epoch for large jumps.)
        let _ = p.wants_sprint(0, 1.0);
        assert!(!p.wants_sprint(0, 1.0));
    }

    #[test]
    fn per_agent_independence() {
        let mut p = PredictiveThreshold::new(vec![3.0, 3.0]).unwrap();
        let _ = p.wants_sprint(0, 10.0);
        // Agent 1 has no history even after agent 0 observed.
        assert!(!p.wants_sprint(1, 10.0));
        assert!(p.wants_sprint(0, 10.0));
    }
}
