//! Threshold policies: E-T and C-T (§6).
//!
//! Both the Equilibrium Threshold and Cooperative Threshold policies
//! execute the same way online — each agent compares the epoch's utility
//! against an assigned threshold — and differ only in how the thresholds
//! were computed offline (Algorithm 1 versus exhaustive search).

use sprint_game::ThresholdStrategy;

use crate::policy::{SprintPolicy, StaticDecider};
use crate::SimError;

/// Per-agent threshold policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdPolicy {
    name: &'static str,
    thresholds: Vec<f64>,
}

impl ThresholdPolicy {
    /// Create a policy from per-agent thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for an empty list or
    /// negative/non-finite thresholds.
    pub fn new(name: &'static str, thresholds: Vec<f64>) -> crate::Result<Self> {
        if thresholds.is_empty() {
            return Err(SimError::InvalidParameter {
                name: "thresholds",
                value: 0.0,
                expected: "one threshold per agent",
            });
        }
        if thresholds.iter().any(|&t| t < 0.0 || !t.is_finite()) {
            return Err(SimError::InvalidParameter {
                name: "thresholds",
                value: f64::NAN,
                expected: "non-negative finite thresholds",
            });
        }
        Ok(ThresholdPolicy { name, thresholds })
    }

    /// Create a policy where every agent shares one strategy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `n_agents` is 0.
    pub fn uniform(
        name: &'static str,
        strategy: ThresholdStrategy,
        n_agents: usize,
    ) -> crate::Result<Self> {
        if n_agents == 0 {
            return Err(SimError::InvalidParameter {
                name: "n_agents",
                value: 0.0,
                expected: "at least one agent",
            });
        }
        ThresholdPolicy::new(name, vec![strategy.threshold(); n_agents])
    }

    /// The thresholds, one per agent.
    #[must_use]
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

impl SprintPolicy for ThresholdPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn wants_sprint(&mut self, agent: usize, utility: f64) -> bool {
        utility > self.thresholds[agent]
    }

    fn static_decider(&self) -> Option<StaticDecider> {
        Some(StaticDecider::PerAgent(self.thresholds.clone()))
    }

    fn export_metrics(&self, registry: &mut sprint_telemetry::Registry) {
        let lo = self
            .thresholds
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .thresholds
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let mean = self.thresholds.iter().sum::<f64>() / self.thresholds.len() as f64;
        let g = registry.gauge("policy.threshold.min");
        registry.set(g, lo);
        let g = registry.gauge("policy.threshold.max");
        registry.set(g, hi);
        let g = registry.gauge("policy.threshold.mean");
        registry.set(g, mean);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_thresholds() {
        assert!(ThresholdPolicy::new("t", vec![]).is_err());
        assert!(ThresholdPolicy::new("t", vec![-1.0]).is_err());
        assert!(ThresholdPolicy::new("t", vec![f64::INFINITY]).is_err());
        assert!(ThresholdPolicy::uniform("t", ThresholdStrategy::always_sprint(), 0).is_err());
    }

    #[test]
    fn per_agent_comparison() {
        let mut p = ThresholdPolicy::new("E-T", vec![2.0, 5.0]).unwrap();
        assert!(p.wants_sprint(0, 3.0));
        assert!(!p.wants_sprint(1, 3.0));
        assert_eq!(p.name(), "E-T");
    }

    #[test]
    fn uniform_replicates_strategy() {
        let s = ThresholdStrategy::new(4.0).unwrap();
        let p = ThresholdPolicy::uniform("C-T", s, 3).unwrap();
        assert_eq!(p.thresholds(), &[4.0, 4.0, 4.0]);
    }
}
