//! The Greedy (G) policy.
//!
//! "Greedy permits agents to sprint as long as the chip is not cooling and
//! the rack is not recovering. This mechanism may frequently trip the
//! breaker and require rack recovery... Greedy produces a poor
//! equilibrium — knowing that everyone is sprinting, an agent's best
//! response is to sprint as well." (§6)

use sprint_telemetry::Registry;

use crate::policy::{SprintPolicy, StaticDecider};

/// Sprint at every opportunity, regardless of utility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Greedy {
    decisions: u64,
}

impl Greedy {
    /// Create the greedy policy.
    #[must_use]
    pub fn new() -> Self {
        Greedy::default()
    }

    /// Sprint decisions made (every one a yes).
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }
}

impl SprintPolicy for Greedy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn wants_sprint(&mut self, _agent: usize, _utility: f64) -> bool {
        self.decisions += 1;
        true
    }

    fn static_decider(&self) -> Option<StaticDecider> {
        Some(StaticDecider::AlwaysSprint)
    }

    fn note_decisions(&mut self, n: u64) {
        self.decisions += n;
    }

    fn export_metrics(&self, registry: &mut Registry) {
        let c = registry.counter("policy.greedy.decisions");
        registry.inc(c, self.decisions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_sprints() {
        let mut g = Greedy::new();
        assert!(g.wants_sprint(0, 0.0));
        assert!(g.wants_sprint(7, 100.0));
        g.epoch_end(true); // no-op, must not panic
        assert!(g.wants_sprint(7, 0.1));
        assert_eq!(g.name(), "Greedy");
        assert_eq!(g.decisions(), 3);
    }

    #[test]
    fn exports_decision_count() {
        let mut g = Greedy::new();
        for a in 0..5 {
            let _ = g.wants_sprint(a, 1.0);
        }
        let mut reg = Registry::new();
        g.export_metrics(&mut reg);
        assert_eq!(reg.counter_value("policy.greedy.decisions"), Some(5));
    }
}
