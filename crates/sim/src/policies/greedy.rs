//! The Greedy (G) policy.
//!
//! "Greedy permits agents to sprint as long as the chip is not cooling and
//! the rack is not recovering. This mechanism may frequently trip the
//! breaker and require rack recovery... Greedy produces a poor
//! equilibrium — knowing that everyone is sprinting, an agent's best
//! response is to sprint as well." (§6)

use crate::policy::SprintPolicy;

/// Sprint at every opportunity, regardless of utility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Greedy;

impl Greedy {
    /// Create the greedy policy.
    #[must_use]
    pub fn new() -> Self {
        Greedy
    }
}

impl SprintPolicy for Greedy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn wants_sprint(&mut self, _agent: usize, _utility: f64) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_sprints() {
        let mut g = Greedy::new();
        assert!(g.wants_sprint(0, 0.0));
        assert!(g.wants_sprint(7, 100.0));
        g.epoch_end(true); // no-op, must not panic
        assert!(g.wants_sprint(7, 0.1));
        assert_eq!(g.name(), "Greedy");
    }
}
