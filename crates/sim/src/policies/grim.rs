//! Grim-trigger enforcement of cooperative thresholds (paper §6.4).
//!
//! "The coordinator could monitor sprints, detect deviations from
//! assigned strategies, and forbid agents who deviate from ever sprinting
//! again." This policy wraps an assigned-threshold profile with exactly
//! that enforcement: *deviant* agents ignore their assignment and sprint
//! greedily; when enforcement is on, the first observed deviation bans
//! the agent from sprinting permanently.

use crate::policy::SprintPolicy;
use crate::SimError;

/// Cooperative thresholds with optional grim-trigger punishment and a
/// configurable set of deviant (greedy) agents.
#[derive(Debug, Clone, PartialEq)]
pub struct GrimTrigger {
    assigned: Vec<f64>,
    deviant: Vec<bool>,
    banned: Vec<bool>,
    enforcement: bool,
    detections: u64,
    bans: u64,
}

impl GrimTrigger {
    /// Create the policy: every agent is assigned `thresholds[i]`; agents
    /// listed in `deviants` ignore the assignment and sprint greedily.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for an empty threshold list,
    /// invalid thresholds, or deviant indices out of range.
    pub fn new(thresholds: Vec<f64>, deviants: &[usize], enforcement: bool) -> crate::Result<Self> {
        if thresholds.is_empty() {
            return Err(SimError::InvalidParameter {
                name: "thresholds",
                value: 0.0,
                expected: "one threshold per agent",
            });
        }
        if thresholds.iter().any(|&t| t < 0.0 || !t.is_finite()) {
            return Err(SimError::InvalidParameter {
                name: "thresholds",
                value: f64::NAN,
                expected: "non-negative finite thresholds",
            });
        }
        let n = thresholds.len();
        let mut deviant = vec![false; n];
        for &i in deviants {
            if i >= n {
                return Err(SimError::InvalidParameter {
                    name: "deviants",
                    value: i as f64,
                    expected: "agent indices within the population",
                });
            }
            deviant[i] = true;
        }
        Ok(GrimTrigger {
            assigned: thresholds,
            deviant,
            banned: vec![false; n],
            enforcement,
            detections: 0,
            bans: 0,
        })
    }

    /// Number of deviations the coordinator has detected (and, with
    /// enforcement on, punished).
    #[must_use]
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Number of currently banned agents.
    #[must_use]
    pub fn banned_count(&self) -> usize {
        self.banned.iter().filter(|&&b| b).count()
    }

    /// Cumulative bans the grim trigger has handed out.
    #[must_use]
    pub fn bans(&self) -> u64 {
        self.bans
    }
}

impl SprintPolicy for GrimTrigger {
    fn name(&self) -> &'static str {
        if self.enforcement {
            "Cooperative + Grim Trigger"
        } else {
            "Cooperative (unenforced)"
        }
    }

    fn wants_sprint(&mut self, agent: usize, utility: f64) -> bool {
        if self.banned[agent] {
            return false;
        }
        let conforming = utility > self.assigned[agent];
        if self.deviant[agent] {
            // Deviants sprint at every opportunity. The coordinator
            // observes a sprint the assignment did not justify.
            if !conforming {
                self.detections += 1;
                if self.enforcement {
                    self.banned[agent] = true;
                    self.bans += 1;
                    // The ban takes effect immediately: the attempted
                    // deviation is blocked.
                    return false;
                }
            }
            true
        } else {
            conforming
        }
    }

    fn export_metrics(&self, registry: &mut sprint_telemetry::Registry) {
        let c = registry.counter("policy.grim.detections");
        registry.inc(c, self.detections);
        let b = registry.counter("policy.grim.bans");
        registry.inc(b, self.bans);
        let g = registry.gauge("policy.grim.banned_agents");
        registry.set(g, self.banned_count() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_inputs() {
        assert!(GrimTrigger::new(vec![], &[], true).is_err());
        assert!(GrimTrigger::new(vec![-1.0], &[], true).is_err());
        assert!(GrimTrigger::new(vec![2.0], &[5], true).is_err());
    }

    #[test]
    fn conforming_agents_follow_assignments() {
        let mut p = GrimTrigger::new(vec![3.0, 3.0], &[], true).unwrap();
        assert!(p.wants_sprint(0, 4.0));
        assert!(!p.wants_sprint(1, 2.0));
        assert_eq!(p.detections(), 0);
        assert_eq!(p.banned_count(), 0);
    }

    #[test]
    fn unenforced_deviant_sprints_freely() {
        let mut p = GrimTrigger::new(vec![3.0, 3.0], &[1], false).unwrap();
        // Below the assigned threshold: a detectable deviation, but no ban.
        assert!(p.wants_sprint(1, 1.0));
        assert!(p.wants_sprint(1, 1.0));
        assert_eq!(p.detections(), 2);
        assert_eq!(p.banned_count(), 0);
    }

    #[test]
    fn enforcement_bans_on_first_deviation() {
        let mut p = GrimTrigger::new(vec![3.0, 3.0], &[1], true).unwrap();
        // High-utility sprints are indistinguishable from conformance.
        assert!(p.wants_sprint(1, 5.0));
        assert_eq!(p.detections(), 0);
        // The first low-utility sprint attempt is detected and blocked.
        assert!(!p.wants_sprint(1, 1.0));
        assert_eq!(p.detections(), 1);
        assert_eq!(p.banned_count(), 1);
        // Banned forever, even for epochs that would have conformed.
        assert!(!p.wants_sprint(1, 100.0));
    }

    #[test]
    fn bans_do_not_leak_to_conformers() {
        let mut p = GrimTrigger::new(vec![3.0, 3.0], &[1], true).unwrap();
        let _ = p.wants_sprint(1, 0.5);
        assert!(p.wants_sprint(0, 4.0), "agent 0 is unaffected");
    }
}
