//! Experiment scenarios: populations, game parameters, and policy
//! construction.
//!
//! A [`Scenario`] bundles a workload population with its game
//! configuration and knows how to build each of the paper's four policies
//! for it — including running Algorithm 1 (E-T) or the exhaustive
//! threshold search (C-T) offline, exactly as the coordinator would.

use sprint_game::cooperative::CooperativeSearch;
use sprint_game::multi::{AgentTypeSpec, MultiSolver};
use sprint_game::{EquilibriumCache, GameConfig, GameError, MeanFieldSolver};
use sprint_stats::density::DiscreteDensity;
use sprint_workloads::generator::Population;
use sprint_workloads::Benchmark;

use sprint_telemetry::{Event, Telemetry};

use crate::engine::{
    self, RecoverySemantics, RunOptions, SimConfig, TripInterruption, UtilityEstimation,
};
use crate::faults::FaultPlan;
use crate::metrics::SimResult;
use crate::policies::{ExponentialBackoff, Greedy, ThresholdPolicy};
use crate::policy::{PolicyKind, SprintPolicy};
use crate::SimError;

/// Grid resolution for utility densities used by offline solves.
const DENSITY_BINS: usize = 512;

/// A reproducible experiment setup.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    population: Population,
    game: GameConfig,
    epochs: usize,
    options: RunOptions,
}

impl Scenario {
    /// A homogeneous rack: `n_agents` instances of one benchmark.
    ///
    /// The breaker band scales with the population (`N_min = 0.25 N`,
    /// `N_max = 0.75 N`), with Table-2 values for everything else.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero agents or epochs.
    pub fn homogeneous(benchmark: Benchmark, n_agents: u32, epochs: usize) -> crate::Result<Self> {
        let population = Population::homogeneous(benchmark, n_agents as usize)?;
        Scenario::with_population(population, epochs)
    }

    /// A heterogeneous rack: `n_agents` split round-robin across
    /// `benchmarks`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Workload`] for an empty benchmark list and
    /// [`SimError::InvalidParameter`] for zero agents or epochs.
    pub fn heterogeneous(
        benchmarks: &[Benchmark],
        n_agents: u32,
        epochs: usize,
    ) -> crate::Result<Self> {
        let population = Population::heterogeneous(benchmarks, n_agents as usize)?;
        Scenario::with_population(population, epochs)
    }

    /// Build a scenario from an explicit population with the scaled
    /// Table-2 game parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero epochs or a game
    /// configuration the builder rejects.
    pub fn with_population(population: Population, epochs: usize) -> crate::Result<Self> {
        let n = population.len() as u32;
        let game = GameConfig::builder()
            .n_agents(n)
            .n_min(f64::from(n) * 0.25)
            .n_max(f64::from(n) * 0.75)
            .build()?;
        Scenario::with_game(population, game, epochs)
    }

    /// Build a scenario with an explicit game configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero epochs or a
    /// population that does not match the configuration's `N`.
    pub fn with_game(
        population: Population,
        game: GameConfig,
        epochs: usize,
    ) -> crate::Result<Self> {
        if epochs == 0 {
            return Err(SimError::InvalidParameter {
                name: "epochs",
                value: 0.0,
                expected: "at least one epoch",
            });
        }
        if population.len() != game.n_agents() as usize {
            return Err(SimError::InvalidParameter {
                name: "population",
                value: population.len() as f64,
                expected: "a population matching the game configuration's N",
            });
        }
        Ok(Scenario {
            population,
            game,
            epochs,
            options: RunOptions::default(),
        })
    }

    /// Replace the whole options bundle at once (shared with
    /// [`SimConfig`]; sweep specs carry one [`RunOptions`] value).
    #[must_use]
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// The run options.
    #[must_use]
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Override the recovery semantics (ablation).
    #[must_use]
    pub fn with_recovery(mut self, semantics: RecoverySemantics) -> Self {
        self.options.recovery = semantics;
        self
    }

    /// Override the trip-interruption semantics (ablation).
    #[must_use]
    pub fn with_interruption(mut self, interruption: TripInterruption) -> Self {
        self.options.interruption = interruption;
        self
    }

    /// Override the utility-estimation model (ablation).
    #[must_use]
    pub fn with_estimation(mut self, estimation: UtilityEstimation) -> Self {
        self.options.estimation = estimation;
        self
    }

    /// Attach a fault-injection plan: the engine injects the runtime
    /// faults, and [`CoordinatorStaleness`](crate::faults::CoordinatorStaleness)
    /// additionally skews the population the offline solves assume.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.options.faults = faults;
        self
    }

    /// The fault-injection plan.
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.options.faults
    }

    /// The population.
    #[must_use]
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The game configuration.
    #[must_use]
    pub fn game(&self) -> &GameConfig {
        &self.game
    }

    /// Simulated epochs per run.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// The game configuration the offline solves use. Under
    /// [`CoordinatorStaleness`](crate::faults::CoordinatorStaleness) the
    /// coordinator solved for an outdated population: `N` (and nothing
    /// else) is scaled by the staleness factor, so thresholds are tuned
    /// for a rack that no longer exists.
    fn solve_game(&self) -> crate::Result<GameConfig> {
        let Some(stale) = self.options.faults.staleness else {
            return Ok(self.game);
        };
        let stale_n = (f64::from(self.game.n_agents()) * stale.population_factor)
            .round()
            .max(1.0) as u32;
        GameConfig::builder()
            .n_agents(stale_n)
            .n_min(self.game.n_min())
            .n_max(self.game.n_max())
            .p_cooling(self.game.p_cooling())
            .p_recovery(self.game.p_recovery())
            .discount(self.game.discount())
            .build()
            .map_err(Into::into)
    }

    fn type_specs(&self) -> crate::Result<Vec<AgentTypeSpec>> {
        self.population
            .distinct_types()
            .into_iter()
            .map(|b| {
                Ok(AgentTypeSpec::new(
                    b.name(),
                    b.utility_density(DENSITY_BINS)?,
                    self.population.count_of(b) as u32,
                ))
            })
            .collect()
    }

    /// Solve the game and build the E-T policy (per-type equilibrium
    /// thresholds, assigned per agent) — the unified entry point. Pass
    /// [`Telemetry::noop()`] for an unobserved solve; with an enabled kit
    /// the homogeneous path streams Algorithm 1's per-iteration residuals
    /// ([`SolverIteration`](sprint_telemetry::Event) events) and the
    /// heterogeneous path reports the multi-type fixed point as a single
    /// `CoordinatorResolve`.
    ///
    /// When Algorithm 1 exhausts every damping escalation
    /// ([`GameError::NonConvergence`]) the coordinator degrades instead of
    /// aborting: agents receive the error's conservative fallback
    /// threshold, which keeps expected sprinters inside the breaker's
    /// never-trip region (§2.2).
    ///
    /// # Errors
    ///
    /// Propagates mean-field solver failures other than recoverable
    /// non-convergence.
    pub fn equilibrium_thresholds(
        &self,
        telemetry: &mut Telemetry,
    ) -> crate::Result<ThresholdPolicy> {
        let game = self.solve_game()?;
        let types = self.population.distinct_types();
        let thresholds: Vec<f64> = if types.len() == 1 {
            let threshold = match MeanFieldSolver::new(game)
                .run(&types[0].utility_density(DENSITY_BINS)?, telemetry)
            {
                Ok(eq) => eq.threshold(),
                Err(GameError::NonConvergence {
                    fallback_threshold, ..
                }) => fallback_threshold,
                Err(e) => return Err(e.into()),
            };
            vec![threshold; self.population.len()]
        } else {
            let eq = MultiSolver::new(game).solve(&self.type_specs()?)?;
            telemetry.emit(&Event::CoordinatorResolve {
                types: eq.types().len(),
                converged: true,
                iterations: eq.iterations(),
                residual: eq.residual(),
                trip_probability: eq.trip_probability(),
            });
            self.per_agent_thresholds(&eq)?
        };
        ThresholdPolicy::new("Equilibrium Threshold", thresholds)
    }

    /// [`Scenario::equilibrium_thresholds`] with the homogeneous solve
    /// memoized through `cache`: repeated sweep trials over the same game
    /// pay for Algorithm 1 once. Also returns a [`SolveSummary`] for
    /// per-cell convergence reporting.
    ///
    /// Cached results are bit-identical to fresh solves (the solver is
    /// deterministic), so sweeps aggregate identically with or without
    /// the cache. Heterogeneous populations solve uncached (the
    /// multi-type fixed point is not yet memoized).
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::equilibrium_thresholds`].
    pub fn equilibrium_policy_cached(
        &self,
        cache: &EquilibriumCache,
    ) -> crate::Result<(ThresholdPolicy, SolveSummary)> {
        self.equilibrium_policy_with(cache, true)
    }

    /// [`Scenario::equilibrium_policy_cached`] with cold starts: a miss
    /// runs Algorithm 1 from scratch instead of warm-starting from the
    /// nearest cached neighbor.
    ///
    /// Cold solves make the result — including the [`SolveSummary`]'s
    /// iteration count and residual — independent of whatever else the
    /// cache happens to hold, so reports built through a long-lived
    /// shared cache (the `sprint serve` daemon, the unified job path)
    /// serialize to the same bytes no matter which jobs ran before them.
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::equilibrium_thresholds`].
    pub fn equilibrium_policy_cached_cold(
        &self,
        cache: &EquilibriumCache,
    ) -> crate::Result<(ThresholdPolicy, SolveSummary)> {
        self.equilibrium_policy_with(cache, false)
    }

    fn equilibrium_policy_with(
        &self,
        cache: &EquilibriumCache,
        warm: bool,
    ) -> crate::Result<(ThresholdPolicy, SolveSummary)> {
        let game = self.solve_game()?;
        let types = self.population.distinct_types();
        let (thresholds, summary): (Vec<f64>, SolveSummary) = if types.len() == 1 {
            let solver = MeanFieldSolver::new(game);
            // Warm-started: a fresh key seeds Algorithm 1 from the nearest
            // completed equilibrium already in the cache (sweep neighbors
            // differ by one knob, so their fixed points are close). Cold:
            // cache content can never leak into the summary's bytes.
            let density = types[0].utility_density(DENSITY_BINS)?;
            let solved = if warm {
                cache.solve_warm(&solver, &density)
            } else {
                cache.solve(&solver, &density)
            };
            let (threshold, summary) = match solved {
                Ok(eq) => (
                    eq.threshold(),
                    SolveSummary {
                        converged: true,
                        iterations: eq.iterations(),
                        residual: eq.residual(),
                    },
                ),
                Err(GameError::NonConvergence {
                    iterations,
                    residual,
                    fallback_threshold,
                    ..
                }) => (
                    fallback_threshold,
                    SolveSummary {
                        converged: false,
                        iterations,
                        residual,
                    },
                ),
                Err(e) => return Err(e.into()),
            };
            (vec![threshold; self.population.len()], summary)
        } else {
            let eq = MultiSolver::new(game).solve(&self.type_specs()?)?;
            let summary = SolveSummary {
                converged: true,
                iterations: eq.iterations(),
                residual: eq.residual(),
            };
            (self.per_agent_thresholds(&eq)?, summary)
        };
        Ok((
            ThresholdPolicy::new("Equilibrium Threshold", thresholds)?,
            summary,
        ))
    }

    fn per_agent_thresholds(
        &self,
        eq: &sprint_game::multi::HeterogeneousEquilibrium,
    ) -> crate::Result<Vec<f64>> {
        self.population
            .assignments()
            .iter()
            .map(|b| {
                eq.type_named(b.name())
                    .map(|t| t.threshold)
                    .ok_or(SimError::InvalidParameter {
                        name: "population",
                        value: 0.0,
                        expected: "an equilibrium covering every assigned type",
                    })
            })
            .collect::<crate::Result<_>>()
    }

    /// Build the C-T policy: the globally optimal *common* threshold from
    /// exhaustive search.
    ///
    /// For heterogeneous populations the search runs on the population's
    /// mixture density — the paper does not evaluate C-T there because
    /// per-type exhaustive search "is computationally hard" (§6.2); the
    /// common-threshold search is the tractable upper-bound proxy.
    ///
    /// # Errors
    ///
    /// Propagates search failures.
    pub fn cooperative_policy(&self) -> crate::Result<ThresholdPolicy> {
        let density = self.mixture_density()?;
        let ct = CooperativeSearch::default_resolution().solve(&self.solve_game()?, &density)?;
        ThresholdPolicy::uniform(
            "Cooperative Threshold",
            ct.strategy(),
            self.population.len(),
        )
    }

    /// The population's aggregate utility density (count-weighted mixture
    /// of per-type densities).
    ///
    /// # Errors
    ///
    /// Propagates density-construction failures.
    pub fn mixture_density(&self) -> crate::Result<DiscreteDensity> {
        let types = self.population.distinct_types();
        let densities: Vec<(DiscreteDensity, f64)> = types
            .iter()
            .map(|b| {
                Ok((
                    b.utility_density(DENSITY_BINS)?,
                    self.population.count_of(*b) as f64,
                ))
            })
            .collect::<crate::Result<_>>()?;
        if let [(only, _)] = densities.as_slice() {
            return Ok(only.clone());
        }
        let parts: Vec<(&DiscreteDensity, f64)> = densities.iter().map(|(d, w)| (d, *w)).collect();
        DiscreteDensity::mixture(&parts, DENSITY_BINS)
            .map_err(|e| SimError::Workload(sprint_workloads::WorkloadError::Stats(e)))
    }

    /// Build a policy by kind — the unified entry point (only E-T
    /// performs an observable solve; the other kinds construct silently).
    /// Pass [`Telemetry::noop()`] for unobserved construction.
    ///
    /// # Errors
    ///
    /// Propagates offline-solve failures for the threshold policies.
    pub fn policy(
        &self,
        kind: PolicyKind,
        seed: u64,
        telemetry: &mut Telemetry,
    ) -> crate::Result<Box<dyn SprintPolicy>> {
        Ok(match kind {
            PolicyKind::Greedy => Box::new(Greedy::new()),
            PolicyKind::ExponentialBackoff => {
                Box::new(ExponentialBackoff::new(self.population.len(), seed))
            }
            PolicyKind::EquilibriumThreshold => Box::new(self.equilibrium_thresholds(telemetry)?),
            PolicyKind::CooperativeThreshold => Box::new(self.cooperative_policy()?),
        })
    }

    /// Run one simulation of this scenario under `kind` with `seed` — the
    /// unified entry point. Pass [`Telemetry::noop()`] for an unobserved
    /// run; with an enabled kit the offline solve narrates through the
    /// recorder first (residual curves for E-T), then the engine streams
    /// per-epoch events, metrics, and spans into the same [`Telemetry`]
    /// bundle.
    ///
    /// Telemetry never alters the simulation: the returned [`SimResult`]
    /// is bit-identical with telemetry on or off.
    ///
    /// # Errors
    ///
    /// Propagates policy construction and simulation errors.
    pub fn execute(
        &self,
        kind: PolicyKind,
        seed: u64,
        telemetry: &mut Telemetry,
    ) -> crate::Result<SimResult> {
        self.execute_jobs(kind, seed, 1, telemetry)
    }

    /// [`Scenario::execute`] with the engine's agent kernel fanned out
    /// over `jobs` scoped threads ([`engine::run_jobs`]). The result is
    /// byte-identical at every job count.
    ///
    /// # Errors
    ///
    /// As [`Scenario::execute`].
    pub fn execute_jobs(
        &self,
        kind: PolicyKind,
        seed: u64,
        jobs: usize,
        telemetry: &mut Telemetry,
    ) -> crate::Result<SimResult> {
        let config = SimConfig::new(self.game, self.epochs, seed)?.with_options(self.options);
        let mut streams = self.population.spawn_streams(seed)?;
        let solve_span = telemetry.enabled().then(|| telemetry.spans.start());
        let mut policy = self.policy(kind, seed, telemetry)?;
        if let Some(start) = solve_span {
            telemetry.spans.end("scenario.solve", start);
        }
        engine::run_jobs(&config, &mut streams, policy.as_mut(), jobs, telemetry)
    }
}

/// Convergence facts about one offline solve, for per-cell sweep
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SolveSummary {
    /// Whether Algorithm 1 (or the multi-type fixed point) converged; a
    /// `false` here means agents run the conservative fallback threshold.
    pub converged: bool,
    /// Outer iterations spent (across damping escalations on failure).
    pub iterations: usize,
    /// Final (or best) fixed-point residual.
    pub residual: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_scales_band_with_population() {
        let s = Scenario::homogeneous(Benchmark::DecisionTree, 200, 100).unwrap();
        assert_eq!(s.game().n_agents(), 200);
        assert_eq!(s.game().n_min(), 50.0);
        assert_eq!(s.game().n_max(), 150.0);
        assert_eq!(s.epochs(), 100);
    }

    #[test]
    fn validates_epochs_and_population_match() {
        assert!(Scenario::homogeneous(Benchmark::Svm, 10, 0).is_err());
        let pop = Population::homogeneous(Benchmark::Svm, 10).unwrap();
        let game = GameConfig::paper_defaults(); // N = 1000 ≠ 10
        assert!(Scenario::with_game(pop, game, 10).is_err());
    }

    #[test]
    fn equilibrium_policy_is_uniform_for_homogeneous() {
        let s = Scenario::homogeneous(Benchmark::PageRank, 100, 50).unwrap();
        let p = s.equilibrium_thresholds(&mut Telemetry::noop()).unwrap();
        let t0 = p.thresholds()[0];
        assert!(p.thresholds().iter().all(|&t| (t - t0).abs() < 1e-12));
        assert!(t0 > 1.0, "pagerank threshold should be substantial: {t0}");
    }

    #[test]
    fn equilibrium_policy_tailors_types() {
        let s =
            Scenario::heterogeneous(&[Benchmark::LinearRegression, Benchmark::PageRank], 100, 50)
                .unwrap();
        let p = s.equilibrium_thresholds(&mut Telemetry::noop()).unwrap();
        // Round-robin: even agents linear, odd agents pagerank.
        let linear = p.thresholds()[0];
        let pagerank = p.thresholds()[1];
        assert!(
            pagerank > linear,
            "pagerank {pagerank} should exceed linear {linear}"
        );
    }

    #[test]
    fn cooperative_policy_is_common_threshold() {
        let s = Scenario::heterogeneous(&[Benchmark::Svm, Benchmark::Kmeans], 60, 50).unwrap();
        let p = s.cooperative_policy().unwrap();
        let t0 = p.thresholds()[0];
        assert!(p.thresholds().iter().all(|&t| t == t0));
    }

    #[test]
    fn mixture_density_weights_by_count() {
        let s =
            Scenario::heterogeneous(&[Benchmark::LinearRegression, Benchmark::PageRank], 100, 50)
                .unwrap();
        let m = s.mixture_density().unwrap();
        // Half the mass from linear regression's 3-5x band, half from
        // pagerank's bimodal profile — upper tail must be pagerank's.
        assert!(m.tail_mass(8.0) > 0.1);
        assert!(m.tail_mass(3.0) > 0.6);
    }

    #[test]
    fn run_produces_results_for_all_policies() {
        let s = Scenario::homogeneous(Benchmark::DecisionTree, 80, 150).unwrap();
        for kind in PolicyKind::ALL {
            let r = s.execute(kind, 11, &mut Telemetry::noop()).unwrap();
            assert_eq!(r.n_agents(), 80);
            assert_eq!(r.epochs(), 150);
            assert!(r.total_tasks() > 0.0, "{kind}");
        }
    }

    #[test]
    fn traced_run_matches_plain_run_and_narrates_the_solve() {
        use sprint_telemetry::EventKind;

        let s = Scenario::homogeneous(Benchmark::Svm, 60, 120).unwrap();
        let plain = s
            .execute(PolicyKind::EquilibriumThreshold, 7, &mut Telemetry::noop())
            .unwrap();
        let mut telemetry = Telemetry::in_memory();
        let traced = s
            .execute(PolicyKind::EquilibriumThreshold, 7, &mut telemetry)
            .unwrap();
        assert_eq!(plain, traced, "telemetry must not perturb the simulation");

        let events = telemetry.events().expect("in-memory recorder");
        let kinds: Vec<EventKind> = events.iter().map(sprint_telemetry::Event::kind).collect();
        assert!(kinds.contains(&EventKind::SolverIteration), "{kinds:?}");
        assert!(kinds.contains(&EventKind::SolverOutcome));
        assert!(kinds.contains(&EventKind::RunStart));
        assert!(kinds.contains(&EventKind::RunEnd));
        // The offline solve narrates before the engine starts.
        let solve_pos = kinds
            .iter()
            .position(|&k| k == EventKind::SolverOutcome)
            .unwrap();
        let run_pos = kinds
            .iter()
            .position(|&k| k == EventKind::RunStart)
            .unwrap();
        assert!(solve_pos < run_pos);
        assert!(telemetry.spans.stats("scenario.solve").is_some());
    }

    #[test]
    fn heterogeneous_traced_run_reports_a_coordinator_resolve() {
        let s = Scenario::heterogeneous(&[Benchmark::Svm, Benchmark::Kmeans], 40, 60).unwrap();
        let mut telemetry = Telemetry::in_memory();
        s.execute(PolicyKind::EquilibriumThreshold, 3, &mut telemetry)
            .unwrap();
        let events = telemetry.events().unwrap();
        let resolve = events
            .iter()
            .find_map(|e| match e {
                sprint_telemetry::Event::CoordinatorResolve {
                    types, converged, ..
                } => Some((*types, *converged)),
                _ => None,
            })
            .expect("multi-type solve should emit CoordinatorResolve");
        assert_eq!(resolve, (2, true));
    }

    #[test]
    fn equilibrium_beats_greedy_in_simulation() {
        // The headline claim, at small scale: E-T outperforms G.
        let s = Scenario::homogeneous(Benchmark::DecisionTree, 150, 400).unwrap();
        let g = s
            .execute(PolicyKind::Greedy, 13, &mut Telemetry::noop())
            .unwrap();
        let et = s
            .execute(PolicyKind::EquilibriumThreshold, 13, &mut Telemetry::noop())
            .unwrap();
        let ratio = et.tasks_per_agent_epoch() / g.tasks_per_agent_epoch();
        assert!(ratio > 2.0, "E-T/G = {ratio}");
    }

    #[test]
    fn cached_equilibrium_policy_matches_fresh_solve() {
        let s = Scenario::homogeneous(Benchmark::PageRank, 100, 50).unwrap();
        let fresh = s.equilibrium_thresholds(&mut Telemetry::noop()).unwrap();
        let cache = EquilibriumCache::default();
        let (first, summary) = s.equilibrium_policy_cached(&cache).unwrap();
        let (second, _) = s.equilibrium_policy_cached(&cache).unwrap();
        assert_eq!(fresh.thresholds(), first.thresholds());
        assert_eq!(fresh.thresholds(), second.thresholds());
        assert!(summary.converged);
        assert!(summary.iterations > 0);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cached_heterogeneous_solve_bypasses_the_cache() {
        let s = Scenario::heterogeneous(&[Benchmark::Svm, Benchmark::Kmeans], 40, 60).unwrap();
        let cache = EquilibriumCache::default();
        let (p, summary) = s.equilibrium_policy_cached(&cache).unwrap();
        assert_eq!(p.thresholds().len(), 40);
        assert!(summary.converged);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }
}
