//! The sprinting-policy interface.
//!
//! A policy answers one question per active agent per epoch: *sprint or
//! not?* — and observes the epoch's global outcome (whether the breaker
//! tripped) to adapt. The paper's four policies (§6) implement this trait
//! in [`crate::policies`].

/// Identifier for the paper's evaluated policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PolicyKind {
    /// G: sprint whenever permitted.
    Greedy,
    /// E-B: greedy with randomized exponential backoff after trips.
    ExponentialBackoff,
    /// E-T: per-type equilibrium thresholds from Algorithm 1.
    EquilibriumThreshold,
    /// C-T: the globally optimal common threshold (upper bound).
    CooperativeThreshold,
}

impl PolicyKind {
    /// All four policies in the paper's presentation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Greedy,
        PolicyKind::ExponentialBackoff,
        PolicyKind::EquilibriumThreshold,
        PolicyKind::CooperativeThreshold,
    ];

    /// Abbreviation used in the paper's figures.
    #[must_use]
    pub fn abbreviation(&self) -> &'static str {
        match self {
            PolicyKind::Greedy => "G",
            PolicyKind::ExponentialBackoff => "E-B",
            PolicyKind::EquilibriumThreshold => "E-T",
            PolicyKind::CooperativeThreshold => "C-T",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::Greedy => "Greedy",
            PolicyKind::ExponentialBackoff => "Exponential Backoff",
            PolicyKind::EquilibriumThreshold => "Equilibrium Threshold",
            PolicyKind::CooperativeThreshold => "Cooperative Threshold",
        };
        write!(f, "{s}")
    }
}

/// A snapshot of a policy's decision rule that needs no mutable state.
///
/// Policies whose per-epoch decisions are a pure function of
/// `(agent, utility)` — Greedy and the threshold policies — export one of
/// these so the engine can evaluate decisions inside its parallel agent
/// kernel without threading `&mut dyn SprintPolicy` across workers.
/// Stateful policies (backoff, adaptive, …) return `None` from
/// [`SprintPolicy::static_decider`] and keep the serial decision loop.
#[derive(Debug, Clone, PartialEq)]
pub enum StaticDecider {
    /// Sprint at every opportunity (Greedy).
    AlwaysSprint,
    /// Sprint iff `utility > thresholds[agent]` (E-T / C-T).
    PerAgent(Vec<f64>),
}

impl StaticDecider {
    /// The decision for `agent` at `utility`.
    #[inline]
    #[must_use]
    pub fn wants_sprint(&self, agent: usize, utility: f64) -> bool {
        match self {
            StaticDecider::AlwaysSprint => true,
            StaticDecider::PerAgent(thresholds) => utility > thresholds[agent],
        }
    }
}

/// A sprinting policy driving every agent in a simulated rack.
pub trait SprintPolicy: Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Whether agent `agent` (currently active) wants to sprint this
    /// epoch, given its estimated utility.
    fn wants_sprint(&mut self, agent: usize, utility: f64) -> bool;

    /// A stateless snapshot of the decision rule, if one exists.
    ///
    /// Returning `Some` lets the engine decide agents inside its
    /// chunk-parallel kernel (bit-identical to the serial loop);
    /// [`SprintPolicy::note_decisions`] then reports how many decisions
    /// were evaluated so counting policies stay accurate. The default
    /// (`None`) keeps every decision on [`SprintPolicy::wants_sprint`].
    fn static_decider(&self) -> Option<StaticDecider> {
        None
    }

    /// Observe that the engine evaluated `n` decisions through the
    /// [`StaticDecider`] snapshot this epoch (never called on the
    /// serial `wants_sprint` path).
    fn note_decisions(&mut self, n: u64) {
        let _ = n;
    }

    /// Observe the epoch's outcome (breaker tripped or not). Called once
    /// per epoch after all decisions resolve; adaptive policies (E-B)
    /// update their state here.
    fn epoch_end(&mut self, tripped: bool) {
        let _ = tripped;
    }

    /// Export policy-internal state into a metrics registry. Called once
    /// at the end of an instrumented run ([`crate::engine::run`]);
    /// the default exports nothing, and un-instrumented runs never call
    /// it, so stateless policies pay nothing.
    fn export_metrics(&self, registry: &mut sprint_telemetry::Registry) {
        let _ = registry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_policies_in_order() {
        assert_eq!(PolicyKind::ALL.len(), 4);
        assert_eq!(PolicyKind::ALL[0].abbreviation(), "G");
        assert_eq!(PolicyKind::ALL[3].abbreviation(), "C-T");
    }

    #[test]
    fn static_decider_rules() {
        assert!(StaticDecider::AlwaysSprint.wants_sprint(3, 0.0));
        let per = StaticDecider::PerAgent(vec![2.0, 5.0]);
        assert!(per.wants_sprint(0, 3.0));
        assert!(!per.wants_sprint(1, 3.0));
    }

    #[test]
    fn display_names() {
        assert_eq!(PolicyKind::Greedy.to_string(), "Greedy");
        assert_eq!(
            PolicyKind::EquilibriumThreshold.to_string(),
            "Equilibrium Threshold"
        );
    }
}
