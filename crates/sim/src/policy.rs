//! The sprinting-policy interface.
//!
//! A policy answers one question per active agent per epoch: *sprint or
//! not?* — and observes the epoch's global outcome (whether the breaker
//! tripped) to adapt. The paper's four policies (§6) implement this trait
//! in [`crate::policies`].

/// Identifier for the paper's evaluated policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PolicyKind {
    /// G: sprint whenever permitted.
    Greedy,
    /// E-B: greedy with randomized exponential backoff after trips.
    ExponentialBackoff,
    /// E-T: per-type equilibrium thresholds from Algorithm 1.
    EquilibriumThreshold,
    /// C-T: the globally optimal common threshold (upper bound).
    CooperativeThreshold,
}

impl PolicyKind {
    /// All four policies in the paper's presentation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Greedy,
        PolicyKind::ExponentialBackoff,
        PolicyKind::EquilibriumThreshold,
        PolicyKind::CooperativeThreshold,
    ];

    /// Abbreviation used in the paper's figures.
    #[must_use]
    pub fn abbreviation(&self) -> &'static str {
        match self {
            PolicyKind::Greedy => "G",
            PolicyKind::ExponentialBackoff => "E-B",
            PolicyKind::EquilibriumThreshold => "E-T",
            PolicyKind::CooperativeThreshold => "C-T",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::Greedy => "Greedy",
            PolicyKind::ExponentialBackoff => "Exponential Backoff",
            PolicyKind::EquilibriumThreshold => "Equilibrium Threshold",
            PolicyKind::CooperativeThreshold => "Cooperative Threshold",
        };
        write!(f, "{s}")
    }
}

/// A sprinting policy driving every agent in a simulated rack.
pub trait SprintPolicy: Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Whether agent `agent` (currently active) wants to sprint this
    /// epoch, given its estimated utility.
    fn wants_sprint(&mut self, agent: usize, utility: f64) -> bool;

    /// Observe the epoch's outcome (breaker tripped or not). Called once
    /// per epoch after all decisions resolve; adaptive policies (E-B)
    /// update their state here.
    fn epoch_end(&mut self, tripped: bool) {
        let _ = tripped;
    }

    /// Export policy-internal state into a metrics registry. Called once
    /// at the end of an instrumented run ([`crate::engine::run`]);
    /// the default exports nothing, and un-instrumented runs never call
    /// it, so stateless policies pay nothing.
    fn export_metrics(&self, registry: &mut sprint_telemetry::Registry) {
        let _ = registry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_policies_in_order() {
        assert_eq!(PolicyKind::ALL.len(), 4);
        assert_eq!(PolicyKind::ALL[0].abbreviation(), "G");
        assert_eq!(PolicyKind::ALL[3].abbreviation(), "C-T");
    }

    #[test]
    fn display_names() {
        assert_eq!(PolicyKind::Greedy.to_string(), "Greedy");
        assert_eq!(
            PolicyKind::EquilibriumThreshold.to_string(),
            "Equilibrium Threshold"
        );
    }
}
