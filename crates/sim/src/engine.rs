//! The epoch-driven rack simulation engine.
//!
//! Models the full system dynamics of §3 on concrete agents:
//!
//! - Active agents consult the policy; sprinters earn their epoch utility
//!   and enter chip cooling (geometric duration, persistence `p_c`).
//! - The breaker trips with the Equation-11 probability evaluated at the
//!   *realized* sprinter count; a trip sends the whole rack into recovery
//!   (geometric duration, persistence `p_r`). Sprints in progress complete
//!   on UPS power, so the tripping epoch's sprint utility still counts
//!   (§2.2).
//! - Recovery epochs produce no tasks by default — the paper's "idle
//!   recovery harms performance" (§6.1). [`RecoverySemantics::NormalMode`]
//!   is the ablation in which servers compute in normal mode during
//!   recharge.
//! - Wake-up after recovery is staggered over a configurable number of
//!   epochs to avoid dI/dt problems (§2.2): woken agents compute normally
//!   but may not sprint until their slot arrives.
//! - An optional [`FaultPlan`] injects crash churn, stuck sprinters,
//!   sensor noise, and breaker drift ([`crate::faults`]). Fault
//!   randomness lives on dedicated streams, so an empty plan reproduces
//!   fault-free runs bit for bit, and the engine never panics under any
//!   plan — degradation is measured, not crashed on.
//!
//! # The hot path
//!
//! The per-epoch loop is a struct-of-arrays kernel over a `Lanes` scratch
//! block allocated once per run: after setup the epoch loop performs
//! **zero heap allocation**. All per-agent randomness comes from
//! counter-based streams ([`sprint_stats::rng::CounterRng`]) — every draw
//! is a pure function of `(purpose, agent, epoch, slot)` — so agents are
//! processed in fixed-size chunks whose partial sums are reduced in chunk
//! order, and the result is bit-identical whether the chunks run on one
//! thread or fan out over `jobs` scoped workers ([`run_jobs`]).
//! Policies that expose a [`StaticDecider`] snapshot (Greedy and the
//! threshold policies) decide inside the parallel kernel; stateful
//! policies keep a serial decision loop between two kernel passes and
//! produce the same bytes at every job count.

use std::sync::Arc;

use sprint_game::trip::TripCurve;
use sprint_game::{AgentState, GameConfig};
use sprint_power::pcm::CurrentSensor;
use sprint_stats::density::{AliasSampler, DiscreteDensity};
use sprint_stats::rng::{CounterLane, CounterRng};
use sprint_telemetry::{
    CounterId, Event, EventKind, FaultKind, HistogramId, Registry, SeriesId, Telemetry,
};
use sprint_workloads::phases::PhasedUtility;

use crate::faults::{FaultMetrics, FaultPlan};
use crate::metrics::{SimResult, StateOccupancy};
use crate::policy::{SprintPolicy, StaticDecider};
use crate::SimError;

/// What servers produce while the rack recovers.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum RecoverySemantics {
    /// Paper semantics: recovery is idle, producing nothing.
    #[default]
    Idle,
    /// Ablation: servers compute in normal mode during recharge.
    NormalMode,
}

/// What happens to a sprint when the breaker trips mid-epoch.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize, Default)]
pub enum TripInterruption {
    /// Paper semantics (§2.2): "the rack augments power delivery with
    /// batteries to complete sprints in progress" — tripped-epoch sprints
    /// earn their full utility.
    #[default]
    CompleteOnUps,
    /// Ablation: the breaker's I²t element trips partway through the
    /// epoch (heavier overloads trip sooner), truncating every agent's
    /// work to the pre-trip fraction of the epoch.
    Truncated,
}

/// How agents estimate an epoch's sprint utility before deciding
/// (paper §4.4, "Online Strategy": brief profiling or heuristics).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize, Default)]
pub enum UtilityEstimation {
    /// Perfect estimates: decisions see the epoch's true utility.
    #[default]
    Oracle,
    /// Noisy estimates: decisions see the true utility times a
    /// log-normal-ish multiplicative error with the given relative
    /// standard deviation. Realized throughput still uses true utility.
    Noisy {
        /// Relative standard deviation of the estimation error.
        relative_sd: f64,
    },
}

/// Everything about a run that is not the game, horizon, or seed: the
/// ablation knobs and the fault plan, bundled so [`SimConfig`],
/// [`crate::scenario::Scenario`], and sweep specs carry one options value
/// instead of re-plumbing five setters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// What servers produce while the rack recovers.
    pub recovery: RecoverySemantics,
    /// What happens to sprints when the breaker trips mid-epoch.
    pub interruption: TripInterruption,
    /// How agents estimate utility before deciding.
    pub estimation: UtilityEstimation,
    /// The fault-injection plan ([`FaultPlan::none`] for clean runs).
    pub faults: FaultPlan,
    /// Post-recovery wake-up stagger window (paper: two epochs).
    pub stagger_epochs: u32,
    /// Agents per kernel chunk (default [`DEFAULT_CHUNK`]). Part of the
    /// spec, not a runtime knob: the chunk grouping fixes the float
    /// accumulation order of the chunk-ordered reduction, so two runs
    /// agree bitwise iff they agree on the chunk size — and at a fixed
    /// chunk size the result never depends on `jobs`.
    pub chunk_agents: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            recovery: RecoverySemantics::Idle,
            interruption: TripInterruption::CompleteOnUps,
            estimation: UtilityEstimation::Oracle,
            faults: FaultPlan::none(),
            stagger_epochs: 2,
            chunk_agents: DEFAULT_CHUNK,
        }
    }
}

// Hand-written so `chunk_agents` is omitted at its default: every spec
// and report written before the field existed keeps its exact bytes,
// which the report byte-identity gates pin.
impl serde::Serialize for RunOptions {
    fn to_value(&self) -> serde::Value {
        let mut obj = vec![
            ("recovery".to_string(), self.recovery.to_value()),
            ("interruption".to_string(), self.interruption.to_value()),
            ("estimation".to_string(), self.estimation.to_value()),
            ("faults".to_string(), self.faults.to_value()),
            ("stagger_epochs".to_string(), self.stagger_epochs.to_value()),
        ];
        if self.chunk_agents != DEFAULT_CHUNK {
            obj.push(("chunk_agents".to_string(), self.chunk_agents.to_value()));
        }
        serde::Value::Object(obj)
    }
}

impl serde::Deserialize for RunOptions {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let Some(obj) = value.as_object() else {
            return Err(serde::DeError::type_mismatch("object", value));
        };
        let d = RunOptions::default();
        let field = |name: &str| serde::__field(obj, name);
        Ok(RunOptions {
            recovery: match field("recovery") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => d.recovery,
            },
            interruption: match field("interruption") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => d.interruption,
            },
            estimation: match field("estimation") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => d.estimation,
            },
            faults: match field("faults") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => d.faults,
            },
            stagger_epochs: match field("stagger_epochs") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => d.stagger_epochs,
            },
            chunk_agents: match field("chunk_agents") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => DEFAULT_CHUNK,
            },
        })
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    game: GameConfig,
    epochs: usize,
    seed: u64,
    options: RunOptions,
}

impl SimConfig {
    /// Create a configuration for `epochs` epochs of `game` with a master
    /// seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `epochs` is 0.
    pub fn new(game: GameConfig, epochs: usize, seed: u64) -> crate::Result<Self> {
        if epochs == 0 {
            return Err(SimError::InvalidParameter {
                name: "epochs",
                value: 0.0,
                expected: "at least one epoch",
            });
        }
        Ok(SimConfig {
            game,
            epochs,
            seed,
            options: RunOptions::default(),
        })
    }

    /// Replace the whole options bundle at once (sweep specs carry one
    /// [`RunOptions`] instead of chaining the five setters below).
    #[must_use]
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// The run options.
    #[must_use]
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Override the recovery semantics (ablation).
    #[must_use]
    pub fn with_recovery(mut self, semantics: RecoverySemantics) -> Self {
        self.options.recovery = semantics;
        self
    }

    /// Override the post-recovery stagger window (paper: two epochs).
    #[must_use]
    pub fn with_stagger(mut self, epochs: u32) -> Self {
        self.options.stagger_epochs = epochs;
        self
    }

    /// Override the trip-interruption semantics (ablation).
    #[must_use]
    pub fn with_interruption(mut self, interruption: TripInterruption) -> Self {
        self.options.interruption = interruption;
        self
    }

    /// Override the utility-estimation model (ablation).
    #[must_use]
    pub fn with_estimation(mut self, estimation: UtilityEstimation) -> Self {
        self.options.estimation = estimation;
        self
    }

    /// Attach a fault-injection plan (robustness experiments).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.options.faults = faults;
        self
    }

    /// Override the kernel chunk size (tiling experiments). Changing it
    /// changes the float-accumulation grouping and therefore the result
    /// bytes — it is part of the spec, not a runtime knob.
    #[must_use]
    pub fn with_chunk_agents(mut self, chunk_agents: usize) -> Self {
        self.options.chunk_agents = chunk_agents;
        self
    }

    /// The fault-injection plan.
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.options.faults
    }

    /// The game parameters.
    #[must_use]
    pub fn game(&self) -> &GameConfig {
        &self.game
    }

    /// Simulated epochs.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.epochs
    }
}

/// A wall-clock budget for one run: the moment to give up, plus the
/// configured limit so [`SimError::DeadlineExceeded`] can report the
/// number the caller actually asked for.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: std::time::Instant,
    limit_ms: u64,
}

impl Deadline {
    /// A deadline `limit_ms` milliseconds from now.
    #[must_use]
    pub fn within_ms(limit_ms: u64) -> Self {
        Deadline {
            at: std::time::Instant::now() + std::time::Duration::from_millis(limit_ms),
            limit_ms,
        }
    }

    /// A deadline at an explicit instant, reported as `limit_ms`.
    #[must_use]
    pub fn new(at: std::time::Instant, limit_ms: u64) -> Self {
        Deadline { at, limit_ms }
    }

    /// The configured limit in milliseconds.
    #[must_use]
    pub fn limit_ms(&self) -> u64 {
        self.limit_ms
    }

    fn expired(&self) -> bool {
        std::time::Instant::now() >= self.at
    }
}

/// Why a [`CancelToken`] stopped a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The armed job deadline passed.
    DeadlineExceeded {
        /// The configured limit, in milliseconds.
        limit_ms: u64,
    },
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: std::sync::atomic::AtomicBool,
    deadline: std::sync::OnceLock<Deadline>,
}

/// A shared, cooperative stop request: a cancel flag plus an optional
/// armed wall-clock deadline, checked at the engine's epoch checkpoints
/// (every 64 epochs, like [`Deadline`] — the hot loop pays one relaxed
/// load per checkpoint, nothing per epoch).
///
/// Clones share state: a daemon hands one clone to the executing run
/// and keeps another to serve `POST /v1/jobs/{id}/cancel`. The token
/// never feeds wall-clock data into the dynamics — like the deadline,
/// it only decides *whether* a result exists, so a run that completes
/// is bit-identical to an uncancellable one.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: std::sync::Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh, unarmed, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; takes effect at the next
    /// cooperative checkpoint of whatever run holds a clone.
    pub fn cancel(&self) {
        self.inner
            .cancelled
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .cancelled
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Arm a job-level deadline `limit_ms` milliseconds from now. First
    /// arm wins; later calls are ignored (a token guards one job).
    pub fn arm_deadline_ms(&self, limit_ms: u64) {
        let _ = self.inner.deadline.set(Deadline::within_ms(limit_ms));
    }

    /// What has fired, if anything. Cancellation wins over the deadline
    /// so an operator's explicit cancel is never reported as a timeout.
    #[must_use]
    pub fn fired(&self) -> Option<Interrupt> {
        if self.is_cancelled() {
            return Some(Interrupt::Cancelled);
        }
        match self.inner.deadline.get() {
            Some(d) if d.expired() => Some(Interrupt::DeadlineExceeded {
                limit_ms: d.limit_ms(),
            }),
            _ => None,
        }
    }

    /// Checkpoint: `Err` with the matching [`SimError`] once the token
    /// has fired, `Ok(())` otherwise.
    ///
    /// # Errors
    ///
    /// [`SimError::Cancelled`] after [`CancelToken::cancel`];
    /// [`SimError::DeadlineExceeded`] once the armed deadline passes.
    pub fn check(&self, what: &'static str) -> crate::Result<()> {
        match self.fired() {
            None => Ok(()),
            Some(Interrupt::Cancelled) => Err(SimError::Cancelled { what }),
            Some(Interrupt::DeadlineExceeded { limit_ms }) => {
                Err(SimError::DeadlineExceeded { what, limit_ms })
            }
        }
    }
}

/// Everything that can stop a supervised run early: the per-attempt
/// deadline sweeps already used, plus a shared [`CancelToken`] carrying
/// operator cancellation and the job-level deadline.
#[derive(Debug, Clone, Default)]
pub struct RunGuard {
    /// Per-attempt wall-clock deadline (sweep trial supervision).
    pub deadline: Option<Deadline>,
    /// Shared cancellation / job-deadline token.
    pub cancel: Option<CancelToken>,
}

impl RunGuard {
    /// A guard with only a per-attempt deadline.
    #[must_use]
    pub fn with_deadline(deadline: Option<Deadline>) -> Self {
        RunGuard {
            deadline,
            cancel: None,
        }
    }
}

/// Fraction of the epoch elapsed before the breaker's thermal element
/// trips, from the center of the UL489 I²t band. Mild overloads (near
/// `N_min`) trip late; heavy overloads (beyond `N_max`) trip early.
fn pre_trip_fraction(game: &GameConfig, n_sprinters: f64) -> f64 {
    // Geometric mean of the band's I²t constants (see `sprint_power`):
    // k_fast = 84.375, k_slow = 309.375.
    const K_CENTER: f64 = 161.56;
    const EPOCH_REFERENCE_S: f64 = 150.0;
    let severity = (n_sprinters - game.n_min()) / (game.n_max() - game.n_min());
    if severity <= 0.0 {
        return 1.0;
    }
    // Current multiple interpolated through the band edges 1.25x/1.75x.
    let multiple = 1.25 + 0.5 * severity;
    let trip_s = K_CENTER / (multiple * multiple - 1.0);
    (trip_s / EPOCH_REFERENCE_S).clamp(0.05, 1.0)
}

/// Registry handles for the engine's per-epoch metric updates, registered
/// once before the hot loop so each update is a dense-vector index.
struct EngineIds {
    epochs: CounterId,
    trips: CounterId,
    sprinter_series: SeriesId,
    task_series: SeriesId,
    trip_series: SeriesId,
    sprinter_hist: HistogramId,
    faults: [CounterId; 10],
}

impl EngineIds {
    fn register(reg: &mut Registry, n_agents: f64) -> Self {
        let fault_ids = FaultKind::ALL.map(|kind| reg.counter(&format!("faults.{}", kind.name())));
        // Sprinter-load buckets as fractions of the rack.
        let bounds: Vec<f64> = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
            .iter()
            .map(|f| f * n_agents)
            .collect();
        EngineIds {
            epochs: reg.counter("engine.epochs"),
            trips: reg.counter("engine.trips"),
            sprinter_series: reg.series("engine.sprinters"),
            task_series: reg.series("engine.tasks"),
            trip_series: reg.series("engine.tripped"),
            sprinter_hist: reg.histogram("engine.sprinter_load", &bounds),
            faults: fault_ids,
        }
    }

    fn fault(&self, kind: FaultKind) -> CounterId {
        self.faults[kind as usize]
    }
}

/// Default agents per kernel chunk ([`RunOptions::chunk_agents`]). The
/// chunk size is fixed per run — never derived from the job count — so
/// per-chunk float accumulation and the chunk-ordered reduction are
/// identical at every `jobs` value.
pub const DEFAULT_CHUNK: usize = 1024;

/// The rack-level "agent" coordinate for draws that are not per-agent
/// (breaker trip, sensor noise, recovery exit). Real agent indices are
/// always far below this sentinel.
const RACK: u64 = u64::MAX;

/// Counter-based draw streams, one per purpose. Every draw is a pure
/// function of `(purpose, agent, epoch, slot)`, so speculative draws are
/// free (nothing is consumed) and evaluation order never matters.
#[derive(Clone, Copy)]
struct Draws {
    /// Estimation noise (main stream, slots 0–1 per agent-epoch).
    estimate: CounterRng,
    /// Breaker trip draw (main stream, rack-level).
    trip: CounterRng,
    /// Chip cooling exit (main stream, per agent).
    cooling: CounterRng,
    /// Rack recovery exit (rack-level, slot 0) and wake-up stagger slots
    /// (per agent, slot 1).
    recovery: CounterRng,
    /// Crash/restart churn (fault stream; one draw per agent-epoch — an
    /// agent is either down, drawing for restart, or up, drawing for
    /// crash).
    crash: CounterRng,
    /// Stuck-gate stick/release (fault stream; mutually exclusive per
    /// agent-epoch).
    stick: CounterRng,
    /// Sensor noise and dropout (fault stream, rack-level, slots 0–2).
    sensor: CounterRng,
}

impl Draws {
    fn new(config: &SimConfig) -> Self {
        let main = config.seed ^ 0x51B_EAC0;
        // Fault randomness is keyed on the plan's own seed too: an empty
        // plan makes no fault draws, and two plans rooted at different
        // fault seeds see independent fault streams over the same
        // main-stream dynamics.
        let fault = config.seed ^ config.options.faults.seed.rotate_left(17) ^ 0xFA_17;
        Draws {
            estimate: CounterRng::new(main, 1),
            trip: CounterRng::new(main, 2),
            cooling: CounterRng::new(main, 3),
            recovery: CounterRng::new(main, 4),
            crash: CounterRng::new(fault, 5),
            stick: CounterRng::new(fault, 6),
            sensor: CounterRng::new(fault, 7),
        }
    }
}

/// Purpose tag for phase-process draws. Unlike the purposes above, phase
/// streams are rooted at each *stream's own seed* (not the run seed), so
/// a population's utility sequences depend only on how it was spawned —
/// exactly as when each stream walked its own sequential generator.
const PHASE_PURPOSE: u64 = 8;

/// Per-agent phase-process constants, extracted from the utility streams
/// once at setup so the epoch loop advances phases in flat lanes: emit
/// the current value, then resample from the discretized stationary
/// density with probability `1 / persistence` — one counter draw per
/// agent-epoch plus an O(1) alias-table lookup on resample, instead of
/// walking a sequential per-agent generator through a boxed
/// distribution.
struct PhaseKernel {
    /// Counter stream per agent, rooted at the stream's seed.
    keys: Vec<CounterLane>,
    /// `1 / ln(1 - p_resample)` per agent — the scale that turns one
    /// uniform into a geometric phase length by inversion (`-0.0` when
    /// `p_resample >= 1`, which correctly yields length-1 phases).
    gap_scale: Vec<f64>,
    /// Index into `samplers` per agent (cohorts share one table, so this
    /// lane is small integers and `samplers` stays cache-hot).
    sampler_of: Vec<u32>,
    /// One O(1) alias sampler per distinct cohort density.
    samplers: Vec<AliasSampler>,
}

impl PhaseKernel {
    fn new(streams: &[PhasedUtility]) -> Self {
        // Deduplicate by shared-table identity: spawn cohorts hand every
        // stream of a benchmark the same `Arc`, so a population has a
        // handful of distinct tables regardless of agent count (streams
        // built one-off each carry their own, which degrades gracefully
        // to one sampler per agent).
        let mut seen: std::collections::HashMap<*const DiscreteDensity, u32> =
            std::collections::HashMap::new();
        let mut samplers = Vec::new();
        let sampler_of = streams
            .iter()
            .map(|s| {
                let ptr = Arc::as_ptr(s.sample_table());
                *seen.entry(ptr).or_insert_with(|| {
                    samplers.push(AliasSampler::new(s.sample_table()));
                    (samplers.len() - 1) as u32
                })
            })
            .collect();
        PhaseKernel {
            keys: streams
                .iter()
                .map(|s| CounterRng::new(s.stream_seed(), PHASE_PURPOSE).lane(0))
                .collect(),
            gap_scale: streams
                .iter()
                .map(|s| 1.0 / (1.0 - s.resample_probability()).ln())
                .collect(),
            sampler_of,
            samplers,
        }
    }

    /// A geometric phase length on `{1, 2, ...}` with mean `persistence`,
    /// by inversion of one uniform.
    #[inline]
    fn gap(&self, a: usize, u: f64) -> u64 {
        geometric_gap(u, self.gap_scale[a])
    }
}

/// A geometric variate on `{1, 2, ...}` with success probability `p`, by
/// inversion: `1 + floor(ln(1-u) / ln(1-p))` with `scale = 1 / ln(1-p)`
/// precomputed. The `f64 -> u64` cast saturates, so near-zero exit
/// probabilities yield astronomically long (not wrapped) gaps, and
/// `p = 1` (`scale = -0.0`) always yields 1.
#[inline]
fn geometric_gap(u: f64, scale: f64) -> u64 {
    1 + ((1.0 - u).ln() * scale) as u64
}

/// Reserved epoch coordinate for setup-time phase draws; run epochs are
/// array indices and can never reach it.
const PHASE_SETUP_EPOCH: u64 = u64::MAX;

/// The struct-of-arrays per-agent scratch, allocated once per run. The
/// epoch loop reads and writes these flat lanes and allocates nothing.
struct Lanes {
    /// Current phase value per agent — the utility each epoch emits.
    phase: Vec<f64>,
    /// Epoch at which each agent's phase resamples next.
    next_change: Vec<u64>,
    states: Vec<AgentState>,
    /// Epoch index before which a freshly woken agent may not sprint.
    blocked_until: Vec<usize>,
    /// First epoch at which a cooling agent may return to Active, drawn
    /// once when the sprint begins (geometric inversion — same law as a
    /// per-epoch exit draw, but parked agents cost one compare).
    cool_until: Vec<u64>,
    /// Fault overlay: agents currently down.
    crashed: Vec<bool>,
    /// Fault overlay: power gates stuck in the sprint position.
    stuck: Vec<bool>,
    /// Which agents sprinted this epoch.
    sprinted: Vec<bool>,
    /// Churn outcome this epoch: 0 none, 1 crash, 2 restart. Written by
    /// the kernel, drained on the main thread for event emission.
    churn_flag: Vec<u8>,
    /// Gate stuck this epoch (speculative until the trip resolves).
    stick_flag: Vec<bool>,
}

impl Lanes {
    fn new(n: usize) -> Self {
        Lanes {
            phase: vec![0.0; n],
            next_change: vec![0; n],
            states: vec![AgentState::Active; n],
            blocked_until: vec![0; n],
            cool_until: vec![0; n],
            crashed: vec![false; n],
            stuck: vec![false; n],
            sprinted: vec![false; n],
            churn_flag: vec![0; n],
            stick_flag: vec![false; n],
        }
    }

    fn view(&mut self) -> LaneView<'_> {
        LaneView {
            phase: &mut self.phase,
            next_change: &mut self.next_change,
            states: &mut self.states,
            blocked_until: &mut self.blocked_until,
            cool_until: &mut self.cool_until,
            crashed: &mut self.crashed,
            stuck: &mut self.stuck,
            sprinted: &mut self.sprinted,
            churn_flag: &mut self.churn_flag,
            stick_flag: &mut self.stick_flag,
        }
    }
}

/// A mutable window over every lane for one contiguous span of agents.
/// Splitting a view splits every lane at the same agent index, which is
/// how disjoint spans fan out to workers.
struct LaneView<'a> {
    phase: &'a mut [f64],
    next_change: &'a mut [u64],
    states: &'a mut [AgentState],
    blocked_until: &'a mut [usize],
    cool_until: &'a mut [u64],
    crashed: &'a mut [bool],
    stuck: &'a mut [bool],
    sprinted: &'a mut [bool],
    churn_flag: &'a mut [u8],
    stick_flag: &'a mut [bool],
}

impl<'a> LaneView<'a> {
    fn len(&self) -> usize {
        self.phase.len()
    }

    fn split_at_mut(self, mid: usize) -> (LaneView<'a>, LaneView<'a>) {
        let (phase_a, phase_b) = self.phase.split_at_mut(mid);
        let (next_a, next_b) = self.next_change.split_at_mut(mid);
        let (states_a, states_b) = self.states.split_at_mut(mid);
        let (blocked_a, blocked_b) = self.blocked_until.split_at_mut(mid);
        let (cool_a, cool_b) = self.cool_until.split_at_mut(mid);
        let (crashed_a, crashed_b) = self.crashed.split_at_mut(mid);
        let (stuck_a, stuck_b) = self.stuck.split_at_mut(mid);
        let (sprinted_a, sprinted_b) = self.sprinted.split_at_mut(mid);
        let (churn_a, churn_b) = self.churn_flag.split_at_mut(mid);
        let (stick_a, stick_b) = self.stick_flag.split_at_mut(mid);
        (
            LaneView {
                phase: phase_a,
                next_change: next_a,
                states: states_a,
                blocked_until: blocked_a,
                cool_until: cool_a,
                crashed: crashed_a,
                stuck: stuck_a,
                sprinted: sprinted_a,
                churn_flag: churn_a,
                stick_flag: stick_a,
            },
            LaneView {
                phase: phase_b,
                next_change: next_b,
                states: states_b,
                blocked_until: blocked_b,
                cool_until: cool_b,
                crashed: crashed_b,
                stuck: stuck_b,
                sprinted: sprinted_b,
                churn_flag: churn_b,
                stick_flag: stick_b,
            },
        )
    }
}

/// Per-chunk partial sums, reduced on the main thread in chunk order so
/// the totals — including the float task sum — are independent of which
/// worker ran which chunk.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkStats {
    crashes: u32,
    restarts: u32,
    n_crashed: u32,
    n_sprinters: u32,
    n_stuck: u32,
    decisions: u32,
    sticks: u32,
    occ_sprinting: u32,
    occ_cooling: u32,
    occ_idle: u32,
    /// Unscaled epoch tasks (sprint utility for sprinters, 1.0 for other
    /// powered agents); the trip scale is applied during reduction.
    tasks: f64,
}

/// What a kernel pass does per agent.
#[derive(Clone, Copy, PartialEq)]
enum KernelMode {
    /// Advance utility streams and run crash churn only (recovery
    /// epochs, and the pre-pass for stateful policies).
    Advance,
    /// The full fused pass: advance, churn, decide through the
    /// [`StaticDecider`], accumulate throughput/occupancy, and apply
    /// speculative as-if-untripped state transitions.
    Fused,
}

/// Everything a kernel pass reads, shared immutably across workers.
struct EpochCtx<'a> {
    epoch: usize,
    plan: &'a FaultPlan,
    draws: &'a Draws,
    /// Phase-process constants, indexed by *global* agent id.
    phases: &'a PhaseKernel,
    estimation: UtilityEstimation,
    rack_recovering: bool,
    /// Precomputed `1 / ln(p_cooling)` for [`geometric_gap`] cooling
    /// durations.
    cool_scale: f64,
    decider: Option<&'a StaticDecider>,
    mode: KernelMode,
    /// Agents per chunk ([`RunOptions::chunk_agents`]).
    chunk: usize,
}

/// Advance one agent's wall-clock processes: utility stream and crash
/// churn. Returns (is down this epoch, churn flag).
#[inline]
fn advance_agent(ctx: &EpochCtx<'_>, agent: u64, i: usize, v: &mut LaneView<'_>) -> (bool, u8) {
    // Phase process, geometric-jump form: each resample schedules the
    // *next* resample epoch, so the common path is one load and compare.
    // At a change epoch, one counter word (keyed by the stream's own
    // seed) splits into the alias-table bin and in-bin position draws,
    // and a second turns into the next geometric gap. Phases advance in
    // wall-clock time regardless of power state, exactly like the
    // sequential streams.
    let a = agent as usize;
    let epoch = ctx.epoch as u64;
    if epoch == v.next_change[i] {
        let key = ctx.phases.keys[a];
        let w = key.word(epoch, 0);
        let sampler = &ctx.phases.samplers[ctx.phases.sampler_of[a] as usize];
        let scale = 1.0 / 4_294_967_296.0;
        let u_bin = (w >> 32) as f64 * scale;
        let u_pos = f64::from(w as u32) * scale;
        v.phase[i] = sampler.sample(u_bin, u_pos);
        v.next_change[i] = epoch + ctx.phases.gap(a, key.uniform(epoch, 1));
    }
    let mut flag = 0u8;
    // Crash churn progresses in wall-clock time too: agents go down and
    // come back regardless of the rack's power state. A restart is a cold
    // start — the agent re-acquires its threshold from the coordinator
    // before it may sprint again.
    if let Some(c) = ctx.plan.crash {
        let epoch = ctx.epoch as u64;
        if v.crashed[i] {
            if ctx.draws.crash.uniform(agent, epoch, 0) >= c.p_restart_stay {
                v.crashed[i] = false;
                flag = 2;
                v.blocked_until[i] =
                    (ctx.epoch + c.reacquire_epochs as usize).max(v.blocked_until[i]);
                v.states[i] = if ctx.rack_recovering {
                    AgentState::Recovery
                } else {
                    AgentState::Active
                };
            }
        } else if ctx.draws.crash.uniform(agent, epoch, 0) < c.crash_probability {
            v.crashed[i] = true;
            flag = 1;
            // Power drops with the machine: a stuck gate releases.
            v.stuck[i] = false;
        }
        v.churn_flag[i] = flag;
    }
    (v.crashed[i], flag)
}

/// The streamlined fused kernel for the common case: oracle estimation,
/// no crash or stuck faults, rack powered. The per-agent work of
/// [`run_chunk`] is split into three passes over the SoA lanes so the
/// decide pass is branch-free and auto-vectorizable:
///
/// - **A** — phase advance (rare resample, one compare per agent);
/// - **B** — decide: `sprinted[i] = active & unblocked & over-threshold`,
///   straight-line boolean arithmetic over the `states`, `blocked_until`,
///   and `phase` lanes with the decider match hoisted out of the loop;
/// - **C** — accumulate throughput/occupancy and apply transitions in the
///   same per-agent order as the fused path, so every float lands in the
///   accumulator in the identical sequence and every counter draw uses
///   the identical coordinates — the restructure is bitwise invisible.
fn run_chunk_streamlined(
    ctx: &EpochCtx<'_>,
    decider: &StaticDecider,
    base: usize,
    v: &mut LaneView<'_>,
    lo: usize,
    hi: usize,
) -> ChunkStats {
    let mut st = ChunkStats::default();
    let epoch = ctx.epoch as u64;
    // Pass A: phase processes (wall-clock time, independent of power
    // state). Resampling is rare — mean phase lengths are the benchmark
    // persistences — so the loop body is usually one load and compare.
    for i in lo..hi {
        if epoch == v.next_change[i] {
            let a = base + i;
            let key = ctx.phases.keys[a];
            let w = key.word(epoch, 0);
            let sampler = &ctx.phases.samplers[ctx.phases.sampler_of[a] as usize];
            let scale = 1.0 / 4_294_967_296.0;
            let u_bin = (w >> 32) as f64 * scale;
            let u_pos = f64::from(w as u32) * scale;
            v.phase[i] = sampler.sample(u_bin, u_pos);
            v.next_change[i] = epoch + ctx.phases.gap(a, key.uniform(epoch, 1));
        }
    }
    // Pass B: branch-free decide. Non-active agents never sprint, so
    // writing the conjunction unconditionally also clears the lane for
    // cooling/recovery agents exactly as the fused path does.
    match decider {
        StaticDecider::AlwaysSprint => {
            for i in lo..hi {
                v.sprinted[i] =
                    matches!(v.states[i], AgentState::Active) & (ctx.epoch >= v.blocked_until[i]);
            }
        }
        StaticDecider::PerAgent(thresholds) => {
            // Global-agent indexing, sliced once; a mis-sized decider
            // panics here like `wants_sprint` would.
            let t = &thresholds[base + lo..base + hi];
            for (k, i) in (lo..hi).enumerate() {
                v.sprinted[i] = matches!(v.states[i], AgentState::Active)
                    & (ctx.epoch >= v.blocked_until[i])
                    & (v.phase[i] > t[k]);
            }
        }
    }
    // Pass C: throughput, occupancy, and speculative transitions, one
    // agent at a time in index order (bitwise-identical accumulation).
    for i in lo..hi {
        let agent = (base + i) as u64;
        match v.states[i] {
            AgentState::Active => {
                st.decisions += u32::from(ctx.epoch >= v.blocked_until[i]);
                if v.sprinted[i] {
                    st.n_sprinters += 1;
                    st.occ_sprinting += 1;
                    st.tasks += v.phase[i];
                    v.states[i] = AgentState::Cooling;
                    let u = ctx.draws.cooling.uniform(agent, epoch, 0);
                    v.cool_until[i] = epoch + geometric_gap(u, ctx.cool_scale);
                } else {
                    st.occ_idle += 1;
                    st.tasks += 1.0;
                }
            }
            AgentState::Cooling => {
                st.occ_cooling += 1;
                st.tasks += 1.0;
                if epoch >= v.cool_until[i] {
                    v.states[i] = AgentState::Active;
                }
            }
            AgentState::Recovery => {
                v.states[i] = AgentState::Active;
                st.occ_idle += 1;
                st.tasks += 1.0;
            }
        }
    }
    st
}

/// Run one chunk of agents; lane index `i` is agent `base + i`.
fn run_chunk(
    ctx: &EpochCtx<'_>,
    base: usize,
    v: &mut LaneView<'_>,
    lo: usize,
    hi: usize,
) -> ChunkStats {
    if ctx.mode == KernelMode::Fused
        && !ctx.rack_recovering
        && ctx.plan.crash.is_none()
        && ctx.plan.stuck.is_none()
        && ctx.estimation == UtilityEstimation::Oracle
    {
        let decider = ctx.decider.expect("fused kernel requires a static decider");
        return run_chunk_streamlined(ctx, decider, base, v, lo, hi);
    }
    let mut st = ChunkStats::default();
    let epoch = ctx.epoch as u64;
    let track_stuck = ctx.plan.stuck.is_some();
    for i in lo..hi {
        let agent = (base + i) as u64;
        let (down, flag) = advance_agent(ctx, agent, i, v);
        match flag {
            1 => st.crashes += 1,
            2 => st.restarts += 1,
            _ => {}
        }
        if track_stuck {
            v.stick_flag[i] = false;
        }
        if down {
            st.n_crashed += 1;
            v.sprinted[i] = false;
            continue;
        }
        if ctx.mode == KernelMode::Advance || ctx.rack_recovering {
            continue;
        }
        // Fused decide + throughput + speculative transition. Transitions
        // assume the breaker does not trip; a trip overwrites every state
        // with `Recovery` afterwards, and the counter draws made here
        // cost nothing because nothing is consumed.
        match v.states[i] {
            AgentState::Active => {
                let u = v.phase[i];
                let estimate = match ctx.estimation {
                    UtilityEstimation::Oracle => u,
                    UtilityEstimation::Noisy { relative_sd } => {
                        let z = ctx.draws.estimate.normal(agent, epoch, 0);
                        (u * (1.0 + relative_sd * z)).max(0.0)
                    }
                };
                let may_sprint = ctx.epoch >= v.blocked_until[i];
                let sprint = may_sprint && {
                    st.decisions += 1;
                    ctx.decider
                        .expect("fused kernel requires a static decider")
                        .wants_sprint(base + i, estimate)
                };
                v.sprinted[i] = sprint;
                if sprint {
                    st.n_sprinters += 1;
                    st.occ_sprinting += 1;
                    st.tasks += u;
                    if let Some(s) = ctx.plan.stuck {
                        if ctx.draws.stick.uniform(agent, epoch, 0) < s.stick_probability {
                            v.stuck[i] = true;
                            v.stick_flag[i] = true;
                            st.sticks += 1;
                        }
                    }
                    v.states[i] = AgentState::Cooling;
                    // Cooling duration, drawn once at sprint time: the
                    // same geometric law as a per-epoch exit draw, so
                    // parked agents below cost one load and compare.
                    let u = ctx.draws.cooling.uniform(agent, epoch, 0);
                    v.cool_until[i] = epoch + geometric_gap(u, ctx.cool_scale);
                } else {
                    st.occ_idle += 1;
                    st.tasks += 1.0;
                }
            }
            AgentState::Cooling => {
                v.sprinted[i] = false;
                st.occ_cooling += 1;
                st.tasks += 1.0;
                if v.stuck[i] {
                    // The power gate failed to release: the chip draws
                    // sprint current without doing sprint work, and the
                    // gate releases geometrically on the fault stream.
                    st.n_stuck += 1;
                    if let Some(s) = ctx.plan.stuck {
                        if ctx.draws.stick.uniform(agent, epoch, 0) >= s.p_stuck_stay {
                            v.stuck[i] = false;
                            // Cooling restarts from the release epoch;
                            // geometric memorylessness makes this the
                            // same law as resuming per-epoch exit draws.
                            let u = ctx.draws.cooling.uniform(agent, epoch, 0);
                            v.cool_until[i] = epoch + geometric_gap(u, ctx.cool_scale);
                        }
                    }
                } else if epoch >= v.cool_until[i] {
                    v.states[i] = AgentState::Active;
                }
            }
            AgentState::Recovery => {
                // A stale recovery tag (e.g. an agent that restarted
                // mid-recovery and outlived it) degrades to normal
                // computing instead of panicking; it may not sprint this
                // epoch.
                v.sprinted[i] = false;
                v.states[i] = AgentState::Active;
                st.occ_idle += 1;
                st.tasks += 1.0;
            }
        }
    }
    st
}

/// Run every chunk of one span in order, writing one [`ChunkStats`] per
/// chunk.
fn run_span(ctx: &EpochCtx<'_>, base: usize, v: &mut LaneView<'_>, stats: &mut [ChunkStats]) {
    let mut lo = 0;
    for cs in stats.iter_mut() {
        let hi = (lo + ctx.chunk).min(v.len());
        *cs = run_chunk(ctx, base, v, lo, hi);
        lo = hi;
    }
}

// ---------------------------------------------------------------------
// The persistent epoch-kernel worker pool.
//
// `jobs > 1` used to spawn fresh scoped threads *every epoch*; a
// 20 000-epoch run paid 20 000× thread spawn/join latency, which is why
// the parallel path lost to serial. The pool below is created once per
// run: workers are spawned before the epoch loop, sleep between epochs,
// and are released per epoch through an atomic sequence barrier — no
// per-epoch allocation and, once spinning, no per-epoch syscalls.
//
// Barrier protocol (see DESIGN.md §17):
//
// - One `AtomicU64` ticket encodes the pass: `(epoch+1) << 2 |
//   fused << 1 | recovering`. 0 means "no pass yet"; `u64::MAX` means
//   shutdown. The coordinator publishes it with `Release`; workers
//   observe it with `Acquire`, so every lane byte the coordinator wrote
//   between passes (serial decides, recovery fills) happens-before the
//   workers' reads.
// - Each spawned worker owns a cache-line-padded `done` slot. After
//   running its span it stores the ticket with `Release` and unparks the
//   coordinator; the coordinator spins-then-parks until every slot shows
//   the ticket (`Acquire`), so every lane byte the workers wrote
//   happens-before the coordinator's reduction.
// - Workers spin briefly then `park()`; `unpark` tokens are sticky, so a
//   publish that races a worker entering `park` cannot be lost.
// - A worker wraps its span in `catch_unwind`: on panic it raises the
//   shared `panicked` flag, *still* stores its `done` ticket (the
//   barrier never deadlocks), and exits. The coordinator turns the flag
//   into a typed [`SimError::WorkerPanicked`]. A drop guard publishes
//   the shutdown ticket on every exit path — normal completion, cancel/
//   deadline error, or panic — so the scoped join always completes.
//
// Each worker's span is a fixed contiguous block of whole chunks,
// partitioned exactly like the old per-epoch split, carved once into raw
// lane pointers. Safety rests on alternating exclusive access: workers
// touch their spans only between ticket publish and done store, the
// coordinator touches the lanes only outside that window, and the two
// atomics order the handoff in both directions.
// ---------------------------------------------------------------------

/// Pool shutdown ticket.
const POOL_SHUTDOWN: u64 = u64::MAX;

/// Spins before a waiter parks. High enough that a worker whose next
/// pass is already being published never syscalls; low enough that an
/// oversubscribed host degrades to sleeping instead of burning cores.
const POOL_SPINS: u32 = 1 << 14;

/// One spawned worker's barrier slot, padded to its own cache line so
/// per-pass `done` stores never false-share with a neighbor.
#[repr(align(128))]
struct WorkerSlot {
    /// Last ticket this worker completed.
    done: std::sync::atomic::AtomicU64,
    /// Nanoseconds spent in kernel passes (tracked only when telemetry
    /// is on; read after shutdown for the pool-utilization gauge).
    busy_nanos: std::sync::atomic::AtomicU64,
}

/// Coordinator/worker shared state for one run's pool.
struct PoolCtrl {
    /// The pass ticket: `(epoch+1) << 2 | fused << 1 | recovering`.
    seq: std::sync::atomic::AtomicU64,
    slots: Box<[WorkerSlot]>,
    /// Raised by any participant whose span panicked.
    panicked: std::sync::atomic::AtomicBool,
    /// The coordinator's thread handle, for targeted unparks.
    coordinator: std::thread::Thread,
    /// Track per-pass busy time (telemetry enabled)?
    timed: bool,
}

impl PoolCtrl {
    fn new(spawned: usize, timed: bool) -> Self {
        PoolCtrl {
            seq: std::sync::atomic::AtomicU64::new(0),
            slots: (0..spawned)
                .map(|_| WorkerSlot {
                    done: std::sync::atomic::AtomicU64::new(0),
                    busy_nanos: std::sync::atomic::AtomicU64::new(0),
                })
                .collect(),
            panicked: std::sync::atomic::AtomicBool::new(false),
            coordinator: std::thread::current(),
            timed,
        }
    }

    fn encode(epoch: usize, fused: bool, recovering: bool) -> u64 {
        ((epoch as u64 + 1) << 2) | (u64::from(fused) << 1) | u64::from(recovering)
    }
}

/// The run-constant inputs of [`EpochCtx`], shared with pool workers so
/// each can rebuild the epoch's context from the ticket alone.
struct PassConstants<'a> {
    plan: &'a FaultPlan,
    draws: &'a Draws,
    phases: &'a PhaseKernel,
    estimation: UtilityEstimation,
    cool_scale: f64,
    decider: Option<&'a StaticDecider>,
    chunk: usize,
}

impl<'a> PassConstants<'a> {
    /// The [`EpochCtx`] a ticket denotes — identical to the one the
    /// coordinator built, because everything else is run-constant.
    fn ctx(&self, ticket: u64) -> EpochCtx<'a> {
        let fused = ticket & 0b10 != 0;
        EpochCtx {
            epoch: ((ticket >> 2) - 1) as usize,
            plan: self.plan,
            draws: self.draws,
            phases: self.phases,
            estimation: self.estimation,
            rack_recovering: ticket & 0b01 != 0,
            cool_scale: self.cool_scale,
            decider: self.decider,
            mode: if fused {
                KernelMode::Fused
            } else {
                KernelMode::Advance
            },
            chunk: self.chunk,
        }
    }
}

/// One worker's fixed span: raw pointers into every lane plus its chunk
/// of the stats array, carved once at pool creation. The pointers stay
/// valid for the whole run (the `Lanes` vectors are never resized after
/// setup) and the barrier protocol makes access exclusive in time.
#[derive(Clone, Copy)]
struct SpanPtr {
    /// Global agent index of the span start.
    base: usize,
    /// Agents in the span.
    len: usize,
    /// Chunks in the span.
    n_stats: usize,
    phase: *mut f64,
    next_change: *mut u64,
    states: *mut AgentState,
    blocked_until: *mut usize,
    cool_until: *mut u64,
    crashed: *mut bool,
    stuck: *mut bool,
    sprinted: *mut bool,
    churn_flag: *mut u8,
    stick_flag: *mut bool,
    stats: *mut ChunkStats,
}

// The raw pointers target disjoint spans handed to exactly one worker
// each; the barrier protocol serializes all access (see above).
unsafe impl Send for SpanPtr {}

impl SpanPtr {
    fn carve(base: usize, view: LaneView<'_>, stats: &mut [ChunkStats]) -> Self {
        SpanPtr {
            base,
            len: view.phase.len(),
            n_stats: stats.len(),
            phase: view.phase.as_mut_ptr(),
            next_change: view.next_change.as_mut_ptr(),
            states: view.states.as_mut_ptr(),
            blocked_until: view.blocked_until.as_mut_ptr(),
            cool_until: view.cool_until.as_mut_ptr(),
            crashed: view.crashed.as_mut_ptr(),
            stuck: view.stuck.as_mut_ptr(),
            sprinted: view.sprinted.as_mut_ptr(),
            churn_flag: view.churn_flag.as_mut_ptr(),
            stick_flag: view.stick_flag.as_mut_ptr(),
            stats: stats.as_mut_ptr(),
        }
    }

    /// Run one kernel pass over this span.
    ///
    /// # Safety
    ///
    /// The caller must hold this span's turn under the barrier protocol:
    /// between the coordinator's ticket publish and this span's `done`
    /// store (workers), or any time outside a pass (the coordinator's
    /// own span).
    unsafe fn run(&self, ctx: &EpochCtx<'_>) {
        use std::slice::from_raw_parts_mut;
        let mut v = LaneView {
            phase: from_raw_parts_mut(self.phase, self.len),
            next_change: from_raw_parts_mut(self.next_change, self.len),
            states: from_raw_parts_mut(self.states, self.len),
            blocked_until: from_raw_parts_mut(self.blocked_until, self.len),
            cool_until: from_raw_parts_mut(self.cool_until, self.len),
            crashed: from_raw_parts_mut(self.crashed, self.len),
            stuck: from_raw_parts_mut(self.stuck, self.len),
            sprinted: from_raw_parts_mut(self.sprinted, self.len),
            churn_flag: from_raw_parts_mut(self.churn_flag, self.len),
            stick_flag: from_raw_parts_mut(self.stick_flag, self.len),
        };
        let stats = from_raw_parts_mut(self.stats, self.n_stats);
        run_span(ctx, self.base, &mut v, stats);
    }
}

/// Partition lanes + stats into `workers` contiguous whole-chunk spans —
/// the identical split at every job count, so chunk results land at the
/// same indices no matter who runs them. Span 0 belongs to the
/// coordinator thread.
fn carve_spans(
    lanes: &mut Lanes,
    stats: &mut [ChunkStats],
    workers: usize,
    chunk: usize,
) -> Vec<SpanPtr> {
    let n_chunks = stats.len();
    let q = n_chunks / workers;
    let r = n_chunks % workers;
    let mut spans = Vec::with_capacity(workers);
    let mut rest = lanes.view();
    let mut rest_stats = stats;
    let mut base = 0usize;
    for w in 0..workers {
        let span_chunks = q + usize::from(w < r);
        let span_agents = (span_chunks * chunk).min(rest.len());
        let (head, tail) = rest.split_at_mut(span_agents);
        rest = tail;
        let (head_stats, tail_stats) = rest_stats.split_at_mut(span_chunks);
        rest_stats = tail_stats;
        spans.push(SpanPtr::carve(base, head, head_stats));
        base += span_agents;
    }
    spans
}

/// A spawned pool worker: wait for the next ticket, run the fixed span,
/// report done, repeat until shutdown (or until a pass panics).
fn pool_worker(ctrl: &PoolCtrl, idx: usize, span: SpanPtr, consts: &PassConstants<'_>) {
    use std::sync::atomic::Ordering;
    let mut last = 0u64;
    loop {
        // Spin-then-park for the next ticket. `unpark` tokens are sticky,
        // so a publish landing between the load and `park()` just makes
        // the park return immediately.
        let mut spins = 0u32;
        let ticket = loop {
            let s = ctrl.seq.load(Ordering::Acquire);
            if s != last {
                break s;
            }
            spins += 1;
            if spins < POOL_SPINS {
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        };
        if ticket == POOL_SHUTDOWN {
            break;
        }
        last = ticket;
        let t0 = ctrl.timed.then(std::time::Instant::now);
        let ctx = consts.ctx(ticket);
        let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            span.run(&ctx);
        }))
        .is_ok();
        if let Some(t0) = t0 {
            ctrl.slots[idx]
                .busy_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if !ok {
            ctrl.panicked.store(true, Ordering::Release);
        }
        // Done is stored even after a panic so the coordinator's barrier
        // wait always completes; the panic surfaces as a typed error.
        ctrl.slots[idx].done.store(ticket, Ordering::Release);
        ctrl.coordinator.unpark();
        if !ok {
            break;
        }
    }
}

/// Publishes the shutdown ticket when the coordinator leaves the epoch
/// loop — normally, via an error return, or unwinding — so parked
/// workers always exit and the scoped join never hangs.
struct PoolShutdown<'a> {
    ctrl: &'a PoolCtrl,
    threads: &'a [std::thread::Thread],
}

impl Drop for PoolShutdown<'_> {
    fn drop(&mut self) {
        self.ctrl
            .seq
            .store(POOL_SHUTDOWN, std::sync::atomic::Ordering::Release);
        for t in self.threads {
            t.unpark();
        }
    }
}

/// How one epoch's kernel pass executes: inline on the caller, or fanned
/// out through the persistent pool.
enum PassExec<'a> {
    /// One worker: run every chunk on the calling thread.
    Serial,
    /// The persistent pool: coordinator runs span 0, spawned workers run
    /// the rest, the sequence barrier hands lanes back and forth.
    Pool {
        ctrl: &'a PoolCtrl,
        /// The coordinator's own span.
        own: SpanPtr,
        /// Spawned worker handles, for per-pass unparks.
        threads: &'a [std::thread::Thread],
    },
}

impl PassExec<'_> {
    /// One kernel pass over all agents for `ctx`'s epoch. Chunk results
    /// land in `stats` by chunk index on either variant, so the
    /// reduction downstream never sees the difference.
    fn pass(
        &mut self,
        ctx: &EpochCtx<'_>,
        lanes: &mut Lanes,
        stats: &mut [ChunkStats],
        telemetry: &mut Telemetry,
        on: bool,
    ) -> crate::Result<()> {
        use std::sync::atomic::Ordering;
        match self {
            PassExec::Serial => {
                run_span(ctx, 0, &mut lanes.view(), stats);
                Ok(())
            }
            PassExec::Pool { ctrl, own, threads } => {
                let ticket = PoolCtrl::encode(
                    ctx.epoch,
                    ctx.mode == KernelMode::Fused,
                    ctx.rack_recovering,
                );
                ctrl.seq.store(ticket, Ordering::Release);
                for t in threads.iter() {
                    t.unpark();
                }
                // The coordinator runs its own span through the same
                // catch so a panicking decider surfaces as a typed error
                // on every span, not a process abort on span 0.
                let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                    own.run(ctx);
                }))
                .is_ok();
                if !ok {
                    ctrl.panicked.store(true, Ordering::Release);
                }
                // Barrier: wait until every worker finished this pass.
                let barrier_span = on.then(|| telemetry.spans.open("engine.epoch_barrier"));
                for slot in ctrl.slots.iter() {
                    let mut spins = 0u32;
                    while slot.done.load(Ordering::Acquire) != ticket {
                        spins += 1;
                        if spins < POOL_SPINS {
                            std::hint::spin_loop();
                        } else {
                            std::thread::park_timeout(std::time::Duration::from_micros(100));
                        }
                    }
                }
                if let Some(s) = barrier_span {
                    telemetry.spans.close(s);
                }
                if ctrl.panicked.load(Ordering::Acquire) {
                    return Err(SimError::WorkerPanicked {
                        what: "engine epoch kernel",
                    });
                }
                Ok(())
            }
        }
    }
}

/// The serial path's second pass: occupancy and unscaled task sums in the
/// exact chunk grouping the fused kernel uses (so both paths accumulate
/// floats identically), plus state transitions when the breaker did not
/// trip. Transition draws use the same counter coordinates the fused
/// kernel would, so the two paths stay bit-identical.
fn post_decide_pass(
    ctx: &EpochCtx<'_>,
    v: &mut LaneView<'_>,
    stats: &mut [ChunkStats],
    do_transitions: bool,
) {
    let epoch = ctx.epoch as u64;
    let track_stuck = ctx.plan.stuck.is_some();
    let mut lo = 0;
    for cs in stats.iter_mut() {
        let hi = (lo + ctx.chunk).min(v.len());
        // Preserve the churn partials this epoch already produced;
        // rebuild the decision-dependent ones.
        let mut st = *cs;
        st.n_sprinters = 0;
        st.occ_sprinting = 0;
        st.occ_cooling = 0;
        st.occ_idle = 0;
        st.sticks = 0;
        st.tasks = 0.0;
        for i in lo..hi {
            let agent = i as u64;
            if track_stuck {
                v.stick_flag[i] = false;
            }
            if v.crashed[i] {
                continue;
            }
            match v.states[i] {
                AgentState::Active => {
                    if v.sprinted[i] {
                        st.n_sprinters += 1;
                        st.occ_sprinting += 1;
                        st.tasks += v.phase[i];
                        if do_transitions {
                            if let Some(s) = ctx.plan.stuck {
                                if ctx.draws.stick.uniform(agent, epoch, 0) < s.stick_probability {
                                    v.stuck[i] = true;
                                    v.stick_flag[i] = true;
                                    st.sticks += 1;
                                }
                            }
                            v.states[i] = AgentState::Cooling;
                            let u = ctx.draws.cooling.uniform(agent, epoch, 0);
                            v.cool_until[i] = epoch + geometric_gap(u, ctx.cool_scale);
                        }
                    } else {
                        st.occ_idle += 1;
                        st.tasks += 1.0;
                    }
                }
                AgentState::Cooling => {
                    st.occ_cooling += 1;
                    st.tasks += 1.0;
                    if do_transitions {
                        if v.stuck[i] {
                            if let Some(s) = ctx.plan.stuck {
                                if ctx.draws.stick.uniform(agent, epoch, 0) >= s.p_stuck_stay {
                                    v.stuck[i] = false;
                                    let u = ctx.draws.cooling.uniform(agent, epoch, 0);
                                    v.cool_until[i] = epoch + geometric_gap(u, ctx.cool_scale);
                                }
                            }
                        } else if epoch >= v.cool_until[i] {
                            v.states[i] = AgentState::Active;
                        }
                    }
                }
                AgentState::Recovery => {
                    st.occ_idle += 1;
                    st.tasks += 1.0;
                }
            }
        }
        *cs = st;
        lo = hi;
    }
}

/// Run one simulation — the unified entry point.
///
/// `streams` supplies each agent's per-epoch sprint utility; `policy`
/// makes the sprint decisions; `telemetry` observes (pass
/// [`Telemetry::noop()`] for an unobserved run). Identical inputs and
/// seed produce bit-identical results.
///
/// With an enabled kit this emits [`Event::RunStart`]/[`Event::RunEnd`],
/// one [`Event::EpochTick`] per epoch, [`Event::BreakerTrip`] on trips,
/// [`Event::FaultInjected`] for every fault activation, and (when the
/// recorder wants them) per-agent [`Event::SprintDecision`]s; maintains
/// epoch-resolution series for sprinters, tasks, and trips plus
/// per-fault-kind counters in the kit's registry; and times each epoch
/// and decision sweep in the kit's span profile.
///
/// With a disabled kit emission is gated on [`Telemetry::enabled`] and
/// the float accumulation order is identical, so results stay
/// bit-identical with telemetry on or off.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] when the stream count does not
/// match the configured agent count.
pub fn run(
    config: &SimConfig,
    streams: &mut [PhasedUtility],
    policy: &mut dyn SprintPolicy,
    telemetry: &mut Telemetry,
) -> crate::Result<SimResult> {
    run_supervised(config, streams, policy, None, 1, telemetry)
}

/// [`run`] with the agent kernel fanned out over `jobs` scoped threads.
///
/// Randomness is counter-based and partial sums reduce in chunk order, so
/// the result — and any trace or report derived from it — is
/// byte-identical at every job count, including `jobs = 1`.
///
/// # Errors
///
/// As [`run`].
pub fn run_jobs(
    config: &SimConfig,
    streams: &mut [PhasedUtility],
    policy: &mut dyn SprintPolicy,
    jobs: usize,
    telemetry: &mut Telemetry,
) -> crate::Result<SimResult> {
    run_supervised(config, streams, policy, None, jobs, telemetry)
}

/// [`run`], abandoned cooperatively if the deadline passes.
///
/// The deadline is checked at epoch boundaries (every 64 epochs, so the
/// hot loop pays nothing measurable); a run that blows past it returns
/// [`SimError::DeadlineExceeded`] carrying the deadline's configured
/// limit. The check reads the wall clock but never feeds it into the
/// dynamics, so a run that *completes* is bit-identical to an undeadlined
/// run — the deadline decides only whether a result exists, which is
/// exactly the property sweep supervision needs to quarantine hung trials
/// without breaking byte-reproducibility of surviving ones.
///
/// # Errors
///
/// As [`run`], plus [`SimError::DeadlineExceeded`].
pub fn run_with_deadline(
    config: &SimConfig,
    streams: &mut [PhasedUtility],
    policy: &mut dyn SprintPolicy,
    deadline: Option<Deadline>,
    telemetry: &mut Telemetry,
) -> crate::Result<SimResult> {
    run_supervised(config, streams, policy, deadline, 1, telemetry)
}

/// [`run_guarded`] with only a deadline — kept as the ergonomic entry
/// point for sweep-style per-attempt supervision.
///
/// # Errors
///
/// As [`run`], plus [`SimError::DeadlineExceeded`] when the deadline
/// passes.
pub fn run_supervised(
    config: &SimConfig,
    streams: &mut [PhasedUtility],
    policy: &mut dyn SprintPolicy,
    deadline: Option<Deadline>,
    jobs: usize,
    telemetry: &mut Telemetry,
) -> crate::Result<SimResult> {
    run_guarded(
        config,
        streams,
        policy,
        &RunGuard::with_deadline(deadline),
        jobs,
        telemetry,
    )
}

/// The full-control entry point: optional per-attempt deadline, shared
/// cancel/job-deadline token, and intra-run parallelism. [`run`],
/// [`run_jobs`], [`run_with_deadline`], and [`run_supervised`] are thin
/// wrappers over this.
///
/// # Errors
///
/// As [`run`], plus [`SimError::DeadlineExceeded`] when a deadline
/// passes and [`SimError::Cancelled`] when the guard's token is
/// cancelled.
#[allow(clippy::too_many_lines)]
pub fn run_guarded(
    config: &SimConfig,
    streams: &mut [PhasedUtility],
    policy: &mut dyn SprintPolicy,
    guard: &RunGuard,
    jobs: usize,
    telemetry: &mut Telemetry,
) -> crate::Result<SimResult> {
    let deadline = guard.deadline;
    let n = config.game.n_agents() as usize;
    if streams.len() != n {
        return Err(SimError::InvalidParameter {
            name: "streams",
            value: streams.len() as f64,
            expected: "one utility stream per agent",
        });
    }
    if let UtilityEstimation::Noisy { relative_sd } = config.options.estimation {
        if relative_sd < 0.0 || !relative_sd.is_finite() {
            return Err(SimError::InvalidParameter {
                name: "relative_sd",
                value: relative_sd,
                expected: "a non-negative finite relative standard deviation",
            });
        }
    }
    let plan = config.options.faults;
    plan.validate()?;
    let draws = Draws::new(config);
    let trip_curve = TripCurve::from_config(&config.game);
    // What the breaker actually does, vs. the nominal curve every solver
    // assumes.
    let actual_curve = match plan.breaker_drift {
        Some(d) => trip_curve.with_band_shift(d.band_shift),
        None => trip_curve,
    };
    let mut sensor = match plan.sensor {
        Some(s) => CurrentSensor::new(s.relative_sd, s.dropout_probability).map_err(|_| {
            SimError::InvalidParameter {
                name: "sensor",
                value: s.relative_sd,
                expected: "a valid sensor fault specification",
            }
        })?,
        None => CurrentSensor::ideal(),
    };
    // Exit prob is 1 - p_cooling, so ln(1 - p_exit) = ln(p_cooling);
    // p_cooling = 0 gives scale -0.0 and one-epoch cooldowns, correctly.
    let cool_scale = config.game.p_cooling().ln().recip();
    let p_recover_exit = 1.0 - config.game.p_recovery();

    // Telemetry gates, hoisted out of the hot loop: with a disabled kit
    // every emission site below is one branch on `on`.
    let on = telemetry.enabled();
    let want_decisions = on && telemetry.wants(EventKind::SprintDecision);
    let want_fault_events = on && telemetry.wants(EventKind::FaultInjected);
    let want_trip_events = on && telemetry.wants(EventKind::BreakerTrip);
    let ids =
        on.then(|| EngineIds::register(&mut telemetry.registry, f64::from(config.game.n_agents())));
    if on {
        telemetry.emit(&Event::RunStart {
            agents: config.game.n_agents(),
            epochs: config.epochs,
            seed: config.seed,
            policy: policy.name().to_string(),
        });
    }

    // Per-agent decision events need the serial loop; otherwise a policy
    // with a static snapshot decides inside the parallel kernel.
    let decider = if want_decisions {
        None
    } else {
        policy.static_decider()
    };

    // All per-run heap allocation happens here; the epoch loop below is
    // allocation-free.
    let phases = PhaseKernel::new(streams);
    let mut lanes = Lanes::new(n);
    for (i, s) in streams.iter().enumerate() {
        lanes.phase[i] = s.phase_value();
        // First phase length, from the reserved setup coordinate.
        lanes.next_change[i] = phases.gap(i, phases.keys[i].uniform(PHASE_SETUP_EPOCH, 0));
    }
    let chunk = config.options.chunk_agents;
    if chunk == 0 {
        return Err(SimError::InvalidParameter {
            name: "chunk_agents",
            value: 0.0,
            expected: "at least one agent per chunk",
        });
    }
    let n_chunks = n.div_ceil(chunk);
    let mut chunk_stats = vec![ChunkStats::default(); n_chunks];

    // The persistent pool: sized once, spawned once, reused by every
    // epoch. One worker (or one chunk) means no pool at all.
    let workers = if n_chunks > 1 {
        jobs.clamp(1, n_chunks)
    } else {
        1
    };
    let (spans, ctrl) = if workers > 1 {
        (
            carve_spans(&mut lanes, &mut chunk_stats, workers, chunk),
            Some(PoolCtrl::new(workers - 1, on)),
        )
    } else {
        (Vec::new(), None)
    };
    let consts = PassConstants {
        plan: &plan,
        draws: &draws,
        phases: &phases,
        estimation: config.options.estimation,
        cool_scale,
        decider: decider.as_ref(),
        chunk,
    };
    let loop_t0 = (on && ctrl.is_some()).then(std::time::Instant::now);

    let mut rack_recovering = false;
    let mut faults = FaultMetrics::default();
    let mut sprinters_per_epoch = Vec::with_capacity(config.epochs);
    let mut occupancy = StateOccupancy::default();
    let mut total_tasks = 0.0f64;
    let mut trips = 0u32;

    // The epoch loop, parameterized by the pass executor so the serial
    // and pooled paths share every byte of the logic.
    let mut run_body = |exec: &mut PassExec<'_>| -> crate::Result<()> {
        for epoch in 0..config.epochs {
            if epoch & 63 == 0 {
                if let Some(d) = deadline {
                    if d.expired() {
                        return Err(SimError::DeadlineExceeded {
                            what: "simulation run",
                            limit_ms: d.limit_ms(),
                        });
                    }
                }
                if let Some(token) = &guard.cancel {
                    token.check("simulation run")?;
                }
            }
            let epoch_span = on.then(|| telemetry.spans.open("engine.epoch"));
            // Epoch throughput is reported as a delta so instrumentation never
            // reorders the float accumulation below.
            let tasks_before = total_tasks;

            let fused = decider.is_some() && !rack_recovering;
            let ctx = EpochCtx {
                epoch,
                plan: &plan,
                draws: &draws,
                phases: &phases,
                estimation: config.options.estimation,
                rack_recovering,
                cool_scale,
                decider: decider.as_ref(),
                mode: if fused {
                    KernelMode::Fused
                } else {
                    KernelMode::Advance
                },
                chunk,
            };
            let fused_decide_span = (on && fused).then(|| telemetry.spans.open("engine.decide"));
            exec.pass(&ctx, &mut lanes, &mut chunk_stats, telemetry, on)?;
            if let Some(s) = fused_decide_span {
                telemetry.spans.close(s);
            }

            // Reduce the churn partials (every mode produces them) and drain
            // the per-agent event flags on this thread, in agent order.
            let mut epoch_crashes = 0u32;
            let mut epoch_restarts = 0u32;
            let mut n_crashed = 0u64;
            for cs in &chunk_stats {
                epoch_crashes += cs.crashes;
                epoch_restarts += cs.restarts;
                n_crashed += u64::from(cs.n_crashed);
            }
            faults.crashes += u64::from(epoch_crashes);
            faults.restarts += u64::from(epoch_restarts);
            faults.crashed_agent_epochs += n_crashed;
            if plan.crash.is_some() {
                if want_fault_events {
                    for (i, flag) in lanes.churn_flag.iter().enumerate() {
                        let kind = match flag {
                            1 => FaultKind::Crash,
                            2 => FaultKind::Restart,
                            _ => continue,
                        };
                        telemetry.emit(&Event::FaultInjected {
                            epoch,
                            kind,
                            agent: Some(i as u32),
                        });
                    }
                }
                // Registry increments are batched per epoch: one add per
                // fault kind instead of one per affected agent.
                if let Some(ids) = &ids {
                    if epoch_crashes > 0 {
                        telemetry
                            .registry
                            .inc(ids.fault(FaultKind::Crash), u64::from(epoch_crashes));
                    }
                    if epoch_restarts > 0 {
                        telemetry
                            .registry
                            .inc(ids.fault(FaultKind::Restart), u64::from(epoch_restarts));
                    }
                }
            }

            if rack_recovering {
                occupancy.recovery += n as u64 - n_crashed;
                if config.options.recovery == RecoverySemantics::NormalMode {
                    total_tasks += (n as u64 - n_crashed) as f64;
                }
                sprinters_per_epoch.push(0);
                // Batteries recharge: geometric exit, then staggered wake-up.
                if draws.recovery.uniform(RACK, epoch as u64, 0) < p_recover_exit {
                    rack_recovering = false;
                    let stagger = config.options.stagger_epochs;
                    for (i, state) in lanes.states.iter_mut().enumerate() {
                        *state = AgentState::Active;
                        let slot = if stagger == 0 {
                            0
                        } else {
                            draws
                                .recovery
                                .index(i as u64, epoch as u64, 1, u64::from(stagger))
                                as usize
                        };
                        lanes.blocked_until[i] = epoch + 1 + slot;
                    }
                }
                if on {
                    let epoch_tasks = total_tasks - tasks_before;
                    telemetry.emit(&Event::EpochTick {
                        epoch,
                        sprinters: 0,
                        stuck: 0,
                        tripped: false,
                        recovering: true,
                        tasks: epoch_tasks,
                    });
                    if let Some(ids) = &ids {
                        telemetry.registry.inc(ids.epochs, 1);
                        telemetry.registry.push(ids.sprinter_series, 0.0);
                        telemetry.registry.push(ids.task_series, epoch_tasks);
                        telemetry.registry.push(ids.trip_series, 0.0);
                    }
                    if let Some(s) = epoch_span {
                        telemetry.spans.close(s);
                    }
                }
                policy.epoch_end(false);
                continue;
            }

            // Decisions. The fused kernel already made them; stateful
            // policies (and decision-traced runs) decide serially here on the
            // same counter draws.
            let mut n_sprinters = 0u32;
            let mut n_stuck = 0u32;
            if fused {
                let mut decisions = 0u64;
                for cs in &chunk_stats {
                    n_sprinters += cs.n_sprinters;
                    n_stuck += cs.n_stuck;
                    decisions += u64::from(cs.decisions);
                }
                faults.stuck_epochs += u64::from(n_stuck);
                policy.note_decisions(decisions);
            } else {
                let decide_span = on.then(|| telemetry.spans.open("engine.decide"));
                for i in 0..n {
                    lanes.sprinted[i] = false;
                    if lanes.crashed[i] {
                        continue;
                    }
                    match lanes.states[i] {
                        AgentState::Active => {
                            let estimate = match config.options.estimation {
                                UtilityEstimation::Oracle => lanes.phase[i],
                                UtilityEstimation::Noisy { relative_sd } => {
                                    let z = draws.estimate.normal(i as u64, epoch as u64, 0);
                                    (lanes.phase[i] * (1.0 + relative_sd * z)).max(0.0)
                                }
                            };
                            let may_sprint = epoch >= lanes.blocked_until[i];
                            let sprint = may_sprint && policy.wants_sprint(i, estimate);
                            if sprint {
                                lanes.sprinted[i] = true;
                                n_sprinters += 1;
                            }
                            if want_decisions {
                                telemetry.emit(&Event::SprintDecision {
                                    epoch,
                                    agent: i as u32,
                                    estimate,
                                    sprint,
                                });
                            }
                        }
                        AgentState::Cooling => {
                            if lanes.stuck[i] {
                                n_stuck += 1;
                                faults.stuck_epochs += 1;
                            }
                        }
                        AgentState::Recovery => {
                            lanes.states[i] = AgentState::Active;
                        }
                    }
                }
                if let Some(s) = decide_span {
                    telemetry.spans.close(s);
                }
            }
            sprinters_per_epoch.push(n_sprinters);

            // Breaker: Equation 11 at what the breaker *measures*. With no
            // faults, measured load is exactly the decided sprinter count;
            // stuck gates add phantom sprinter-equivalents, and the sensor
            // may distort or hold the reading.
            let realized = f64::from(n_sprinters + n_stuck);
            let measured = match plan.sensor {
                None => realized,
                Some(_) => {
                    let z = draws.sensor.normal(RACK, epoch as u64, 0);
                    let reading =
                        sensor.measure(realized, z, draws.sensor.uniform(RACK, epoch as u64, 2));
                    if reading.dropped {
                        faults.sensor_dropouts += 1;
                        if want_fault_events {
                            telemetry.emit(&Event::FaultInjected {
                                epoch,
                                kind: FaultKind::SensorDropout,
                                agent: None,
                            });
                        }
                        if let Some(ids) = &ids {
                            telemetry
                                .registry
                                .inc(ids.fault(FaultKind::SensorDropout), 1);
                        }
                    }
                    reading.value
                }
            };
            let p_trip = actual_curve.p_trip(measured);
            let tripped = p_trip > 0.0 && draws.trip.uniform(RACK, epoch as u64, 0) < p_trip;
            if tripped && want_trip_events {
                telemetry.emit(&Event::BreakerTrip {
                    epoch,
                    realized,
                    measured,
                    p_trip,
                });
            }

            // Divergence between the breaker's behavior and the nominal curve
            // the policies reason about.
            let nominal_p = trip_curve.p_trip(f64::from(n_sprinters));
            if tripped && nominal_p == 0.0 {
                faults.spurious_trips += 1;
                if want_fault_events {
                    telemetry.emit(&Event::FaultInjected {
                        epoch,
                        kind: FaultKind::SpuriousTrip,
                        agent: None,
                    });
                }
                if let Some(ids) = &ids {
                    telemetry
                        .registry
                        .inc(ids.fault(FaultKind::SpuriousTrip), 1);
                }
            }
            if !tripped && nominal_p >= 1.0 {
                faults.missed_trips += 1;
                if want_fault_events {
                    telemetry.emit(&Event::FaultInjected {
                        epoch,
                        kind: FaultKind::MissedTrip,
                        agent: None,
                    });
                }
                if let Some(ids) = &ids {
                    telemetry.registry.inc(ids.fault(FaultKind::MissedTrip), 1);
                }
            }

            // Throughput. Under the paper's UPS semantics sprints complete
            // even on a trip; the Truncated ablation scales the tripped
            // epoch's work by the pre-trip fraction. The fused kernel already
            // produced per-chunk unscaled sums; the serial path replays the
            // identical pass (transitions included) now that the trip is
            // known.
            if !fused {
                post_decide_pass(&ctx, &mut lanes.view(), &mut chunk_stats, !tripped);
            }
            let epoch_scale = match (tripped, config.options.interruption) {
                (true, TripInterruption::Truncated) => pre_trip_fraction(&config.game, realized),
                _ => 1.0,
            };
            let mut epoch_sticks = 0u32;
            for cs in &chunk_stats {
                total_tasks += cs.tasks * epoch_scale;
                occupancy.sprinting += u64::from(cs.occ_sprinting);
                occupancy.cooling += u64::from(cs.occ_cooling);
                occupancy.active_idle += u64::from(cs.occ_idle);
                epoch_sticks += cs.sticks;
            }

            if tripped {
                trips += 1;
                rack_recovering = true;
                lanes.states.fill(AgentState::Recovery);
                // The emergency cuts rack power: every stuck gate releases,
                // and the kernel's speculative stick outcomes are discarded.
                if plan.stuck.is_some() {
                    lanes.stuck.fill(false);
                }
            } else if plan.stuck.is_some() && epoch_sticks > 0 {
                if want_fault_events {
                    for (i, &flag) in lanes.stick_flag.iter().enumerate() {
                        if flag {
                            telemetry.emit(&Event::FaultInjected {
                                epoch,
                                kind: FaultKind::StuckGate,
                                agent: Some(i as u32),
                            });
                        }
                    }
                }
                if let Some(ids) = &ids {
                    telemetry
                        .registry
                        .inc(ids.fault(FaultKind::StuckGate), u64::from(epoch_sticks));
                }
            }
            if on {
                let epoch_tasks = total_tasks - tasks_before;
                telemetry.emit(&Event::EpochTick {
                    epoch,
                    sprinters: n_sprinters,
                    stuck: n_stuck,
                    tripped,
                    recovering: false,
                    tasks: epoch_tasks,
                });
                if let Some(ids) = &ids {
                    telemetry.registry.inc(ids.epochs, 1);
                    if tripped {
                        telemetry.registry.inc(ids.trips, 1);
                    }
                    telemetry
                        .registry
                        .push(ids.sprinter_series, f64::from(n_sprinters));
                    telemetry.registry.push(ids.task_series, epoch_tasks);
                    telemetry
                        .registry
                        .push(ids.trip_series, if tripped { 1.0 } else { 0.0 });
                    telemetry.registry.observe(ids.sprinter_hist, realized);
                }
                if let Some(s) = epoch_span {
                    telemetry.spans.close(s);
                }
            }
            policy.epoch_end(tripped);
        }
        Ok(())
    };

    let outcome = match &ctrl {
        None => run_body(&mut PassExec::Serial),
        Some(ctrl) => std::thread::scope(|scope| {
            let mut threads = Vec::with_capacity(spans.len().saturating_sub(1));
            for (idx, span) in spans.iter().copied().enumerate().skip(1) {
                let consts = &consts;
                let handle = scope.spawn(move || pool_worker(ctrl, idx - 1, span, consts));
                threads.push(handle.thread().clone());
            }
            // Shutdown fires on every exit path — completion, cancel or
            // deadline error, panic — before the scope joins.
            let _shutdown = PoolShutdown {
                ctrl,
                threads: &threads,
            };
            run_body(&mut PassExec::Pool {
                ctrl,
                own: spans[0],
                threads: &threads,
            })
        }),
    };
    outcome?;

    // The streams observe their own evolution: write the final phase
    // back so callers holding the streams see them advanced by the run.
    for (s, &p) in streams.iter_mut().zip(lanes.phase.iter()) {
        s.sync_phase(p);
    }

    let result = SimResult {
        n_agents: config.game.n_agents(),
        epochs: config.epochs,
        sprinters_per_epoch,
        total_tasks,
        trips,
        occupancy,
        faults,
    };
    if on {
        telemetry.emit(&Event::RunEnd { total_tasks, trips });
        policy.export_metrics(&mut telemetry.registry);
        let g = telemetry.registry.gauge("engine.tasks_per_agent_epoch");
        telemetry.registry.set(g, result.tasks_per_agent_epoch());
        let g = telemetry.registry.gauge("engine.trip_rate");
        telemetry
            .registry
            .set(g, f64::from(trips) / config.epochs as f64);
        if let Some(ctrl) = &ctrl {
            // Spawned-worker busy time over the loop's wall time: how
            // much of the pool's capacity the kernel actually used.
            let wall = loop_t0.map_or(0.0, |t| t.elapsed().as_secs_f64());
            let busy: u64 = ctrl
                .slots
                .iter()
                .map(|s| s.busy_nanos.load(std::sync::atomic::Ordering::Relaxed))
                .sum();
            let denom = wall * ctrl.slots.len() as f64;
            let g = telemetry.registry.gauge("engine.pool.workers");
            telemetry.registry.set(g, (ctrl.slots.len() + 1) as f64);
            let g = telemetry.registry.gauge("engine.pool.utilization");
            let util = if denom > 0.0 {
                (busy as f64 / 1e9 / denom).min(1.0)
            } else {
                0.0
            };
            telemetry.registry.set(g, util);
        }
        telemetry.export_recorder_metrics();
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{Greedy, ThresholdPolicy};
    use sprint_game::ThresholdStrategy;
    use sprint_workloads::generator::Population;
    use sprint_workloads::Benchmark;

    fn small_game(n: u32) -> GameConfig {
        GameConfig::builder()
            .n_agents(n)
            .n_min(f64::from(n) * 0.25)
            .n_max(f64::from(n) * 0.75)
            .build()
            .unwrap()
    }

    fn streams(b: Benchmark, n: u32, seed: u64) -> Vec<PhasedUtility> {
        Population::homogeneous(b, n as usize)
            .unwrap()
            .spawn_streams(seed)
            .unwrap()
    }

    #[test]
    fn validates_inputs() {
        let game = small_game(10);
        assert!(SimConfig::new(game, 0, 1).is_err());
        let cfg = SimConfig::new(game, 10, 1).unwrap();
        let mut too_few = streams(Benchmark::Svm, 5, 1);
        assert!(run(
            &cfg,
            &mut too_few,
            &mut Greedy::new(),
            &mut Telemetry::noop()
        )
        .is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SimConfig::new(small_game(50), 200, 42).unwrap();
        let r1 = run(
            &cfg,
            &mut streams(Benchmark::DecisionTree, 50, 9),
            &mut Greedy::new(),
            &mut Telemetry::noop(),
        )
        .unwrap();
        let r2 = run(
            &cfg,
            &mut streams(Benchmark::DecisionTree, 50, 9),
            &mut Greedy::new(),
            &mut Telemetry::noop(),
        )
        .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn greedy_oscillates_between_sprints_and_recovery() {
        // Figure 6 top panel: full-system sprints, emergencies, idle
        // recovery.
        let cfg = SimConfig::new(small_game(100), 500, 3).unwrap();
        let mut s = streams(Benchmark::DecisionTree, 100, 3);
        let r = run(&cfg, &mut s, &mut Greedy::new(), &mut Telemetry::noop()).unwrap();
        assert!(r.trips() > 10, "greedy must trip repeatedly: {}", r.trips());
        let f = r.occupancy().fractions();
        assert!(f[2] > 0.4, "greedy spends >40% in recovery, got {}", f[2]);
        // First epoch: everyone sprints at once.
        assert_eq!(r.sprinters_per_epoch()[0], 100);
    }

    #[test]
    fn never_sprinting_never_trips() {
        let cfg = SimConfig::new(small_game(100), 300, 4).unwrap();
        let mut s = streams(Benchmark::PageRank, 100, 4);
        let never = ThresholdStrategy::new(1e9).unwrap();
        let mut policy = ThresholdPolicy::uniform("never", never, 100).unwrap();
        let r = run(&cfg, &mut s, &mut policy, &mut Telemetry::noop()).unwrap();
        assert_eq!(r.trips(), 0);
        assert!((r.tasks_per_agent_epoch() - 1.0).abs() < 1e-12);
        assert_eq!(r.occupancy().sprinting, 0);
        assert_eq!(r.occupancy().recovery, 0);
    }

    #[test]
    fn below_band_sprinting_is_safe_and_profitable() {
        // A high threshold keeps sprinters below N_min: no trips, and
        // throughput above 1.
        let cfg = SimConfig::new(small_game(100), 500, 5).unwrap();
        let mut s = streams(Benchmark::PageRank, 100, 5);
        let mut policy =
            ThresholdPolicy::uniform("safe", ThresholdStrategy::new(13.0).unwrap(), 100).unwrap();
        let r = run(&cfg, &mut s, &mut policy, &mut Telemetry::noop()).unwrap();
        // Expected sprinters ≈ 8 « N_min = 25; finite-N phase correlation
        // can brush the band at most rarely.
        assert!(r.trips() <= 1, "trips = {}", r.trips());
        assert!(r.tasks_per_agent_epoch() > 1.2);
        assert!(r.mean_sprinters() < 25.0);
    }

    #[test]
    fn occupancy_accounts_every_agent_epoch() {
        let cfg = SimConfig::new(small_game(60), 400, 6).unwrap();
        let mut s = streams(Benchmark::Kmeans, 60, 6);
        let r = run(&cfg, &mut s, &mut Greedy::new(), &mut Telemetry::noop()).unwrap();
        assert_eq!(r.occupancy().total(), 60 * 400);
    }

    #[test]
    fn recovery_ablation_raises_throughput() {
        let game = small_game(100);
        let mut idle_s = streams(Benchmark::DecisionTree, 100, 7);
        let mut norm_s = streams(Benchmark::DecisionTree, 100, 7);
        let idle = run(
            &SimConfig::new(game, 400, 7).unwrap(),
            &mut idle_s,
            &mut Greedy::new(),
            &mut Telemetry::noop(),
        )
        .unwrap();
        let normal = run(
            &SimConfig::new(game, 400, 7)
                .unwrap()
                .with_recovery(RecoverySemantics::NormalMode),
            &mut norm_s,
            &mut Greedy::new(),
            &mut Telemetry::noop(),
        )
        .unwrap();
        assert!(normal.tasks_per_agent_epoch() > idle.tasks_per_agent_epoch());
    }

    #[test]
    fn stagger_blocks_immediate_post_recovery_sprints() {
        // With a huge stagger, agents wake but cannot sprint within the
        // horizon, so at most one trip can ever occur.
        let game = small_game(50);
        let cfg = SimConfig::new(game, 200, 8).unwrap().with_stagger(10_000);
        let mut s = streams(Benchmark::LinearRegression, 50, 8);
        let r = run(&cfg, &mut s, &mut Greedy::new(), &mut Telemetry::noop()).unwrap();
        assert!(r.trips() <= 1, "trips = {}", r.trips());
    }

    #[test]
    fn noisy_estimation_validates_and_degrades_selectivity() {
        let game = small_game(100);
        // Negative noise is rejected.
        let bad = SimConfig::new(game, 10, 1)
            .unwrap()
            .with_estimation(UtilityEstimation::Noisy { relative_sd: -0.5 });
        let mut s = streams(Benchmark::PageRank, 100, 1);
        let mut p =
            ThresholdPolicy::uniform("t", ThresholdStrategy::new(5.0).unwrap(), 100).unwrap();
        assert!(run(&bad, &mut s, &mut p, &mut Telemetry::noop()).is_err());

        // With huge noise the threshold loses selectivity: sprinted
        // epochs no longer concentrate on high utilities, so throughput
        // falls versus the oracle.
        let run = |est: UtilityEstimation, seed: u64| {
            let cfg = SimConfig::new(game, 600, seed)
                .unwrap()
                .with_estimation(est);
            let mut s = streams(Benchmark::PageRank, 100, seed);
            let mut p =
                ThresholdPolicy::uniform("t", ThresholdStrategy::new(5.27).unwrap(), 100).unwrap();
            run(&cfg, &mut s, &mut p, &mut Telemetry::noop())
                .unwrap()
                .tasks_per_agent_epoch()
        };
        let oracle = run(UtilityEstimation::Oracle, 5);
        let noisy = run(UtilityEstimation::Noisy { relative_sd: 2.0 }, 5);
        assert!(
            noisy < oracle,
            "noisy {noisy} should fall below oracle {oracle}"
        );
    }

    #[test]
    fn truncated_interruption_only_reduces_tripped_epochs() {
        let game = small_game(100);
        let run = |mode: TripInterruption| {
            let cfg = SimConfig::new(game, 500, 3)
                .unwrap()
                .with_interruption(mode);
            let mut s = streams(Benchmark::DecisionTree, 100, 3);
            run(&cfg, &mut s, &mut Greedy::new(), &mut Telemetry::noop()).unwrap()
        };
        let ups = run(TripInterruption::CompleteOnUps);
        let truncated = run(TripInterruption::Truncated);
        // Same seed, same decisions: identical dynamics, less credit.
        assert_eq!(ups.sprinters_per_epoch(), truncated.sprinters_per_epoch());
        assert_eq!(ups.trips(), truncated.trips());
        assert!(truncated.total_tasks() < ups.total_tasks());
    }

    #[test]
    fn pre_trip_fraction_shape() {
        let game = small_game(1000);
        // Below the band: full epoch.
        assert_eq!(pre_trip_fraction(&game, 100.0), 1.0);
        // Monotone non-increasing in overload severity, bounded.
        let mut last = 1.0;
        for n in (250..=2000).step_by(125) {
            let f = pre_trip_fraction(&game, f64::from(n));
            assert!(f <= last + 1e-12, "fraction must not increase");
            assert!((0.05..=1.0).contains(&f));
            last = f;
        }
        // At N_max (m = 1.75): t = 161.56 / (1.75² − 1) ≈ 78 s of 150.
        let at_max = pre_trip_fraction(&game, 750.0);
        assert!(
            (at_max - 0.522).abs() < 0.01,
            "fraction at N_max = {at_max}"
        );
    }

    #[test]
    fn sprint_utilities_are_collected() {
        // One agent, always sprinting, never tripping (N_min above 1):
        // throughput equals the mean utility (alternating with cooling).
        let game = GameConfig::builder()
            .n_agents(1)
            .n_min(5.0)
            .n_max(6.0)
            .p_cooling(0.0)
            .build()
            .unwrap();
        let cfg = SimConfig::new(game, 1000, 9).unwrap();
        let mut s = streams(Benchmark::LinearRegression, 1, 9);
        let r = run(&cfg, &mut s, &mut Greedy::new(), &mut Telemetry::noop()).unwrap();
        // Alternates sprint (mean 4.0) and cooling (1.0): ≈ 2.5.
        let tpe = r.tasks_per_agent_epoch();
        assert!((2.2..=2.8).contains(&tpe), "tasks/epoch = {tpe}");
        assert_eq!(r.trips(), 0);
    }

    #[test]
    fn deadline_error_reports_the_configured_limit() {
        let cfg = SimConfig::new(small_game(50), 100_000, 1).unwrap();
        let mut s = streams(Benchmark::PageRank, 50, 1);
        let mut policy = Greedy::new();
        // Already-expired deadline with a nonzero configured limit: the
        // error must echo the limit, not 0.
        let d = Deadline::new(std::time::Instant::now(), 40);
        let err = run_with_deadline(&cfg, &mut s, &mut policy, Some(d), &mut Telemetry::noop())
            .unwrap_err();
        match err {
            SimError::DeadlineExceeded { limit_ms, .. } => assert_eq!(limit_ms, 40),
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        assert!(err.to_string().contains("40 ms"), "display: {err}");
    }

    /// A threshold rule that hides its static snapshot, forcing the
    /// serial decide + post-pass path the stateful policies use.
    struct DynamicThreshold(Vec<f64>);

    impl SprintPolicy for DynamicThreshold {
        fn name(&self) -> &'static str {
            "dynamic-threshold"
        }
        fn wants_sprint(&mut self, agent: usize, utility: f64) -> bool {
            utility > self.0[agent]
        }
    }

    #[test]
    fn fused_kernel_matches_the_serial_decide_path_bitwise() {
        // Same rule, two execution paths: the fused kernel (static
        // decider) and the serial decide + post pass must agree bit for
        // bit, including under faults and noisy estimation.
        let game = small_game(300);
        let cfg = SimConfig::new(game, 400, 21)
            .unwrap()
            .with_estimation(UtilityEstimation::Noisy { relative_sd: 0.3 })
            .with_faults(FaultPlan::composite(99));
        let thresholds = vec![5.0; 300];
        let mut fused_policy = ThresholdPolicy::new("E-T", thresholds.clone()).unwrap();
        let fused = run(
            &cfg,
            &mut streams(Benchmark::PageRank, 300, 21),
            &mut fused_policy,
            &mut Telemetry::noop(),
        )
        .unwrap();
        let serial = run(
            &cfg,
            &mut streams(Benchmark::PageRank, 300, 21),
            &mut DynamicThreshold(thresholds),
            &mut Telemetry::noop(),
        )
        .unwrap();
        assert_eq!(fused, serial);
        assert_eq!(
            fused.total_tasks().to_bits(),
            serial.total_tasks().to_bits()
        );
    }

    #[test]
    fn results_are_byte_identical_at_any_job_count() {
        // More agents than one chunk so multiple chunks actually move
        // between workers; faults + noise exercise every draw site.
        let game = small_game(2500);
        let cfg = SimConfig::new(game, 120, 77)
            .unwrap()
            .with_estimation(UtilityEstimation::Noisy { relative_sd: 0.2 })
            .with_faults(FaultPlan::composite(5));
        let run_with = |jobs: usize| {
            let mut s = streams(Benchmark::DecisionTree, 2500, 77);
            let mut p = ThresholdPolicy::uniform("E-T", ThresholdStrategy::new(2.0).unwrap(), 2500)
                .unwrap();
            run_jobs(&cfg, &mut s, &mut p, jobs, &mut Telemetry::noop()).unwrap()
        };
        let serial = run_with(1);
        for jobs in [2, 3, 4, 8] {
            let parallel = run_with(jobs);
            assert_eq!(serial, parallel, "jobs = {jobs}");
            assert_eq!(
                serial.total_tasks().to_bits(),
                parallel.total_tasks().to_bits(),
                "jobs = {jobs}"
            );
        }
    }

    #[test]
    fn greedy_decision_count_matches_across_paths_and_jobs() {
        // The fused kernel reports decisions through `note_decisions`;
        // the count must equal the serial path's `wants_sprint` calls.
        let cfg = SimConfig::new(small_game(1500), 150, 13).unwrap();
        let count_with = |jobs: usize| {
            let mut s = streams(Benchmark::Kmeans, 1500, 13);
            let mut g = Greedy::new();
            run_jobs(&cfg, &mut s, &mut g, jobs, &mut Telemetry::noop()).unwrap();
            g.decisions()
        };
        let serial = count_with(1);
        assert!(serial > 0);
        assert_eq!(serial, count_with(4));
    }

    #[test]
    fn chunk_size_is_part_of_the_spec_and_jobs_invariant() {
        // At every chunk size, results are byte-identical across job
        // counts (the pool partition follows the chunk grid), and the
        // fused kernel still matches the serial decide path bitwise.
        let game = small_game(2500);
        for chunk in [256usize, 1000, 4096] {
            let cfg = SimConfig::new(game, 120, 31)
                .unwrap()
                .with_faults(FaultPlan::composite(7))
                .with_chunk_agents(chunk);
            let run_with = |jobs: usize| {
                let mut s = streams(Benchmark::DecisionTree, 2500, 31);
                let mut p =
                    ThresholdPolicy::uniform("E-T", ThresholdStrategy::new(2.0).unwrap(), 2500)
                        .unwrap();
                run_jobs(&cfg, &mut s, &mut p, jobs, &mut Telemetry::noop()).unwrap()
            };
            let serial = run_with(1);
            for jobs in [2, 3, 8] {
                let parallel = run_with(jobs);
                assert_eq!(serial, parallel, "chunk = {chunk}, jobs = {jobs}");
                assert_eq!(
                    serial.total_tasks().to_bits(),
                    parallel.total_tasks().to_bits(),
                    "chunk = {chunk}, jobs = {jobs}"
                );
            }
            // Fused vs serial-decide bitwise equality at this chunk size.
            let thresholds = vec![2.0; 2500];
            let mut s = streams(Benchmark::DecisionTree, 2500, 31);
            let dynamic = run_jobs(
                &cfg,
                &mut s,
                &mut DynamicThreshold(thresholds),
                4,
                &mut Telemetry::noop(),
            )
            .unwrap();
            assert_eq!(
                serial.total_tasks().to_bits(),
                dynamic.total_tasks().to_bits(),
                "chunk = {chunk}: fused vs serial decide"
            );
        }
    }

    #[test]
    fn zero_chunk_agents_is_rejected() {
        let cfg = SimConfig::new(small_game(50), 10, 1)
            .unwrap()
            .with_chunk_agents(0);
        let mut s = streams(Benchmark::Svm, 50, 1);
        let err = run(&cfg, &mut s, &mut Greedy::new(), &mut Telemetry::noop()).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidParameter {
                name: "chunk_agents",
                ..
            }
        ));
    }

    #[test]
    fn run_options_serde_omits_default_chunk_and_defaults_when_absent() {
        // Specs written before `chunk_agents` existed keep their exact
        // bytes (field omitted at its default) and still parse (field
        // defaults when absent).
        let default = RunOptions::default();
        let serde::Value::Object(obj) = serde::Serialize::to_value(&default) else {
            panic!("RunOptions must serialize to an object");
        };
        assert!(
            serde::__field(&obj, "chunk_agents").is_none(),
            "default chunk must be omitted on the wire"
        );
        let back: RunOptions = serde::Deserialize::from_value(&serde::Value::Object(obj)).unwrap();
        assert_eq!(back, default);

        let tuned = RunOptions {
            chunk_agents: 512,
            ..RunOptions::default()
        };
        let value = serde::Serialize::to_value(&tuned);
        let serde::Value::Object(obj) = &value else {
            panic!("RunOptions must serialize to an object");
        };
        assert!(serde::__field(obj, "chunk_agents").is_some());
        let back: RunOptions = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, tuned);
    }

    #[test]
    fn cancel_before_start_shuts_the_pool_down_cleanly() {
        // A pre-cancelled token must surface as a typed error without
        // deadlocking the pool's scoped join (the shutdown guard runs on
        // the error path before the scope joins parked workers).
        let cfg = SimConfig::new(small_game(5000), 1000, 3).unwrap();
        let mut s = streams(Benchmark::PageRank, 5000, 3);
        let token = CancelToken::new();
        token.cancel();
        let guard = RunGuard {
            deadline: None,
            cancel: Some(token),
        };
        let err = run_guarded(
            &cfg,
            &mut s,
            &mut Greedy::new(),
            &guard,
            4,
            &mut Telemetry::noop(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Cancelled { .. }), "got {err}");
    }

    #[test]
    fn mid_run_cancel_is_honored_at_checkpoints_with_the_pool_live() {
        // Cancel from another thread while the pooled epoch loop runs:
        // the run must stop at a cooperative checkpoint with the typed
        // error, and the pool must join (the test completing at all is
        // the no-deadlock assertion).
        let cfg = SimConfig::new(small_game(5000), 200_000, 9).unwrap();
        let mut s = streams(Benchmark::DecisionTree, 5000, 9);
        let token = CancelToken::new();
        let canceller = token.clone();
        let hand = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            canceller.cancel();
        });
        let guard = RunGuard {
            deadline: None,
            cancel: Some(token),
        };
        let out = run_guarded(
            &cfg,
            &mut s,
            &mut Greedy::new(),
            &guard,
            4,
            &mut Telemetry::noop(),
        );
        hand.join().unwrap();
        // On a fast machine the run may legitimately finish first; when
        // it does not, the error must be the typed cancellation.
        if let Err(err) = out {
            assert!(matches!(err, SimError::Cancelled { .. }), "got {err}");
        }
    }

    /// A policy whose static decider is mis-sized: any span that decides
    /// with it panics on the out-of-bounds threshold index.
    struct BrokenDecider;

    impl SprintPolicy for BrokenDecider {
        fn name(&self) -> &'static str {
            "broken-decider"
        }
        fn wants_sprint(&mut self, _agent: usize, _utility: f64) -> bool {
            true
        }
        fn static_decider(&self) -> Option<StaticDecider> {
            Some(StaticDecider::PerAgent(vec![0.0; 8]))
        }
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error_without_deadlock() {
        // Every span (coordinator's own included) panics on the broken
        // decider; the pool must convert it to `WorkerPanicked` and join
        // instead of deadlocking at the barrier or aborting the process.
        let cfg = SimConfig::new(small_game(5000), 100, 11).unwrap();
        for jobs in [2usize, 4, 8] {
            let mut s = streams(Benchmark::Kmeans, 5000, 11);
            let err = run_jobs(
                &cfg,
                &mut s,
                &mut BrokenDecider,
                jobs,
                &mut Telemetry::noop(),
            )
            .unwrap_err();
            assert!(
                matches!(err, SimError::WorkerPanicked { .. }),
                "jobs = {jobs}: got {err}"
            );
        }
    }

    #[test]
    fn pool_exports_utilization_gauges_when_observed() {
        let cfg = SimConfig::new(small_game(5000), 200, 17).unwrap();
        let mut s = streams(Benchmark::PageRank, 5000, 17);
        let mut telemetry = Telemetry::in_memory();
        run_jobs(&cfg, &mut s, &mut Greedy::new(), 4, &mut telemetry).unwrap();
        let workers = telemetry
            .registry
            .gauge_value("engine.pool.workers")
            .expect("pooled observed runs export engine.pool.workers");
        assert!(workers >= 2.0, "workers = {workers}");
        let util = telemetry
            .registry
            .gauge_value("engine.pool.utilization")
            .expect("pooled observed runs export engine.pool.utilization");
        assert!((0.0..=1.0).contains(&util), "utilization = {util}");
    }
}
