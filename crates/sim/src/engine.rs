//! The epoch-driven rack simulation engine.
//!
//! Models the full system dynamics of §3 on concrete agents:
//!
//! - Active agents consult the policy; sprinters earn their epoch utility
//!   and enter chip cooling (geometric duration, persistence `p_c`).
//! - The breaker trips with the Equation-11 probability evaluated at the
//!   *realized* sprinter count; a trip sends the whole rack into recovery
//!   (geometric duration, persistence `p_r`). Sprints in progress complete
//!   on UPS power, so the tripping epoch's sprint utility still counts
//!   (§2.2).
//! - Recovery epochs produce no tasks by default — the paper's "idle
//!   recovery harms performance" (§6.1). [`RecoverySemantics::NormalMode`]
//!   is the ablation in which servers compute in normal mode during
//!   recharge.
//! - Wake-up after recovery is staggered over a configurable number of
//!   epochs to avoid dI/dt problems (§2.2): woken agents compute normally
//!   but may not sprint until their slot arrives.
//! - An optional [`FaultPlan`] injects crash churn, stuck sprinters,
//!   sensor noise, and breaker drift ([`crate::faults`]). Fault
//!   randomness lives on a dedicated stream, so an empty plan reproduces
//!   fault-free runs bit for bit, and the engine never panics under any
//!   plan — degradation is measured, not crashed on.

use rand::rngs::StdRng;
use rand::Rng;

use sprint_game::trip::TripCurve;
use sprint_game::{AgentState, GameConfig};
use sprint_power::pcm::CurrentSensor;
use sprint_stats::rng::seeded_rng;
use sprint_telemetry::{
    CounterId, Event, EventKind, FaultKind, HistogramId, Registry, SeriesId, Telemetry,
};
use sprint_workloads::phases::PhasedUtility;

use crate::faults::{FaultMetrics, FaultPlan};
use crate::metrics::{SimResult, StateOccupancy};
use crate::policy::SprintPolicy;
use crate::SimError;

/// What servers produce while the rack recovers.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum RecoverySemantics {
    /// Paper semantics: recovery is idle, producing nothing.
    #[default]
    Idle,
    /// Ablation: servers compute in normal mode during recharge.
    NormalMode,
}

/// What happens to a sprint when the breaker trips mid-epoch.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize, Default)]
pub enum TripInterruption {
    /// Paper semantics (§2.2): "the rack augments power delivery with
    /// batteries to complete sprints in progress" — tripped-epoch sprints
    /// earn their full utility.
    #[default]
    CompleteOnUps,
    /// Ablation: the breaker's I²t element trips partway through the
    /// epoch (heavier overloads trip sooner), truncating every agent's
    /// work to the pre-trip fraction of the epoch.
    Truncated,
}

/// How agents estimate an epoch's sprint utility before deciding
/// (paper §4.4, "Online Strategy": brief profiling or heuristics).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize, Default)]
pub enum UtilityEstimation {
    /// Perfect estimates: decisions see the epoch's true utility.
    #[default]
    Oracle,
    /// Noisy estimates: decisions see the true utility times a
    /// log-normal-ish multiplicative error with the given relative
    /// standard deviation. Realized throughput still uses true utility.
    Noisy {
        /// Relative standard deviation of the estimation error.
        relative_sd: f64,
    },
}

/// Everything about a run that is not the game, horizon, or seed: the
/// ablation knobs and the fault plan, bundled so [`SimConfig`],
/// [`crate::scenario::Scenario`], and sweep specs carry one options value
/// instead of re-plumbing five setters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunOptions {
    /// What servers produce while the rack recovers.
    pub recovery: RecoverySemantics,
    /// What happens to sprints when the breaker trips mid-epoch.
    pub interruption: TripInterruption,
    /// How agents estimate utility before deciding.
    pub estimation: UtilityEstimation,
    /// The fault-injection plan ([`FaultPlan::none`] for clean runs).
    pub faults: FaultPlan,
    /// Post-recovery wake-up stagger window (paper: two epochs).
    pub stagger_epochs: u32,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            recovery: RecoverySemantics::Idle,
            interruption: TripInterruption::CompleteOnUps,
            estimation: UtilityEstimation::Oracle,
            faults: FaultPlan::none(),
            stagger_epochs: 2,
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    game: GameConfig,
    epochs: usize,
    seed: u64,
    options: RunOptions,
}

impl SimConfig {
    /// Create a configuration for `epochs` epochs of `game` with a master
    /// seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `epochs` is 0.
    pub fn new(game: GameConfig, epochs: usize, seed: u64) -> crate::Result<Self> {
        if epochs == 0 {
            return Err(SimError::InvalidParameter {
                name: "epochs",
                value: 0.0,
                expected: "at least one epoch",
            });
        }
        Ok(SimConfig {
            game,
            epochs,
            seed,
            options: RunOptions::default(),
        })
    }

    /// Replace the whole options bundle at once (sweep specs carry one
    /// [`RunOptions`] instead of chaining the five setters below).
    #[must_use]
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// The run options.
    #[must_use]
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Override the recovery semantics (ablation).
    #[must_use]
    pub fn with_recovery(mut self, semantics: RecoverySemantics) -> Self {
        self.options.recovery = semantics;
        self
    }

    /// Override the post-recovery stagger window (paper: two epochs).
    #[must_use]
    pub fn with_stagger(mut self, epochs: u32) -> Self {
        self.options.stagger_epochs = epochs;
        self
    }

    /// Override the trip-interruption semantics (ablation).
    #[must_use]
    pub fn with_interruption(mut self, interruption: TripInterruption) -> Self {
        self.options.interruption = interruption;
        self
    }

    /// Override the utility-estimation model (ablation).
    #[must_use]
    pub fn with_estimation(mut self, estimation: UtilityEstimation) -> Self {
        self.options.estimation = estimation;
        self
    }

    /// Attach a fault-injection plan (robustness experiments).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.options.faults = faults;
        self
    }

    /// The fault-injection plan.
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.options.faults
    }

    /// The game parameters.
    #[must_use]
    pub fn game(&self) -> &GameConfig {
        &self.game
    }

    /// Simulated epochs.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.epochs
    }
}

/// Fraction of the epoch elapsed before the breaker's thermal element
/// trips, from the center of the UL489 I²t band. Mild overloads (near
/// `N_min`) trip late; heavy overloads (beyond `N_max`) trip early.
fn pre_trip_fraction(game: &GameConfig, n_sprinters: f64) -> f64 {
    // Geometric mean of the band's I²t constants (see `sprint_power`):
    // k_fast = 84.375, k_slow = 309.375.
    const K_CENTER: f64 = 161.56;
    const EPOCH_REFERENCE_S: f64 = 150.0;
    let severity = (n_sprinters - game.n_min()) / (game.n_max() - game.n_min());
    if severity <= 0.0 {
        return 1.0;
    }
    // Current multiple interpolated through the band edges 1.25x/1.75x.
    let multiple = 1.25 + 0.5 * severity;
    let trip_s = K_CENTER / (multiple * multiple - 1.0);
    (trip_s / EPOCH_REFERENCE_S).clamp(0.05, 1.0)
}

/// Registry handles for the engine's per-epoch metric updates, registered
/// once before the hot loop so each update is a dense-vector index.
struct EngineIds {
    epochs: CounterId,
    trips: CounterId,
    sprinter_series: SeriesId,
    task_series: SeriesId,
    trip_series: SeriesId,
    sprinter_hist: HistogramId,
    faults: [CounterId; 10],
}

impl EngineIds {
    fn register(reg: &mut Registry, n_agents: f64) -> Self {
        let fault_ids = FaultKind::ALL.map(|kind| reg.counter(&format!("faults.{}", kind.name())));
        // Sprinter-load buckets as fractions of the rack.
        let bounds: Vec<f64> = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
            .iter()
            .map(|f| f * n_agents)
            .collect();
        EngineIds {
            epochs: reg.counter("engine.epochs"),
            trips: reg.counter("engine.trips"),
            sprinter_series: reg.series("engine.sprinters"),
            task_series: reg.series("engine.tasks"),
            trip_series: reg.series("engine.tripped"),
            sprinter_hist: reg.histogram("engine.sprinter_load", &bounds),
            faults: fault_ids,
        }
    }

    fn fault(&self, kind: FaultKind) -> CounterId {
        self.faults[kind as usize]
    }
}

/// Run one simulation — the unified entry point.
///
/// `streams` supplies each agent's per-epoch sprint utility; `policy`
/// makes the sprint decisions; `telemetry` observes (pass
/// [`Telemetry::noop()`] for an unobserved run). Identical inputs and
/// seed produce bit-identical results.
///
/// With an enabled kit this emits [`Event::RunStart`]/[`Event::RunEnd`],
/// one [`Event::EpochTick`] per epoch, [`Event::BreakerTrip`] on trips,
/// [`Event::FaultInjected`] for every fault activation, and (when the
/// recorder wants them) per-agent [`Event::SprintDecision`]s; maintains
/// epoch-resolution series for sprinters, tasks, and trips plus
/// per-fault-kind counters in the kit's registry; and times each epoch
/// and decision sweep in the kit's span profile.
///
/// With a disabled kit emission is gated on [`Telemetry::enabled`], the
/// RNG streams are untouched, and the float accumulation order is
/// identical, so results stay bit-identical with telemetry on or off.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] when the stream count does not
/// match the configured agent count.
pub fn run(
    config: &SimConfig,
    streams: &mut [PhasedUtility],
    policy: &mut dyn SprintPolicy,
    telemetry: &mut Telemetry,
) -> crate::Result<SimResult> {
    run_with_deadline(config, streams, policy, None, telemetry)
}

/// [`run`], abandoned cooperatively if `deadline` passes.
///
/// The deadline is checked at epoch boundaries (every 64 epochs, so the
/// hot loop pays nothing measurable); a run that blows past it returns
/// [`SimError::DeadlineExceeded`] instead of its result. The check reads
/// the wall clock but never feeds it into the dynamics, so a run that
/// *completes* is bit-identical to an undeadlined run — the deadline
/// decides only whether a result exists, which is exactly the property
/// sweep supervision needs to quarantine hung trials without breaking
/// byte-reproducibility of surviving ones.
///
/// # Errors
///
/// As [`run`], plus [`SimError::DeadlineExceeded`].
pub fn run_with_deadline(
    config: &SimConfig,
    streams: &mut [PhasedUtility],
    policy: &mut dyn SprintPolicy,
    deadline: Option<std::time::Instant>,
    telemetry: &mut Telemetry,
) -> crate::Result<SimResult> {
    let n = config.game.n_agents() as usize;
    if streams.len() != n {
        return Err(SimError::InvalidParameter {
            name: "streams",
            value: streams.len() as f64,
            expected: "one utility stream per agent",
        });
    }
    if let UtilityEstimation::Noisy { relative_sd } = config.options.estimation {
        if relative_sd < 0.0 || !relative_sd.is_finite() {
            return Err(SimError::InvalidParameter {
                name: "relative_sd",
                value: relative_sd,
                expected: "a non-negative finite relative standard deviation",
            });
        }
    }
    let plan = config.options.faults;
    plan.validate()?;
    let mut rng: StdRng = seeded_rng(config.seed ^ 0x51B_EAC0);
    // Fault randomness lives on its own stream: an empty plan draws
    // nothing here and leaves the main stream untouched.
    let mut fault_rng: StdRng = seeded_rng(config.seed ^ plan.seed.rotate_left(17) ^ 0xFA_17);
    let trip_curve = TripCurve::from_config(&config.game);
    // What the breaker actually does, vs. the nominal curve every solver
    // assumes.
    let actual_curve = match plan.breaker_drift {
        Some(d) => trip_curve.with_band_shift(d.band_shift),
        None => trip_curve,
    };
    let mut sensor = match plan.sensor {
        Some(s) => CurrentSensor::new(s.relative_sd, s.dropout_probability).map_err(|_| {
            SimError::InvalidParameter {
                name: "sensor",
                value: s.relative_sd,
                expected: "a valid sensor fault specification",
            }
        })?,
        None => CurrentSensor::ideal(),
    };
    let p_cool_exit = 1.0 - config.game.p_cooling();
    let p_recover_exit = 1.0 - config.game.p_recovery();

    // Telemetry gates, hoisted out of the hot loop: with a disabled kit
    // every emission site below is one branch on `on`.
    let on = telemetry.enabled();
    let want_decisions = on && telemetry.wants(EventKind::SprintDecision);
    let want_fault_events = on && telemetry.wants(EventKind::FaultInjected);
    let want_trip_events = on && telemetry.wants(EventKind::BreakerTrip);
    let ids =
        on.then(|| EngineIds::register(&mut telemetry.registry, f64::from(config.game.n_agents())));
    if on {
        telemetry.emit(&Event::RunStart {
            agents: config.game.n_agents(),
            epochs: config.epochs,
            seed: config.seed,
            policy: policy.name().to_string(),
        });
    }

    let mut states = vec![AgentState::Active; n];
    // Epoch index before which a freshly woken agent may not sprint.
    let mut sprint_blocked_until = vec![0usize; n];
    let mut rack_recovering = false;
    // Fault overlays: agents currently down, and power gates stuck in the
    // sprint position.
    let mut crashed = vec![false; n];
    let mut stuck = vec![false; n];
    let mut faults = FaultMetrics::default();

    let mut sprinters_per_epoch = Vec::with_capacity(config.epochs);
    let mut occupancy = StateOccupancy::default();
    let mut total_tasks = 0.0f64;
    let mut trips = 0u32;
    // Reused per epoch: which agents sprinted.
    let mut sprinted = vec![false; n];

    for epoch in 0..config.epochs {
        if epoch & 63 == 0 {
            if let Some(d) = deadline {
                if std::time::Instant::now() >= d {
                    return Err(SimError::DeadlineExceeded {
                        what: "simulation run",
                        limit_ms: 0,
                    });
                }
            }
        }
        let epoch_span = on.then(|| telemetry.spans.start());
        // Epoch throughput is reported as a delta so instrumentation never
        // reorders the float accumulation below.
        let tasks_before = total_tasks;
        // Phases advance in wall-clock time regardless of power state.
        let utilities: Vec<f64> = streams
            .iter_mut()
            .map(PhasedUtility::next_utility)
            .collect();

        // Crash churn progresses in wall-clock time too: agents go down
        // and come back regardless of the rack's power state. A restart
        // is a cold start — the agent re-acquires its threshold from the
        // coordinator before it may sprint again.
        if let Some(c) = plan.crash {
            for i in 0..n {
                if crashed[i] {
                    if fault_rng.gen::<f64>() >= c.p_restart_stay {
                        crashed[i] = false;
                        faults.restarts += 1;
                        if want_fault_events {
                            telemetry.emit(&Event::FaultInjected {
                                epoch,
                                kind: FaultKind::Restart,
                                agent: Some(i as u32),
                            });
                        }
                        if let Some(ids) = &ids {
                            telemetry.registry.inc(ids.fault(FaultKind::Restart), 1);
                        }
                        sprint_blocked_until[i] =
                            (epoch + c.reacquire_epochs as usize).max(sprint_blocked_until[i]);
                        states[i] = if rack_recovering {
                            AgentState::Recovery
                        } else {
                            AgentState::Active
                        };
                    }
                } else if fault_rng.gen::<f64>() < c.crash_probability {
                    crashed[i] = true;
                    faults.crashes += 1;
                    if want_fault_events {
                        telemetry.emit(&Event::FaultInjected {
                            epoch,
                            kind: FaultKind::Crash,
                            agent: Some(i as u32),
                        });
                    }
                    if let Some(ids) = &ids {
                        telemetry.registry.inc(ids.fault(FaultKind::Crash), 1);
                    }
                    // Power drops with the machine: a stuck gate releases.
                    stuck[i] = false;
                }
            }
        }
        let n_crashed = crashed.iter().filter(|&&down| down).count() as u64;
        faults.crashed_agent_epochs += n_crashed;

        if rack_recovering {
            occupancy.recovery += n as u64 - n_crashed;
            if config.options.recovery == RecoverySemantics::NormalMode {
                total_tasks += (n as u64 - n_crashed) as f64;
            }
            sprinters_per_epoch.push(0);
            // Batteries recharge: geometric exit, then staggered wake-up.
            if rng.gen::<f64>() < p_recover_exit {
                rack_recovering = false;
                for (i, state) in states.iter_mut().enumerate() {
                    *state = AgentState::Active;
                    let slot = if config.options.stagger_epochs == 0 {
                        0
                    } else {
                        rng.gen_range(0..config.options.stagger_epochs) as usize
                    };
                    sprint_blocked_until[i] = epoch + 1 + slot;
                }
            }
            if on {
                let epoch_tasks = total_tasks - tasks_before;
                telemetry.emit(&Event::EpochTick {
                    epoch,
                    sprinters: 0,
                    stuck: 0,
                    tripped: false,
                    recovering: true,
                    tasks: epoch_tasks,
                });
                if let Some(ids) = &ids {
                    telemetry.registry.inc(ids.epochs, 1);
                    telemetry.registry.push(ids.sprinter_series, 0.0);
                    telemetry.registry.push(ids.task_series, epoch_tasks);
                    telemetry.registry.push(ids.trip_series, 0.0);
                }
                if let Some(s) = epoch_span {
                    telemetry.spans.end("engine.epoch", s);
                }
            }
            policy.epoch_end(false);
            continue;
        }

        // Decisions, on (possibly noisy) utility estimates.
        let decide_span = on.then(|| telemetry.spans.start());
        let mut n_sprinters = 0u32;
        let mut n_stuck = 0u32;
        for i in 0..n {
            sprinted[i] = false;
            if crashed[i] {
                continue;
            }
            match states[i] {
                AgentState::Active => {
                    let estimate = match config.options.estimation {
                        UtilityEstimation::Oracle => utilities[i],
                        UtilityEstimation::Noisy { relative_sd } => {
                            // Box-Muller standard normal.
                            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                            let u2: f64 = rng.gen();
                            let z =
                                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                            (utilities[i] * (1.0 + relative_sd * z)).max(0.0)
                        }
                    };
                    let may_sprint = epoch >= sprint_blocked_until[i];
                    let sprint = may_sprint && policy.wants_sprint(i, estimate);
                    if sprint {
                        sprinted[i] = true;
                        n_sprinters += 1;
                    }
                    if want_decisions {
                        telemetry.emit(&Event::SprintDecision {
                            epoch,
                            agent: i as u32,
                            estimate,
                            sprint,
                        });
                    }
                }
                AgentState::Cooling => {
                    if stuck[i] {
                        // The power gate failed to release: the chip draws
                        // sprint current without doing sprint work.
                        n_stuck += 1;
                        faults.stuck_epochs += 1;
                    }
                }
                AgentState::Recovery => {
                    // A stale recovery tag (e.g. an agent that restarted
                    // mid-recovery and outlived it) degrades to normal
                    // computing instead of panicking; it may not sprint
                    // this epoch.
                    states[i] = AgentState::Active;
                }
            }
        }
        if let Some(s) = decide_span {
            telemetry.spans.end("engine.decide", s);
        }
        sprinters_per_epoch.push(n_sprinters);

        // Breaker: Equation 11 at what the breaker *measures*. With no
        // faults, measured load is exactly the decided sprinter count;
        // stuck gates add phantom sprinter-equivalents, and the sensor
        // may distort or hold the reading.
        let realized = f64::from(n_sprinters + n_stuck);
        let measured = match plan.sensor {
            None => realized,
            Some(_) => {
                // Box-Muller standard normal on the fault stream.
                let u1: f64 = fault_rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = fault_rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let reading = sensor.measure(realized, z, fault_rng.gen());
                if reading.dropped {
                    faults.sensor_dropouts += 1;
                    if want_fault_events {
                        telemetry.emit(&Event::FaultInjected {
                            epoch,
                            kind: FaultKind::SensorDropout,
                            agent: None,
                        });
                    }
                    if let Some(ids) = &ids {
                        telemetry
                            .registry
                            .inc(ids.fault(FaultKind::SensorDropout), 1);
                    }
                }
                reading.value
            }
        };
        let p_trip = actual_curve.p_trip(measured);
        let tripped = p_trip > 0.0 && rng.gen::<f64>() < p_trip;
        if tripped && want_trip_events {
            telemetry.emit(&Event::BreakerTrip {
                epoch,
                realized,
                measured,
                p_trip,
            });
        }

        // Divergence between the breaker's behavior and the nominal curve
        // the policies reason about.
        let nominal_p = trip_curve.p_trip(f64::from(n_sprinters));
        if tripped && nominal_p == 0.0 {
            faults.spurious_trips += 1;
            if want_fault_events {
                telemetry.emit(&Event::FaultInjected {
                    epoch,
                    kind: FaultKind::SpuriousTrip,
                    agent: None,
                });
            }
            if let Some(ids) = &ids {
                telemetry
                    .registry
                    .inc(ids.fault(FaultKind::SpuriousTrip), 1);
            }
        }
        if !tripped && nominal_p >= 1.0 {
            faults.missed_trips += 1;
            if want_fault_events {
                telemetry.emit(&Event::FaultInjected {
                    epoch,
                    kind: FaultKind::MissedTrip,
                    agent: None,
                });
            }
            if let Some(ids) = &ids {
                telemetry.registry.inc(ids.fault(FaultKind::MissedTrip), 1);
            }
        }

        // Throughput. Under the paper's UPS semantics sprints complete
        // even on a trip; the Truncated ablation scales the tripped
        // epoch's work by the pre-trip fraction.
        let epoch_scale = match (tripped, config.options.interruption) {
            (true, TripInterruption::Truncated) => pre_trip_fraction(&config.game, realized),
            _ => 1.0,
        };
        for i in 0..n {
            if crashed[i] {
                continue;
            }
            if sprinted[i] {
                total_tasks += utilities[i] * epoch_scale;
                occupancy.sprinting += 1;
            } else {
                total_tasks += epoch_scale;
                match states[i] {
                    AgentState::Cooling => occupancy.cooling += 1,
                    _ => occupancy.active_idle += 1,
                }
            }
        }

        if tripped {
            trips += 1;
            rack_recovering = true;
            states.fill(AgentState::Recovery);
            // The emergency cuts rack power: every stuck gate releases.
            if plan.stuck.is_some() {
                stuck.fill(false);
            }
        } else {
            for i in 0..n {
                if crashed[i] {
                    continue;
                }
                states[i] = match states[i] {
                    AgentState::Active if sprinted[i] => {
                        if let Some(s) = plan.stuck {
                            if fault_rng.gen::<f64>() < s.stick_probability {
                                stuck[i] = true;
                                if want_fault_events {
                                    telemetry.emit(&Event::FaultInjected {
                                        epoch,
                                        kind: FaultKind::StuckGate,
                                        agent: Some(i as u32),
                                    });
                                }
                                if let Some(ids) = &ids {
                                    telemetry.registry.inc(ids.fault(FaultKind::StuckGate), 1);
                                }
                            }
                        }
                        AgentState::Cooling
                    }
                    AgentState::Cooling => {
                        if stuck[i] {
                            // A stuck gate releases geometrically (fault
                            // stream); cooling restarts once it does.
                            if let Some(s) = plan.stuck {
                                if fault_rng.gen::<f64>() >= s.p_stuck_stay {
                                    stuck[i] = false;
                                }
                            }
                            AgentState::Cooling
                        } else if rng.gen::<f64>() < p_cool_exit {
                            AgentState::Active
                        } else {
                            AgentState::Cooling
                        }
                    }
                    s => s,
                };
            }
        }
        if on {
            let epoch_tasks = total_tasks - tasks_before;
            telemetry.emit(&Event::EpochTick {
                epoch,
                sprinters: n_sprinters,
                stuck: n_stuck,
                tripped,
                recovering: false,
                tasks: epoch_tasks,
            });
            if let Some(ids) = &ids {
                telemetry.registry.inc(ids.epochs, 1);
                if tripped {
                    telemetry.registry.inc(ids.trips, 1);
                }
                telemetry
                    .registry
                    .push(ids.sprinter_series, f64::from(n_sprinters));
                telemetry.registry.push(ids.task_series, epoch_tasks);
                telemetry
                    .registry
                    .push(ids.trip_series, if tripped { 1.0 } else { 0.0 });
                telemetry.registry.observe(ids.sprinter_hist, realized);
            }
            if let Some(s) = epoch_span {
                telemetry.spans.end("engine.epoch", s);
            }
        }
        policy.epoch_end(tripped);
    }

    let result = SimResult {
        n_agents: config.game.n_agents(),
        epochs: config.epochs,
        sprinters_per_epoch,
        total_tasks,
        trips,
        occupancy,
        faults,
    };
    if on {
        telemetry.emit(&Event::RunEnd { total_tasks, trips });
        policy.export_metrics(&mut telemetry.registry);
        let g = telemetry.registry.gauge("engine.tasks_per_agent_epoch");
        telemetry.registry.set(g, result.tasks_per_agent_epoch());
        let g = telemetry.registry.gauge("engine.trip_rate");
        telemetry
            .registry
            .set(g, f64::from(trips) / config.epochs as f64);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{Greedy, ThresholdPolicy};
    use sprint_game::ThresholdStrategy;
    use sprint_workloads::generator::Population;
    use sprint_workloads::Benchmark;

    fn small_game(n: u32) -> GameConfig {
        GameConfig::builder()
            .n_agents(n)
            .n_min(f64::from(n) * 0.25)
            .n_max(f64::from(n) * 0.75)
            .build()
            .unwrap()
    }

    fn streams(b: Benchmark, n: u32, seed: u64) -> Vec<PhasedUtility> {
        Population::homogeneous(b, n as usize)
            .unwrap()
            .spawn_streams(seed)
            .unwrap()
    }

    #[test]
    fn validates_inputs() {
        let game = small_game(10);
        assert!(SimConfig::new(game, 0, 1).is_err());
        let cfg = SimConfig::new(game, 10, 1).unwrap();
        let mut too_few = streams(Benchmark::Svm, 5, 1);
        assert!(run(
            &cfg,
            &mut too_few,
            &mut Greedy::new(),
            &mut Telemetry::noop()
        )
        .is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SimConfig::new(small_game(50), 200, 42).unwrap();
        let r1 = run(
            &cfg,
            &mut streams(Benchmark::DecisionTree, 50, 9),
            &mut Greedy::new(),
            &mut Telemetry::noop(),
        )
        .unwrap();
        let r2 = run(
            &cfg,
            &mut streams(Benchmark::DecisionTree, 50, 9),
            &mut Greedy::new(),
            &mut Telemetry::noop(),
        )
        .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn greedy_oscillates_between_sprints_and_recovery() {
        // Figure 6 top panel: full-system sprints, emergencies, idle
        // recovery.
        let cfg = SimConfig::new(small_game(100), 500, 3).unwrap();
        let mut s = streams(Benchmark::DecisionTree, 100, 3);
        let r = run(&cfg, &mut s, &mut Greedy::new(), &mut Telemetry::noop()).unwrap();
        assert!(r.trips() > 10, "greedy must trip repeatedly: {}", r.trips());
        let f = r.occupancy().fractions();
        assert!(f[2] > 0.4, "greedy spends >40% in recovery, got {}", f[2]);
        // First epoch: everyone sprints at once.
        assert_eq!(r.sprinters_per_epoch()[0], 100);
    }

    #[test]
    fn never_sprinting_never_trips() {
        let cfg = SimConfig::new(small_game(100), 300, 4).unwrap();
        let mut s = streams(Benchmark::PageRank, 100, 4);
        let never = ThresholdStrategy::new(1e9).unwrap();
        let mut policy = ThresholdPolicy::uniform("never", never, 100).unwrap();
        let r = run(&cfg, &mut s, &mut policy, &mut Telemetry::noop()).unwrap();
        assert_eq!(r.trips(), 0);
        assert!((r.tasks_per_agent_epoch() - 1.0).abs() < 1e-12);
        assert_eq!(r.occupancy().sprinting, 0);
        assert_eq!(r.occupancy().recovery, 0);
    }

    #[test]
    fn below_band_sprinting_is_safe_and_profitable() {
        // A high threshold keeps sprinters below N_min: no trips, and
        // throughput above 1.
        let cfg = SimConfig::new(small_game(100), 500, 5).unwrap();
        let mut s = streams(Benchmark::PageRank, 100, 5);
        let mut policy =
            ThresholdPolicy::uniform("safe", ThresholdStrategy::new(13.0).unwrap(), 100).unwrap();
        let r = run(&cfg, &mut s, &mut policy, &mut Telemetry::noop()).unwrap();
        // Expected sprinters ≈ 8 « N_min = 25; finite-N phase correlation
        // can brush the band at most rarely.
        assert!(r.trips() <= 1, "trips = {}", r.trips());
        assert!(r.tasks_per_agent_epoch() > 1.2);
        assert!(r.mean_sprinters() < 25.0);
    }

    #[test]
    fn occupancy_accounts_every_agent_epoch() {
        let cfg = SimConfig::new(small_game(60), 400, 6).unwrap();
        let mut s = streams(Benchmark::Kmeans, 60, 6);
        let r = run(&cfg, &mut s, &mut Greedy::new(), &mut Telemetry::noop()).unwrap();
        assert_eq!(r.occupancy().total(), 60 * 400);
    }

    #[test]
    fn recovery_ablation_raises_throughput() {
        let game = small_game(100);
        let mut idle_s = streams(Benchmark::DecisionTree, 100, 7);
        let mut norm_s = streams(Benchmark::DecisionTree, 100, 7);
        let idle = run(
            &SimConfig::new(game, 400, 7).unwrap(),
            &mut idle_s,
            &mut Greedy::new(),
            &mut Telemetry::noop(),
        )
        .unwrap();
        let normal = run(
            &SimConfig::new(game, 400, 7)
                .unwrap()
                .with_recovery(RecoverySemantics::NormalMode),
            &mut norm_s,
            &mut Greedy::new(),
            &mut Telemetry::noop(),
        )
        .unwrap();
        assert!(normal.tasks_per_agent_epoch() > idle.tasks_per_agent_epoch());
    }

    #[test]
    fn stagger_blocks_immediate_post_recovery_sprints() {
        // With a huge stagger, agents wake but cannot sprint within the
        // horizon, so at most one trip can ever occur.
        let game = small_game(50);
        let cfg = SimConfig::new(game, 200, 8).unwrap().with_stagger(10_000);
        let mut s = streams(Benchmark::LinearRegression, 50, 8);
        let r = run(&cfg, &mut s, &mut Greedy::new(), &mut Telemetry::noop()).unwrap();
        assert!(r.trips() <= 1, "trips = {}", r.trips());
    }

    #[test]
    fn noisy_estimation_validates_and_degrades_selectivity() {
        let game = small_game(100);
        // Negative noise is rejected.
        let bad = SimConfig::new(game, 10, 1)
            .unwrap()
            .with_estimation(UtilityEstimation::Noisy { relative_sd: -0.5 });
        let mut s = streams(Benchmark::PageRank, 100, 1);
        let mut p =
            ThresholdPolicy::uniform("t", ThresholdStrategy::new(5.0).unwrap(), 100).unwrap();
        assert!(run(&bad, &mut s, &mut p, &mut Telemetry::noop()).is_err());

        // With huge noise the threshold loses selectivity: sprinted
        // epochs no longer concentrate on high utilities, so throughput
        // falls versus the oracle.
        let run = |est: UtilityEstimation, seed: u64| {
            let cfg = SimConfig::new(game, 600, seed)
                .unwrap()
                .with_estimation(est);
            let mut s = streams(Benchmark::PageRank, 100, seed);
            let mut p =
                ThresholdPolicy::uniform("t", ThresholdStrategy::new(5.27).unwrap(), 100).unwrap();
            run(&cfg, &mut s, &mut p, &mut Telemetry::noop())
                .unwrap()
                .tasks_per_agent_epoch()
        };
        let oracle = run(UtilityEstimation::Oracle, 5);
        let noisy = run(UtilityEstimation::Noisy { relative_sd: 2.0 }, 5);
        assert!(
            noisy < oracle,
            "noisy {noisy} should fall below oracle {oracle}"
        );
    }

    #[test]
    fn truncated_interruption_only_reduces_tripped_epochs() {
        let game = small_game(100);
        let run = |mode: TripInterruption| {
            let cfg = SimConfig::new(game, 500, 3)
                .unwrap()
                .with_interruption(mode);
            let mut s = streams(Benchmark::DecisionTree, 100, 3);
            run(&cfg, &mut s, &mut Greedy::new(), &mut Telemetry::noop()).unwrap()
        };
        let ups = run(TripInterruption::CompleteOnUps);
        let truncated = run(TripInterruption::Truncated);
        // Same seed, same decisions: identical dynamics, less credit.
        assert_eq!(ups.sprinters_per_epoch(), truncated.sprinters_per_epoch());
        assert_eq!(ups.trips(), truncated.trips());
        assert!(truncated.total_tasks() < ups.total_tasks());
    }

    #[test]
    fn pre_trip_fraction_shape() {
        let game = small_game(1000);
        // Below the band: full epoch.
        assert_eq!(pre_trip_fraction(&game, 100.0), 1.0);
        // Monotone non-increasing in overload severity, bounded.
        let mut last = 1.0;
        for n in (250..=2000).step_by(125) {
            let f = pre_trip_fraction(&game, f64::from(n));
            assert!(f <= last + 1e-12, "fraction must not increase");
            assert!((0.05..=1.0).contains(&f));
            last = f;
        }
        // At N_max (m = 1.75): t = 161.56 / (1.75² − 1) ≈ 78 s of 150.
        let at_max = pre_trip_fraction(&game, 750.0);
        assert!(
            (at_max - 0.522).abs() < 0.01,
            "fraction at N_max = {at_max}"
        );
    }

    #[test]
    fn sprint_utilities_are_collected() {
        // One agent, always sprinting, never tripping (N_min above 1):
        // throughput equals the mean utility (alternating with cooling).
        let game = GameConfig::builder()
            .n_agents(1)
            .n_min(5.0)
            .n_max(6.0)
            .p_cooling(0.0)
            .build()
            .unwrap();
        let cfg = SimConfig::new(game, 1000, 9).unwrap();
        let mut s = streams(Benchmark::LinearRegression, 1, 9);
        let r = run(&cfg, &mut s, &mut Greedy::new(), &mut Telemetry::noop()).unwrap();
        // Alternates sprint (mean 4.0) and cooling (1.0): ≈ 2.5.
        let tpe = r.tasks_per_agent_epoch();
        assert!((2.2..=2.8).contains(&tpe), "tasks/epoch = {tpe}");
        assert_eq!(r.trips(), 0);
    }
}
