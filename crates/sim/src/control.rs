//! The supervised coordinator↔agent control plane.
//!
//! The paper's architecture (§2.3, Figure 4) separates an *offline*
//! coordinator — collect profiles, run Algorithm 1, hand each agent a
//! threshold strategy — from *online* agents that self-enforce the
//! assigned equilibrium. The base [`sprint_game::coordinator`] assumes
//! that handoff rides a lossless, instantaneous channel. This module
//! drops that assumption: messages flow through an injectable
//! [`Transport`] that may lose, delay, duplicate, or partition them,
//! and the protocol is built to survive it.
//!
//! The protocol, epoch by epoch:
//!
//! - **Messages** ([`Payload`]): agents send `ProfileReport` (once, at
//!   enrollment) and periodic `Heartbeat`s; the coordinator answers
//!   with `StrategyAssign` carrying a threshold and a lease; agents
//!   `Ack` adoption. Every message is idempotent, so duplicates and
//!   stale retransmissions are harmless.
//! - **Leases**: a `StrategyAssign` is valid for
//!   [`ControlConfig::lease_epochs`]. Agents heartbeat well inside the
//!   lease to renew it; an agent whose renewals go unanswered retries
//!   on a bounded exponential backoff with seeded jitter
//!   ([`sprint_game::retry`]).
//! - **Suspicion**: the coordinator marks agents silent for more than
//!   [`ControlConfig::suspect_after`] epochs as suspect and re-solves
//!   the equilibrium over the surviving population; a heartbeat from a
//!   suspect re-enrolls it (and triggers another re-solve).
//! - **Degradation ladder** ([`ControlTier`]): every agent holds a
//!   valid threshold at every epoch. Preferred: a leased, freshly
//!   solved equilibrium. If the coordinator is unreachable or its
//!   solve fails ([`GameError::NonConvergence`] under an iteration
//!   budget), the agent runs its last assignment stamped stale; past a
//!   grace window it falls to the provably breaker-safe conservative
//!   threshold. Each rung transition emits one typed
//!   [`Event::TierShift`], and the climb back to the equilibrium tier
//!   is measured into a recovery-latency histogram.
//!
//! On top of the ladder sits the **online adversary defense** (§6.4
//! made operational): when a [`DetectorConfig`] is attached, a rack-side
//! dynamics model simulates actual sprinting — honest agents follow
//! their held thresholds, an optional [`AdversaryMix`] misbehaves — and
//! panel sensors report per-agent sprint counts over the same lossy
//! transport. The coordinator runs a per-agent CUSUM test on the
//! observed sprint-rate-given-active against the rate the assigned
//! threshold implies under the density, and walks detected agents up a
//! graduated sanctions ladder (warn → timed revocation → probation →
//! permanent exclusion) instead of the grim trigger's one-shot ban.
//! Detection uses only delivered control-plane messages — never engine
//! ground truth and never scheduling order — so runs stay
//! bit-reproducible.
//!
//! Everything is deterministic: transport faults draw from a dedicated
//! seeded stream, backoff jitter is seeded per participant, rack-model
//! randomness is counter-based per `(agent, epoch)`, and agents are
//! iterated in index order — the same seed yields a bit-identical
//! [`ControlReport`].

use rand::rngs::StdRng;
use rand::Rng;

use sprint_game::cache::EquilibriumCache;
use sprint_game::meanfield::SolverOptions;
use sprint_game::retry::BackoffSchedule;
use sprint_game::trip::TripCurve;
use sprint_game::{GameConfig, MeanFieldSolver, RetryPolicy};
use sprint_stats::density::{AliasSampler, DiscreteDensity};
use sprint_stats::rng::{seeded_rng, CounterRng};
use sprint_telemetry::{ControlTier, Event, EventKind, FaultKind, SanctionLevel, Telemetry};

use crate::faults::{FaultPlan, RackPartition, SensorFault, TransportFault};
use crate::policies::AdversaryMix;
use crate::SimError;

/// Where a control-plane message is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Address {
    /// The rack coordinator.
    Coordinator,
    /// One agent, by index.
    Agent {
        /// Agent index.
        id: u32,
    },
}

/// A control-plane message body.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Payload {
    /// A sprint-activity report for one agent. At enrollment agents send
    /// an empty report (`window_end == 0`); when the defense subsystem
    /// is active, rack-side panel sensors send one per observation
    /// window with the counts the coordinator's detector consumes.
    ProfileReport {
        /// Reported agent.
        agent: u32,
        /// Sprints the panel sensor counted in the window (noisy under
        /// a [`SensorFault`]).
        sprints: u32,
        /// Epochs the agent was observably active (powered and not
        /// cooling) in the window.
        active: u32,
        /// Epoch the window closed, plus one; `0` marks an enrollment
        /// report carrying no observation. Monotone per agent, so
        /// duplicated or reordered deliveries are discarded.
        window_end: u32,
    },
    /// An agent signals liveness and asks for lease renewal.
    Heartbeat {
        /// Heartbeating agent.
        agent: u32,
    },
    /// The coordinator assigns (or renews) a leased strategy.
    StrategyAssign {
        /// Receiving agent.
        agent: u32,
        /// Assigned sprint threshold.
        threshold: f64,
        /// Advertised stationary tripping probability.
        trip_probability: f64,
        /// Lease duration, in epochs from receipt.
        lease_epochs: u32,
        /// Whether the strategy came from the stale-cache tier (the
        /// coordinator could not produce a fresh solve).
        stale: bool,
    },
    /// An agent acknowledges an adopted assignment.
    Ack {
        /// Acknowledging agent.
        agent: u32,
    },
}

impl Payload {
    /// The agent on whose behalf this message travels (for partition
    /// checks on coordinator-bound traffic).
    #[must_use]
    pub fn agent(&self) -> u32 {
        match *self {
            Payload::ProfileReport { agent, .. }
            | Payload::Heartbeat { agent }
            | Payload::StrategyAssign { agent, .. }
            | Payload::Ack { agent } => agent,
        }
    }
}

/// One queued control-plane message.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Envelope {
    /// Destination.
    pub to: Address,
    /// Message body.
    pub payload: Payload,
    /// Epoch the sender handed it to the transport.
    pub sent_epoch: usize,
}

/// Cumulative transport counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct TransportStats {
    /// Messages handed to the transport.
    pub sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages silently dropped by the lossy channel.
    pub lost: u64,
    /// Messages delivered late.
    pub delayed: u64,
    /// Extra deliveries from duplication.
    pub duplicated: u64,
    /// Messages dropped because an endpoint was partitioned.
    pub partition_drops: u64,
}

/// The injectable message channel between coordinator and agents.
///
/// Implementations must be deterministic: the delivery schedule may
/// depend only on the messages sent and the transport's own seed.
/// Minimum latency is one epoch — a message sent at epoch `e` is
/// deliverable at `e + 1` at the earliest — so the control plane never
/// depends on same-epoch round trips.
pub trait Transport {
    /// Queue a message.
    fn send(&mut self, env: Envelope);
    /// Remove and return every message due at `epoch`, in a
    /// deterministic order.
    fn deliver(&mut self, epoch: usize) -> Vec<Envelope>;
    /// Cumulative counters.
    fn stats(&self) -> TransportStats;
    /// Drain the log of fault activations since the last call
    /// (empty for well-behaved transports).
    fn drain_faults(&mut self) -> Vec<(usize, FaultKind)> {
        Vec::new()
    }
}

/// A reliable transport: every message arrives exactly once, one epoch
/// after it was sent, in send order.
#[derive(Debug, Default)]
pub struct PerfectTransport {
    queue: Vec<(usize, u64, Envelope)>,
    seq: u64,
    stats: TransportStats,
}

impl PerfectTransport {
    /// An empty reliable transport.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for PerfectTransport {
    fn send(&mut self, env: Envelope) {
        self.stats.sent += 1;
        self.queue.push((env.sent_epoch + 1, self.seq, env));
        self.seq += 1;
    }

    fn deliver(&mut self, epoch: usize) -> Vec<Envelope> {
        let mut due: Vec<(usize, u64, Envelope)> = Vec::new();
        self.queue.retain(|item| {
            if item.0 <= epoch {
                due.push(*item);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|&(_, seq, _)| seq);
        self.stats.delivered += due.len() as u64;
        due.into_iter().map(|(_, _, env)| env).collect()
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// A deterministic fault-injecting transport: message loss, delay,
/// duplication ([`TransportFault`]) and rack partitions
/// ([`RackPartition`]), all drawn from a dedicated seeded stream.
///
/// Partition semantics: a message is dropped when its agent endpoint is
/// cut at the *send* epoch or at the delivery epoch — in-flight traffic
/// does not survive a partition closing around it, and nothing is
/// queued for later.
#[derive(Debug)]
pub struct FaultyTransport {
    fault: Option<TransportFault>,
    partition: Option<RackPartition>,
    n_agents: u32,
    queue: Vec<(usize, u64, Envelope)>,
    seq: u64,
    rng: StdRng,
    stats: TransportStats,
    fault_log: Vec<(usize, FaultKind)>,
}

impl FaultyTransport {
    /// Build from a fault plan's transport components. With both absent
    /// the behavior is identical to [`PerfectTransport`].
    #[must_use]
    pub fn new(plan: &FaultPlan, n_agents: u32, seed: u64) -> Self {
        FaultyTransport {
            fault: plan.transport,
            partition: plan.partition,
            n_agents,
            queue: Vec::new(),
            seq: 0,
            rng: seeded_rng(seed ^ plan.seed.rotate_left(29) ^ 0xC0_117),
            stats: TransportStats::default(),
            fault_log: Vec::new(),
        }
    }

    fn cut(&self, epoch: usize, agent: u32) -> bool {
        self.partition
            .is_some_and(|p| p.cuts(epoch, agent, self.n_agents))
    }

    fn enqueue(&mut self, env: Envelope, extra_delay: usize) {
        self.queue
            .push((env.sent_epoch + 1 + extra_delay, self.seq, env));
        self.seq += 1;
    }
}

impl Transport for FaultyTransport {
    fn send(&mut self, env: Envelope) {
        self.stats.sent += 1;
        let agent = env.payload.agent();
        if self.cut(env.sent_epoch, agent) {
            self.stats.partition_drops += 1;
            self.fault_log.push((env.sent_epoch, FaultKind::Partition));
            return;
        }
        let Some(f) = self.fault else {
            self.enqueue(env, 0);
            return;
        };
        if self.rng.gen::<f64>() < f.loss_probability {
            self.stats.lost += 1;
            self.fault_log
                .push((env.sent_epoch, FaultKind::MessageLoss));
            return;
        }
        let delay = if f.max_delay_epochs > 0 && self.rng.gen::<f64>() < f.delay_probability {
            let d = self.rng.gen_range(1..=f.max_delay_epochs) as usize;
            self.stats.delayed += 1;
            self.fault_log
                .push((env.sent_epoch, FaultKind::MessageDelay));
            d
        } else {
            0
        };
        self.enqueue(env, delay);
        if self.rng.gen::<f64>() < f.duplicate_probability {
            self.stats.duplicated += 1;
            self.fault_log
                .push((env.sent_epoch, FaultKind::MessageDuplicate));
            self.enqueue(env, delay);
        }
    }

    fn deliver(&mut self, epoch: usize) -> Vec<Envelope> {
        let mut due: Vec<(usize, u64, Envelope)> = Vec::new();
        self.queue.retain(|item| {
            if item.0 <= epoch {
                due.push(*item);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|&(_, seq, _)| seq);
        let mut out = Vec::with_capacity(due.len());
        for (_, _, env) in due {
            if self.cut(epoch, env.payload.agent()) {
                self.stats.partition_drops += 1;
                self.fault_log.push((epoch, FaultKind::Partition));
                continue;
            }
            self.stats.delivered += 1;
            out.push(env);
        }
        out
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn drain_faults(&mut self) -> Vec<(usize, FaultKind)> {
        std::mem::take(&mut self.fault_log)
    }
}

/// Timing and retry knobs for the control plane.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControlConfig {
    /// Epochs a `StrategyAssign` stays valid.
    pub lease_epochs: u32,
    /// Epochs between routine heartbeats while the lease is healthy.
    pub heartbeat_interval: u32,
    /// Epochs of silence before the coordinator suspects an agent.
    pub suspect_after: u32,
    /// Epochs an expired assignment may run stale before the agent
    /// falls to the conservative tier.
    pub stale_grace_epochs: u32,
    /// Backoff policy for unanswered renewals and failed solves.
    pub retry: RetryPolicy,
    /// Iteration budget per coordinator solve (the deterministic solve
    /// deadline threaded into [`MeanFieldSolver`]).
    pub solve_budget: usize,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            lease_epochs: 20,
            heartbeat_interval: 5,
            suspect_after: 12,
            stale_grace_epochs: 10,
            retry: RetryPolicy::default(),
            solve_budget: 50_000,
        }
    }
}

impl ControlConfig {
    /// Validate the timing parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when any window is zero
    /// or the heartbeat interval does not fit inside the lease.
    pub fn validate(&self) -> crate::Result<()> {
        let positive: [(&'static str, u32); 4] = [
            ("lease_epochs", self.lease_epochs),
            ("heartbeat_interval", self.heartbeat_interval),
            ("suspect_after", self.suspect_after),
            (
                "solve_budget",
                u32::try_from(self.solve_budget.min(1)).unwrap_or(1),
            ),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(SimError::InvalidParameter {
                    name,
                    value: 0.0,
                    expected: "a positive epoch count",
                });
            }
        }
        if self.heartbeat_interval >= self.lease_epochs {
            return Err(SimError::InvalidParameter {
                name: "heartbeat_interval",
                value: f64::from(self.heartbeat_interval),
                expected: "an interval strictly inside the lease window",
            });
        }
        Ok(())
    }
}

/// CUSUM detector and graduated-sanctions knobs for the online
/// adversary defense.
///
/// The detector runs per agent on accepted [`Payload::ProfileReport`]s:
/// with `x` the observed sprint rate given active and `p₀` the rate the
/// assigned threshold implies under the density,
/// `S ← max(0, S + x − p₀ − slack)`, and `S > decision_threshold`
/// declares a deviation. The sanctions ladder then escalates —
/// `max_warnings` free warnings, timed revocations with probation
/// re-admission, and permanent exclusion after `max_revocations`
/// strikes — so a noise spike costs an honest agent at most a warning.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DetectorConfig {
    /// Epochs per panel-sensor observation window.
    pub report_interval: u32,
    /// CUSUM slack (the allowance `k`): per-report overshoot absorbed
    /// before the statistic grows.
    pub slack: f64,
    /// CUSUM decision threshold (`h`). During probation the effective
    /// threshold is halved — the detector stays armed.
    pub decision_threshold: f64,
    /// Detections forgiven with a warning before the first revocation.
    pub max_warnings: u32,
    /// Length of a sprint-lease revocation, in epochs.
    pub revocation_epochs: u32,
    /// Probation length after a revocation expires, in epochs.
    pub probation_epochs: u32,
    /// Revocation strikes before permanent exclusion.
    pub max_revocations: u32,
    /// Apply sanctions. With `false` the detector observes and counts
    /// but never punishes — the unenforced baseline.
    pub enforcement: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            report_interval: 10,
            slack: 0.2,
            decision_threshold: 2.0,
            max_warnings: 1,
            revocation_epochs: 30,
            probation_epochs: 40,
            max_revocations: 2,
            enforcement: true,
        }
    }
}

impl DetectorConfig {
    /// Validate the detector parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero windows or
    /// non-positive/non-finite statistics parameters.
    pub fn validate(&self) -> crate::Result<()> {
        let positive: [(&'static str, u32); 4] = [
            ("report_interval", self.report_interval),
            ("revocation_epochs", self.revocation_epochs),
            ("probation_epochs", self.probation_epochs),
            ("max_revocations", self.max_revocations),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(SimError::InvalidParameter {
                    name,
                    value: 0.0,
                    expected: "a positive count",
                });
            }
        }
        if !(self.slack.is_finite() && self.slack >= 0.0) {
            return Err(SimError::InvalidParameter {
                name: "slack",
                value: self.slack,
                expected: "a non-negative finite CUSUM slack",
            });
        }
        if !(self.decision_threshold.is_finite() && self.decision_threshold > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "decision_threshold",
                value: self.decision_threshold,
                expected: "a positive finite CUSUM threshold",
            });
        }
        Ok(())
    }
}

/// Outcome summary of the adversary-defense subsystem for one run.
/// Present in a [`ControlReport`] only when the rack model ran (a
/// detector or an adversary mix was attached).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DefenseReport {
    /// Adversarial agents in the population (ground truth, for
    /// false-positive/false-negative scoring only — the detector never
    /// sees it).
    pub adversaries: u32,
    /// Sensor reports the coordinator received.
    pub reports_received: u64,
    /// Received reports discarded as duplicates, reordered, or empty.
    pub reports_discarded: u64,
    /// CUSUM detections across all agents.
    pub detections: u64,
    /// Warnings issued.
    pub warnings: u64,
    /// Timed revocations applied.
    pub revocations: u64,
    /// Permanent exclusions applied.
    pub exclusions: u64,
    /// Probations completed (full re-admissions).
    pub readmissions: u64,
    /// Warnings issued to honest agents.
    pub false_positive_warnings: u64,
    /// Revocations applied to honest agents.
    pub false_positive_revocations: u64,
    /// Permanent exclusions of honest agents (the acceptance gate pins
    /// this to zero).
    pub false_positive_exclusions: u64,
    /// Adversarial agents the detector never flagged.
    pub false_negatives: u32,
    /// Mean epochs from adversary onset to first detection; `None` when
    /// nothing was detected.
    pub mean_detection_latency_epochs: Option<f64>,
    /// Sprint attempts physically blocked by an active sanction (the
    /// rack-side power-gate veto).
    pub vetoed_sprints: u64,
    /// Mean task-units per agent-epoch the rack actually produced.
    pub throughput: f64,
    /// Breaker trips over the run.
    pub trips: u64,
}

/// Where an agent stands on the sanctions ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Sanction {
    Good,
    Warned,
    Revoked { until: usize },
    Probation { until: usize },
    Excluded,
}

impl Sanction {
    /// Sanctions that bar the agent from the cooperative population:
    /// no lease renewals, no solve membership, power gate vetoed.
    fn bars(self) -> bool {
        matches!(self, Sanction::Revoked { .. } | Sanction::Excluded)
    }
}

/// Per-agent detector and sanction state.
struct Suspicion {
    s: f64,
    last_window: u32,
    sanction: Sanction,
    warnings: u32,
    strikes: u32,
    first_detection: Option<usize>,
}

/// Counter-RNG purposes for the rack dynamics model. Distinct constants
/// per stream; none of them touch the crash/fault or transport RNGs, so
/// attaching the defense never perturbs existing fault schedules.
const DEFENSE_UTILITY: u64 = 0xDEF01;
const DEFENSE_COOLING: u64 = 0xDEF02;
const DEFENSE_TRIP: u64 = 0xDEF03;
const DEFENSE_RECOVERY: u64 = 0xDEF04;
const DEFENSE_SENSOR: u64 = 0xDEF05;

/// The adversary-defense subsystem: the rack-side dynamics model that
/// generates sensor telemetry, and the coordinator-side CUSUM detector
/// with its sanctions ladder. All state updates are driven by epoch
/// index and delivered messages only.
struct DefenseState {
    detector: Option<DetectorConfig>,
    mix: AdversaryMix,
    n: usize,
    agents: Vec<Suspicion>,
    cooling: Vec<bool>,
    window_sprints: Vec<u32>,
    window_active: Vec<u32>,
    recovering: bool,
    utility_rng: CounterRng,
    cooling_rng: CounterRng,
    trip_rng: CounterRng,
    recovery_rng: CounterRng,
    sensor_rng: CounterRng,
    cheat_rng: CounterRng,
    sampler: AliasSampler,
    trip_curve: TripCurve,
    p_cooling: f64,
    p_recovery: f64,
    sensor: Option<SensorFault>,
    learner_scale: f64,
    trips: u64,
    tasks: f64,
    vetoed_sprints: u64,
    reports_received: u64,
    reports_discarded: u64,
    detections: u64,
    warnings: u64,
    revocations: u64,
    exclusions: u64,
    readmissions: u64,
    fp_warnings: u64,
    fp_revocations: u64,
    fp_exclusions: u64,
    detection_latencies: Vec<u64>,
}

impl DefenseState {
    fn new(
        game: &GameConfig,
        density: &DiscreteDensity,
        plan: &FaultPlan,
        mix: AdversaryMix,
        detector: Option<DetectorConfig>,
        seed: u64,
    ) -> Self {
        let n = game.n_agents() as usize;
        DefenseState {
            detector,
            mix,
            n,
            agents: (0..n)
                .map(|_| Suspicion {
                    s: 0.0,
                    last_window: 0,
                    sanction: Sanction::Good,
                    warnings: 0,
                    strikes: 0,
                    first_detection: None,
                })
                .collect(),
            cooling: vec![false; n],
            window_sprints: vec![0; n],
            window_active: vec![0; n],
            recovering: false,
            utility_rng: CounterRng::new(seed, DEFENSE_UTILITY),
            cooling_rng: CounterRng::new(seed, DEFENSE_COOLING),
            trip_rng: CounterRng::new(seed, DEFENSE_TRIP),
            recovery_rng: CounterRng::new(seed, DEFENSE_RECOVERY),
            sensor_rng: CounterRng::new(seed ^ plan.seed.rotate_left(11), DEFENSE_SENSOR),
            cheat_rng: mix.cheat_rng(),
            sampler: AliasSampler::new(density),
            trip_curve: TripCurve::from_config(game),
            p_cooling: game.p_cooling(),
            p_recovery: game.p_recovery(),
            sensor: plan.sensor,
            learner_scale: 1.0,
            trips: 0,
            tasks: 0.0,
            vetoed_sprints: 0,
            reports_received: 0,
            reports_discarded: 0,
            detections: 0,
            warnings: 0,
            revocations: 0,
            exclusions: 0,
            readmissions: 0,
            fp_warnings: 0,
            fp_revocations: 0,
            fp_exclusions: 0,
            detection_latencies: Vec::new(),
        }
    }

    fn enforcing(&self) -> bool {
        self.detector.is_some_and(|d| d.enforcement)
    }

    /// Whether agent `i` is barred from the cooperative population.
    fn barred(&self, i: usize) -> bool {
        self.agents[i].sanction.bars()
    }

    fn is_honest(&self, i: usize) -> bool {
        !self.mix.is_adversary(i, self.n)
    }

    /// Timed ladder transitions: revocations expire into probation,
    /// probations complete into full re-admission. Driven purely by the
    /// epoch index, so scheduling order cannot matter.
    fn tick_sanctions(&mut self, epoch: usize, telemetry: &mut Telemetry, want: bool) {
        let Some(cfg) = self.detector else { return };
        for i in 0..self.n {
            let a = &mut self.agents[i];
            match a.sanction {
                Sanction::Revoked { until } if epoch >= until => {
                    a.sanction = Sanction::Probation {
                        until: epoch + cfg.probation_epochs as usize,
                    };
                    a.s = 0.0;
                    if want {
                        telemetry.emit(&Event::SanctionLifted {
                            epoch,
                            agent: i as u32,
                            probation: true,
                        });
                    }
                }
                Sanction::Probation { until } if epoch >= until => {
                    a.sanction = Sanction::Good;
                    a.warnings = 0;
                    a.s = 0.0;
                    self.readmissions += 1;
                    if want {
                        telemetry.emit(&Event::SanctionLifted {
                            epoch,
                            agent: i as u32,
                            probation: false,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    /// Feed one accepted sensor report into the CUSUM detector.
    /// `expected` is the sprint rate (given active) the coordinator's
    /// current assignment implies for this agent.
    #[allow(clippy::too_many_arguments)]
    fn on_report(
        &mut self,
        agent: usize,
        sprints: u32,
        active: u32,
        window_end: u32,
        epoch: usize,
        expected: f64,
        telemetry: &mut Telemetry,
        want_detect: bool,
        want_sanction: bool,
    ) {
        let Some(cfg) = self.detector else { return };
        self.reports_received += 1;
        let a = &mut self.agents[agent];
        if window_end <= a.last_window || active == 0 {
            self.reports_discarded += 1;
            return;
        }
        a.last_window = window_end;
        if a.sanction.bars() {
            // A gated agent's panel counts are vetoed sprints, not
            // evidence; the statistic stays frozen until re-admission.
            return;
        }
        let x = f64::from(sprints) / f64::from(active);
        a.s = (a.s + x - expected - cfg.slack).max(0.0);
        let armed = if matches!(a.sanction, Sanction::Probation { .. }) {
            cfg.decision_threshold * 0.5
        } else {
            cfg.decision_threshold
        };
        if a.s <= armed {
            return;
        }
        // Detection.
        let statistic = a.s;
        a.s = 0.0;
        self.detections += 1;
        if a.first_detection.is_none() {
            a.first_detection = Some(epoch);
            if !self.is_honest(agent) {
                self.detection_latencies.push(epoch as u64);
            }
        }
        if want_detect {
            telemetry.emit(&Event::AdversaryDetected {
                epoch,
                agent: agent as u32,
                statistic,
                observed: x,
                expected,
            });
        }
        if cfg.enforcement {
            self.escalate(agent, epoch, cfg, telemetry, want_sanction);
        }
    }

    /// Walk one agent up the sanctions ladder after a detection.
    fn escalate(
        &mut self,
        i: usize,
        epoch: usize,
        cfg: DetectorConfig,
        telemetry: &mut Telemetry,
        want: bool,
    ) {
        let honest = self.is_honest(i);
        let a = &mut self.agents[i];
        let (level, duration) = match a.sanction {
            Sanction::Good | Sanction::Warned if a.warnings < cfg.max_warnings => {
                a.warnings += 1;
                a.sanction = Sanction::Warned;
                (SanctionLevel::Warning, None)
            }
            Sanction::Good | Sanction::Warned | Sanction::Probation { .. } => {
                a.strikes += 1;
                if a.strikes >= cfg.max_revocations {
                    a.sanction = Sanction::Excluded;
                    (SanctionLevel::Exclusion, None)
                } else {
                    a.sanction = Sanction::Revoked {
                        until: epoch + cfg.revocation_epochs as usize,
                    };
                    (SanctionLevel::Revocation, Some(cfg.revocation_epochs))
                }
            }
            // Gated agents produce no evidence; a detection here cannot
            // happen, but keep the ladder total.
            Sanction::Revoked { .. } | Sanction::Excluded => return,
        };
        let strikes = a.strikes;
        match level {
            SanctionLevel::Warning => {
                self.warnings += 1;
                if honest {
                    self.fp_warnings += 1;
                }
            }
            SanctionLevel::Revocation => {
                self.revocations += 1;
                if honest {
                    self.fp_revocations += 1;
                }
            }
            SanctionLevel::Exclusion => {
                self.exclusions += 1;
                if honest {
                    self.fp_exclusions += 1;
                }
            }
        }
        if want {
            telemetry.emit(&Event::SanctionApplied {
                epoch,
                agent: i as u32,
                level,
                strikes,
                duration_epochs: duration,
            });
        }
    }

    /// One epoch of rack dynamics: utility draws, sprint decisions
    /// (honest or adversarial), the power-gate veto, cooling/recovery
    /// churn, the Equation-11 trip draw, and — on window boundaries —
    /// panel-sensor reports over the transport.
    fn rack_epoch(&mut self, epoch: usize, agents: &[AgentCtl], transport: &mut dyn Transport) {
        if self.recovering {
            if self.recovery_rng.uniform(0, epoch as u64, 0) < self.p_recovery {
                // The rack spends the whole epoch dark: no work, no
                // decisions, cooling frozen.
                self.flush_reports(epoch, agents, transport);
                return;
            }
            self.recovering = false;
        }
        let adversary_active = self.mix.active_at(epoch);
        let enforcing = self.enforcing();
        let mut sprinters = 0u32;
        for (i, ctl) in agents.iter().enumerate() {
            if ctl.crashed {
                continue;
            }
            if self.cooling[i] {
                if self.cooling_rng.uniform(i as u64, epoch as u64, 0) < self.p_cooling {
                    // Still cooling: powered, working at nominal rate.
                    self.tasks += 1.0;
                    continue;
                }
                self.cooling[i] = false;
            }
            let u = self.sampler.sample(
                self.utility_rng.uniform(i as u64, epoch as u64, 0),
                self.utility_rng.uniform(i as u64, epoch as u64, 1),
            );
            let honest = u > ctl.threshold;
            let wants = if adversary_active && self.mix.is_adversary(i, self.n) {
                self.mix.kind.decide(
                    honest,
                    u,
                    ctl.threshold,
                    i as u64,
                    epoch as u64,
                    &self.cheat_rng,
                    self.learner_scale,
                )
            } else {
                honest
            };
            let gated = enforcing && self.agents[i].sanction.bars();
            self.window_active[i] += 1;
            if wants && gated {
                // The sanction is physical: the coordinator holds this
                // agent's power gate shut, so even a protocol-ignoring
                // defector cannot draw sprint current.
                self.vetoed_sprints += 1;
            }
            if wants && !gated {
                sprinters += 1;
                self.window_sprints[i] += 1;
                self.tasks += u;
                self.cooling[i] = true;
            } else {
                self.tasks += 1.0;
            }
        }
        let p = self.trip_curve.p_trip(f64::from(sprinters));
        if self.trip_rng.uniform(0, epoch as u64, 0) < p {
            // Tripped-epoch sprints still count (UPS ride-through);
            // recovery starts next epoch.
            self.trips += 1;
            self.recovering = true;
        }
        let freq = self.trips as f64 / (epoch + 1) as f64;
        self.learner_scale = self.mix.kind.learner_step(self.learner_scale, freq);
        self.flush_reports(epoch, agents, transport);
    }

    /// On a window boundary, send each live agent's panel counts to the
    /// coordinator (noisy and droppable under a [`SensorFault`]) and
    /// reset the windows.
    fn flush_reports(&mut self, epoch: usize, agents: &[AgentCtl], transport: &mut dyn Transport) {
        let Some(cfg) = self.detector else { return };
        if !(epoch + 1).is_multiple_of(cfg.report_interval as usize) {
            return;
        }
        for (i, ctl) in agents.iter().enumerate() {
            let active = self.window_active[i];
            if ctl.crashed || active == 0 {
                continue;
            }
            if let Some(sf) = self.sensor {
                if self.sensor_rng.uniform(i as u64, epoch as u64, 0) < sf.dropout_probability {
                    continue;
                }
            }
            let sprints = match self.sensor {
                Some(sf) if sf.relative_sd > 0.0 => {
                    let noise = self.sensor_rng.normal(i as u64, epoch as u64, 1)
                        * sf.relative_sd
                        * f64::from(active);
                    (f64::from(self.window_sprints[i]) + noise)
                        .round()
                        .clamp(0.0, f64::from(active)) as u32
                }
                _ => self.window_sprints[i],
            };
            transport.send(Envelope {
                to: Address::Coordinator,
                payload: Payload::ProfileReport {
                    agent: i as u32,
                    sprints,
                    active,
                    window_end: (epoch + 1) as u32,
                },
                sent_epoch: epoch,
            });
        }
        self.window_sprints.fill(0);
        self.window_active.fill(0);
    }

    fn export_metrics(&self, registry: &mut sprint_telemetry::Registry) {
        let pairs: [(&str, u64); 9] = [
            ("control.defense.reports_received", self.reports_received),
            ("control.defense.detections", self.detections),
            ("control.defense.warnings", self.warnings),
            ("control.defense.revocations", self.revocations),
            ("control.defense.exclusions", self.exclusions),
            ("control.defense.readmissions", self.readmissions),
            (
                "control.defense.false_positive_exclusions",
                self.fp_exclusions,
            ),
            ("control.defense.vetoed_sprints", self.vetoed_sprints),
            ("control.defense.trips", self.trips),
        ];
        for (name, v) in pairs {
            let c = registry.counter(name);
            registry.inc(c, v);
        }
        let h = registry.histogram(
            "control.defense.detection_latency_epochs",
            &[10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0],
        );
        for &l in &self.detection_latencies {
            registry.observe(h, l as f64);
        }
    }

    fn finish(self, epochs: usize) -> DefenseReport {
        let adversaries = self.mix.adversary_count(self.n) as u32;
        let false_negatives = if self.detector.is_some() {
            (0..self.n)
                .filter(|&i| !self.is_honest(i) && self.agents[i].first_detection.is_none())
                .count() as u32
        } else {
            0
        };
        let mean_detection_latency_epochs = if self.detection_latencies.is_empty() {
            None
        } else {
            Some(
                self.detection_latencies.iter().sum::<u64>() as f64
                    / self.detection_latencies.len() as f64,
            )
        };
        DefenseReport {
            adversaries,
            reports_received: self.reports_received,
            reports_discarded: self.reports_discarded,
            detections: self.detections,
            warnings: self.warnings,
            revocations: self.revocations,
            exclusions: self.exclusions,
            readmissions: self.readmissions,
            false_positive_warnings: self.fp_warnings,
            false_positive_revocations: self.fp_revocations,
            false_positive_exclusions: self.fp_exclusions,
            false_negatives,
            mean_detection_latency_epochs,
            vetoed_sprints: self.vetoed_sprints,
            throughput: self.tasks / (self.n * epochs) as f64,
            trips: self.trips,
        }
    }
}

/// Deterministic outcome summary of one control-plane run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControlReport {
    /// Agents simulated.
    pub agents: u32,
    /// Epochs simulated.
    pub epochs: usize,
    /// Live agent-epochs spent on each ladder tier
    /// (`[equilibrium, stale_cache, conservative]`).
    pub tier_epochs: [u64; 3],
    /// Total ladder transitions across all agents.
    pub tier_transitions: u64,
    /// Epochs at which an agent held an unusable threshold (must be 0).
    pub invariant_violations: u64,
    /// Coordinator solve attempts.
    pub resolves: u64,
    /// Coordinator solves that failed (budget exhausted or divergent).
    pub resolve_failures: u64,
    /// Agents marked suspect (cumulative).
    pub suspects: u64,
    /// Strategy leases granted or renewed.
    pub lease_grants: u64,
    /// Leases that lapsed without renewal.
    pub lease_expiries: u64,
    /// Completed recoveries back to the equilibrium tier.
    pub recoveries: u64,
    /// Mean epochs from degradation (or partition heal, whichever is
    /// later) back to the equilibrium tier; `None` when no agent ever
    /// recovered.
    pub mean_recovery_epochs: Option<f64>,
    /// Mean per-agent-epoch sprint-gain proxy actually realized:
    /// `(1 − P(u > T)) + E[u · 1(u > T)]` at each held threshold.
    /// Ignores cooling externalities — it compares ladder tiers, not
    /// policies.
    pub mean_utility: f64,
    /// The same proxy for a rack pinned to the conservative threshold.
    pub conservative_utility: f64,
    /// Transport counters.
    pub messages: TransportStats,
    /// Adversary-defense outcome; `None` when the rack model was off
    /// (no detector and no adversary mix attached).
    pub defense: Option<DefenseReport>,
}

struct AgentCtl {
    threshold: f64,
    tier: ControlTier,
    lease_until: usize,
    stale_deadline: Option<usize>,
    next_heartbeat: usize,
    enrolled: bool,
    backoff: Option<BackoffSchedule>,
    attempt: u32,
    crashed: bool,
    degraded_since: Option<usize>,
}

/// An epoch-driven simulation of the control plane for one homogeneous
/// rack (the coordinator, `n` agents, and a transport between them).
#[derive(Debug, Clone)]
pub struct ControlSim {
    game: GameConfig,
    density: DiscreteDensity,
    options: SolverOptions,
    plan: FaultPlan,
    config: ControlConfig,
    adversaries: Option<AdversaryMix>,
    detector: Option<DetectorConfig>,
    epochs: usize,
}

impl ControlSim {
    /// A control-plane simulation of `epochs` epochs over the agents of
    /// `game`, all running the profile `density`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `epochs` is zero.
    pub fn new(game: GameConfig, density: DiscreteDensity, epochs: usize) -> crate::Result<Self> {
        if epochs == 0 {
            return Err(SimError::InvalidParameter {
                name: "epochs",
                value: 0.0,
                expected: "at least one epoch",
            });
        }
        Ok(ControlSim {
            game,
            density,
            options: SolverOptions::default(),
            plan: FaultPlan::none(),
            config: ControlConfig::default(),
            adversaries: None,
            detector: None,
            epochs,
        })
    }

    /// Override the solver options (the control plane adds its own
    /// iteration budget on top).
    #[must_use]
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach a fault plan (transport faults, partitions, crash churn).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Override the control-plane timing/retry configuration.
    #[must_use]
    pub fn with_control(mut self, config: ControlConfig) -> Self {
        self.config = config;
        self
    }

    /// Mix adversarial agents into the rack population. Attaching a mix
    /// (or a detector) turns on the rack dynamics model.
    #[must_use]
    pub fn with_adversaries(mut self, mix: AdversaryMix) -> Self {
        self.adversaries = Some(mix);
        self
    }

    /// Attach the online CUSUM detector and sanctions ladder. Attaching
    /// a detector (or an adversary mix) turns on the rack dynamics
    /// model and its panel-sensor reports.
    #[must_use]
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = Some(detector);
        self
    }

    /// The control configuration in effect.
    #[must_use]
    pub fn control(&self) -> &ControlConfig {
        &self.config
    }

    /// Run with the fault plan's own [`FaultyTransport`].
    ///
    /// # Errors
    ///
    /// As [`ControlSim::run_with_transport`].
    pub fn run(&self, seed: u64, telemetry: &mut Telemetry) -> crate::Result<ControlReport> {
        let mut transport = FaultyTransport::new(&self.plan, self.game.n_agents(), seed);
        self.run_with_transport(&mut transport, seed, telemetry)
    }

    /// Run the message loop over an injected transport.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for invalid fault or
    /// control configurations. Solver failures never error: they are
    /// what the degradation ladder absorbs.
    pub fn run_with_transport(
        &self,
        transport: &mut dyn Transport,
        seed: u64,
        telemetry: &mut Telemetry,
    ) -> crate::Result<ControlReport> {
        self.plan.validate()?;
        self.config.validate()?;
        if let Some(d) = &self.detector {
            d.validate()?;
        }
        if let Some(m) = &self.adversaries {
            m.validate()?;
        }
        let n = self.game.n_agents() as usize;
        let cfg = &self.config;
        let mut defense: Option<DefenseState> =
            (self.detector.is_some() || self.adversaries.is_some()).then(|| {
                DefenseState::new(
                    &self.game,
                    &self.density,
                    &self.plan,
                    self.adversaries.unwrap_or_else(AdversaryMix::honest),
                    self.detector,
                    seed,
                )
            });

        let budgeted = self.options.with_iteration_budget(cfg.solve_budget);
        let base_solver = MeanFieldSolver::with_options(self.game, budgeted);
        let fallback = base_solver.conservative_threshold(&self.density);
        let cache = EquilibriumCache::default();
        let mut fault_rng: StdRng = seeded_rng(seed ^ self.plan.seed.rotate_left(17) ^ 0xFA_17);

        let on = telemetry.enabled();
        let want_tier = on && telemetry.wants(EventKind::TierShift);
        let want_lease = on && telemetry.wants(EventKind::LeaseGranted);
        let want_suspect = on && telemetry.wants(EventKind::AgentSuspected);
        let want_retry = on && telemetry.wants(EventKind::RetryBackoff);
        let want_faults = on && telemetry.wants(EventKind::FaultInjected);
        let want_detect = on && telemetry.wants(EventKind::AdversaryDetected);
        let want_sanction = on
            && (telemetry.wants(EventKind::SanctionApplied)
                || telemetry.wants(EventKind::SanctionLifted));

        // Agent-side state. Every agent boots on the conservative tier:
        // the ladder's floor is also its starting rung, so a threshold
        // is valid from epoch 0.
        let mut agents: Vec<AgentCtl> = (0..n)
            .map(|_| AgentCtl {
                threshold: fallback,
                tier: ControlTier::Conservative,
                lease_until: 0,
                stale_deadline: None,
                next_heartbeat: 0,
                enrolled: false,
                backoff: None,
                attempt: 0,
                crashed: false,
                degraded_since: None,
            })
            .collect();

        // Coordinator-side state.
        let mut last_heard = vec![0usize; n];
        let mut suspect = vec![false; n];
        let mut assignment: Option<(f64, f64, bool)> = None; // (threshold, p_trip, stale)
        let mut assignment_pop: u32 = 0;
        let mut next_solve_at = 0usize;
        let mut solve_backoff: Option<BackoffSchedule> = None;
        let mut solve_attempt = 0u32;

        // Report accumulators.
        let mut tier_epochs = [0u64; 3];
        let mut tier_transitions = 0u64;
        let mut invariant_violations = 0u64;
        let mut resolves = 0u64;
        let mut resolve_failures = 0u64;
        let mut suspects = 0u64;
        let mut lease_grants = 0u64;
        let mut lease_expiries = 0u64;
        let mut recovery_samples: Vec<u64> = Vec::new();
        let mut utility_sum = 0.0f64;
        let mut live_agent_epochs = 0u64;
        // The proxy is evaluated per distinct threshold, memoized by bit
        // pattern — thresholds take a handful of values per run.
        let mut utility_memo: Vec<(u64, f64)> = Vec::new();
        let mut utility_of = |t: f64, density: &DiscreteDensity| -> f64 {
            let bits = t.to_bits();
            if let Some(&(_, u)) = utility_memo.iter().find(|&&(b, _)| b == bits) {
                return u;
            }
            let u = (1.0 - density.tail_mass(t)) + density.partial_expectation(t);
            utility_memo.push((bits, u));
            u
        };
        let heal_epoch = self.plan.partition.as_ref().map(RackPartition::heal_epoch);

        for epoch in 0..self.epochs {
            // 1. Crash churn progresses first (engine convention): agents
            // go down silently and restart cold on the conservative rung.
            if let Some(c) = self.plan.crash {
                for (i, a) in agents.iter_mut().enumerate() {
                    if a.crashed {
                        if fault_rng.gen::<f64>() >= c.p_restart_stay {
                            a.crashed = false;
                            a.threshold = fallback;
                            a.tier = ControlTier::Conservative;
                            a.lease_until = 0;
                            a.stale_deadline = None;
                            a.enrolled = false;
                            a.backoff = None;
                            a.attempt = 0;
                            a.next_heartbeat = epoch;
                            a.degraded_since = None;
                            if want_faults {
                                telemetry.emit(&Event::FaultInjected {
                                    epoch,
                                    kind: FaultKind::Restart,
                                    agent: Some(i as u32),
                                });
                            }
                        }
                    } else if fault_rng.gen::<f64>() < c.crash_probability {
                        a.crashed = true;
                        if want_faults {
                            telemetry.emit(&Event::FaultInjected {
                                epoch,
                                kind: FaultKind::Crash,
                                agent: Some(i as u32),
                            });
                        }
                    }
                }
            }

            // 2. Deliver due messages.
            let mut renewal_requests: Vec<u32> = Vec::new();
            for env in transport.deliver(epoch) {
                match env.to {
                    Address::Coordinator => {
                        let who = env.payload.agent() as usize;
                        if who >= n {
                            continue;
                        }
                        last_heard[who] = epoch;
                        if suspect[who] {
                            // The suspect came back: re-enroll and force
                            // a re-solve over the grown population.
                            suspect[who] = false;
                        }
                        if matches!(env.payload, Payload::Heartbeat { .. }) {
                            renewal_requests.push(who as u32);
                        }
                        if let Payload::ProfileReport {
                            sprints,
                            active,
                            window_end,
                            ..
                        } = env.payload
                        {
                            if window_end > 0 {
                                if let Some(d) = defense.as_mut() {
                                    // The rate the coordinator's current
                                    // assignment implies — its best model
                                    // of a conforming agent.
                                    let expected = self
                                        .density
                                        .tail_mass(assignment.map_or(fallback, |(t, _, _)| t));
                                    d.on_report(
                                        who,
                                        sprints,
                                        active,
                                        window_end,
                                        epoch,
                                        expected,
                                        telemetry,
                                        want_detect,
                                        want_sanction,
                                    );
                                }
                            }
                        }
                    }
                    Address::Agent { id } => {
                        let i = id as usize;
                        if i >= n || agents[i].crashed {
                            continue;
                        }
                        if let Payload::StrategyAssign {
                            threshold,
                            lease_epochs,
                            stale,
                            ..
                        } = env.payload
                        {
                            let a = &mut agents[i];
                            a.threshold = threshold;
                            a.lease_until = epoch + lease_epochs as usize;
                            a.stale_deadline = None;
                            a.backoff = None;
                            a.attempt = 0;
                            let to = if stale {
                                ControlTier::StaleCache
                            } else {
                                ControlTier::Equilibrium
                            };
                            if a.tier != to {
                                if to == ControlTier::Equilibrium {
                                    if let Some(since) = a.degraded_since.take() {
                                        let from = match heal_epoch {
                                            // Degraded through a partition:
                                            // recovery is measured from the
                                            // heal, the earliest instant
                                            // recovery was possible.
                                            Some(h) if since < h && epoch >= h => h,
                                            _ => since,
                                        };
                                        recovery_samples.push((epoch - from) as u64);
                                    }
                                } else if a.tier == ControlTier::Equilibrium
                                    && a.degraded_since.is_none()
                                {
                                    a.degraded_since = Some(epoch);
                                }
                                if want_tier {
                                    telemetry.emit(&Event::TierShift {
                                        epoch,
                                        agent: i as u32,
                                        from: a.tier,
                                        to,
                                    });
                                }
                                a.tier = to;
                                tier_transitions += 1;
                            }
                            lease_grants += 1;
                            if want_lease {
                                telemetry.emit(&Event::LeaseGranted {
                                    epoch,
                                    agent: i as u32,
                                    lease_epochs,
                                    stale,
                                });
                            }
                            transport.send(Envelope {
                                to: Address::Coordinator,
                                payload: Payload::Ack { agent: i as u32 },
                                sent_epoch: epoch,
                            });
                        }
                    }
                }
            }

            // 3. Surface transport fault activations.
            if want_faults {
                for (e, kind) in transport.drain_faults() {
                    telemetry.emit(&Event::FaultInjected {
                        epoch: e,
                        kind,
                        agent: None,
                    });
                }
            }

            // 4. Coordinator: sanction timers, suspicion scan, then
            // solve if the population or assignment demands one.
            if let Some(d) = defense.as_mut() {
                d.tick_sanctions(epoch, telemetry, want_sanction);
                if d.enforcing() {
                    // Barred agents get no renewals: their leases run
                    // out and they descend the ladder until probation
                    // completes.
                    renewal_requests.retain(|&w| !d.barred(w as usize));
                }
            }
            for (i, heard) in last_heard.iter().enumerate() {
                if !suspect[i] && epoch.saturating_sub(*heard) > cfg.suspect_after as usize {
                    suspect[i] = true;
                    suspects += 1;
                    if want_suspect {
                        telemetry.emit(&Event::AgentSuspected {
                            epoch,
                            agent: i as u32,
                            silent_epochs: (epoch - heard) as u32,
                        });
                    }
                }
            }
            // The cooperative population: not suspect and not under an
            // active sanction — re-solves run over the survivors.
            let in_population = |i: usize| {
                !suspect[i]
                    && defense
                        .as_ref()
                        .is_none_or(|d| !(d.enforcing() && d.barred(i)))
            };
            let live = (0..n).filter(|&i| in_population(i)).count() as u32;
            let enrolled_any = agents.iter().any(|a| a.enrolled);
            let needs_solve = enrolled_any
                && live > 0
                && (assignment.is_none_or(|(_, _, stale)| stale) || assignment_pop != live);
            if needs_solve && epoch >= next_solve_at {
                let solver = if live == self.game.n_agents() {
                    base_solver
                } else {
                    let shrunk = GameConfig::builder()
                        .n_agents(live)
                        .n_min(self.game.n_min())
                        .n_max(self.game.n_max())
                        .p_cooling(self.game.p_cooling())
                        .p_recovery(self.game.p_recovery())
                        .discount(self.game.discount())
                        .build()?;
                    MeanFieldSolver::with_options(shrunk, budgeted)
                };
                resolves += 1;
                let span = on.then(|| telemetry.spans.start());
                let solved = cache.solve(&solver, &self.density);
                if let Some(s) = span {
                    telemetry.spans.end("control.solve", s);
                }
                match solved {
                    Ok(eq) => {
                        assignment = Some((eq.threshold(), eq.trip_probability(), false));
                        assignment_pop = live;
                        solve_backoff = None;
                        solve_attempt = 0;
                        next_solve_at = epoch + 1;
                    }
                    Err(_) => {
                        resolve_failures += 1;
                        // Ladder tier 2 at the source: the last cached
                        // assignment, stamped stale. Tier 3 (conservative)
                        // is agent-side — silence gets them there.
                        assignment = cache
                            .latest()
                            .map(|eq| (eq.threshold(), eq.trip_probability(), true));
                        assignment_pop = live;
                        let sched = solve_backoff
                            .get_or_insert_with(|| cfg.retry.schedule(seed ^ 0x50_17E));
                        solve_attempt += 1;
                        let delay = sched
                            .next_delay()
                            .unwrap_or_else(|| cfg.retry.max_delay.max(1));
                        if want_retry {
                            telemetry.emit(&Event::RetryBackoff {
                                epoch,
                                attempt: solve_attempt,
                                delay_epochs: delay,
                            });
                        }
                        next_solve_at = epoch + 1 + delay as usize;
                    }
                }
                if assignment.is_some() {
                    // Broadcast to the live population.
                    for i in (0..n).filter(|&i| in_population(i)) {
                        self.send_assign(transport, assignment, i as u32, epoch, cfg);
                    }
                    renewal_requests.clear();
                }
            }
            // Unicast renewals for heartbeats that did not ride a
            // broadcast this epoch.
            for who in renewal_requests {
                self.send_assign(transport, assignment, who, epoch, cfg);
            }

            // 5. Agent bookkeeping: ladder descent and heartbeats.
            for (i, a) in agents.iter_mut().enumerate() {
                if a.crashed {
                    continue;
                }
                if a.tier != ControlTier::Conservative && epoch >= a.lease_until {
                    match a.stale_deadline {
                        None => {
                            lease_expiries += 1;
                            if on && telemetry.wants(EventKind::LeaseExpired) {
                                telemetry.emit(&Event::LeaseExpired {
                                    epoch,
                                    agent: i as u32,
                                });
                            }
                            a.stale_deadline = Some(epoch + cfg.stale_grace_epochs as usize);
                            if a.tier == ControlTier::Equilibrium {
                                if a.degraded_since.is_none() {
                                    a.degraded_since = Some(epoch);
                                }
                                if want_tier {
                                    telemetry.emit(&Event::TierShift {
                                        epoch,
                                        agent: i as u32,
                                        from: ControlTier::Equilibrium,
                                        to: ControlTier::StaleCache,
                                    });
                                }
                                a.tier = ControlTier::StaleCache;
                                tier_transitions += 1;
                            }
                        }
                        Some(deadline) if epoch >= deadline => {
                            if a.degraded_since.is_none() {
                                a.degraded_since = Some(epoch);
                            }
                            if want_tier {
                                telemetry.emit(&Event::TierShift {
                                    epoch,
                                    agent: i as u32,
                                    from: a.tier,
                                    to: ControlTier::Conservative,
                                });
                            }
                            a.tier = ControlTier::Conservative;
                            a.threshold = fallback;
                            a.stale_deadline = None;
                            tier_transitions += 1;
                        }
                        Some(_) => {}
                    }
                }
                if epoch >= a.next_heartbeat {
                    if !a.enrolled {
                        a.enrolled = true;
                        transport.send(Envelope {
                            to: Address::Coordinator,
                            payload: Payload::ProfileReport {
                                agent: i as u32,
                                sprints: 0,
                                active: 0,
                                window_end: 0,
                            },
                            sent_epoch: epoch,
                        });
                    }
                    transport.send(Envelope {
                        to: Address::Coordinator,
                        payload: Payload::Heartbeat { agent: i as u32 },
                        sent_epoch: epoch,
                    });
                    let healthy = a.tier == ControlTier::Equilibrium
                        && epoch + (cfg.heartbeat_interval as usize) < a.lease_until;
                    if healthy {
                        a.backoff = None;
                        a.attempt = 0;
                        a.next_heartbeat = epoch + cfg.heartbeat_interval as usize;
                    } else {
                        // Renewal is overdue: retry on seeded backoff so
                        // a healing partition is not met by a thundering
                        // herd of synchronized heartbeats.
                        let sched = a.backoff.get_or_insert_with(|| {
                            cfg.retry
                                .schedule(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        });
                        a.attempt += 1;
                        // Clamp to one lease period: however far the
                        // backoff has grown during an outage, a healed
                        // agent re-announces within a single lease.
                        let delay = sched
                            .next_delay()
                            .unwrap_or_else(|| cfg.retry.max_delay.max(1))
                            .min(cfg.lease_epochs);
                        if want_retry {
                            telemetry.emit(&Event::RetryBackoff {
                                epoch,
                                attempt: a.attempt,
                                delay_epochs: delay,
                            });
                        }
                        a.next_heartbeat = epoch + 1 + delay as usize;
                    }
                }

                // 6. Accounting: every live agent holds a valid
                // threshold at every epoch, on some rung.
                if !(a.threshold.is_finite() && a.threshold >= 0.0) {
                    invariant_violations += 1;
                }
                tier_epochs[match a.tier {
                    ControlTier::Equilibrium => 0,
                    ControlTier::StaleCache => 1,
                    ControlTier::Conservative => 2,
                }] += 1;
                utility_sum += utility_of(a.threshold, &self.density);
                live_agent_epochs += 1;
            }

            // 7. Rack dynamics: actual sprinting under the thresholds
            // held this epoch, panel-sensor reports, and the power-gate
            // veto — only when the defense subsystem is attached.
            if let Some(d) = defense.as_mut() {
                d.rack_epoch(epoch, &agents, transport);
            }
        }

        let conservative_utility = utility_of(fallback, &self.density);
        let mean_utility = if live_agent_epochs == 0 {
            conservative_utility
        } else {
            utility_sum / live_agent_epochs as f64
        };
        let mean_recovery_epochs = if recovery_samples.is_empty() {
            None
        } else {
            Some(recovery_samples.iter().sum::<u64>() as f64 / recovery_samples.len() as f64)
        };

        if on {
            let reg = &mut telemetry.registry;
            for (tier, count) in ControlTier::ALL.iter().zip(tier_epochs) {
                let c = reg.counter(&format!("control.tier_epochs.{}", tier.name()));
                reg.inc(c, count);
            }
            let pairs: [(&str, u64); 6] = [
                ("control.resolves", resolves),
                ("control.resolve_failures", resolve_failures),
                ("control.suspects", suspects),
                ("control.lease_grants", lease_grants),
                ("control.lease_expiries", lease_expiries),
                ("control.tier_transitions", tier_transitions),
            ];
            for (name, v) in pairs {
                let c = reg.counter(name);
                reg.inc(c, v);
            }
            let h = reg.histogram(
                "control.recovery_epochs",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            );
            for s in &recovery_samples {
                reg.observe(h, *s as f64);
            }
            let g = reg.gauge("control.mean_utility");
            reg.set(g, mean_utility);
            if let Some(d) = &defense {
                d.export_metrics(reg);
            }
            cache.export_metrics(reg);
        }

        Ok(ControlReport {
            agents: self.game.n_agents(),
            epochs: self.epochs,
            tier_epochs,
            tier_transitions,
            invariant_violations,
            resolves,
            resolve_failures,
            suspects,
            lease_grants,
            lease_expiries,
            recoveries: recovery_samples.len() as u64,
            mean_recovery_epochs,
            mean_utility,
            conservative_utility,
            messages: transport.stats(),
            defense: defense.map(|d| d.finish(self.epochs)),
        })
    }

    fn send_assign(
        &self,
        transport: &mut dyn Transport,
        assignment: Option<(f64, f64, bool)>,
        agent: u32,
        epoch: usize,
        cfg: &ControlConfig,
    ) {
        if let Some((threshold, trip_probability, stale)) = assignment {
            transport.send(Envelope {
                to: Address::Agent { id: agent },
                payload: Payload::StrategyAssign {
                    agent,
                    threshold,
                    trip_probability,
                    lease_epochs: cfg.lease_epochs,
                    stale,
                },
                sent_epoch: epoch,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::Benchmark;

    fn sim(agents: u32, epochs: usize) -> ControlSim {
        let game = GameConfig::builder()
            .n_agents(agents)
            .n_min(f64::from(agents) * 0.25)
            .n_max(f64::from(agents) * 0.75)
            .build()
            .unwrap();
        let density = Benchmark::DecisionTree.utility_density(256).unwrap();
        ControlSim::new(game, density, epochs).unwrap()
    }

    #[test]
    fn clean_transport_reaches_and_holds_the_equilibrium_tier() {
        let report = sim(32, 400).run(7, &mut Telemetry::noop()).unwrap();
        assert_eq!(report.invariant_violations, 0);
        assert_eq!(report.messages.lost, 0);
        assert_eq!(report.resolve_failures, 0);
        let [eq, stale, cons] = report.tier_epochs;
        assert!(
            eq > 9 * (stale + cons),
            "healthy racks live on the equilibrium tier: {:?}",
            report.tier_epochs
        );
        assert!(report.lease_grants > 0);
        assert!(report.mean_utility >= report.conservative_utility);
    }

    #[test]
    fn reports_are_bit_reproducible() {
        let s = sim(24, 300).with_faults(FaultPlan::partition_chaos(3, 80, 3));
        let a = s.run(11, &mut Telemetry::noop()).unwrap();
        let b = s.run(11, &mut Telemetry::noop()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn perfect_transport_injection_matches_empty_fault_plan() {
        let s = sim(16, 200);
        let via_plan = s.run(5, &mut Telemetry::noop()).unwrap();
        let mut perfect = PerfectTransport::new();
        let injected = s
            .run_with_transport(&mut perfect, 5, &mut Telemetry::noop())
            .unwrap();
        assert_eq!(via_plan, injected);
    }

    #[test]
    fn faulty_transport_is_deterministic_and_lossy() {
        let plan = FaultPlan::partition_chaos(9, 50, 3);
        let mk = || {
            let mut t = FaultyTransport::new(&plan, 8, 123);
            for e in 0..60usize {
                t.send(Envelope {
                    to: Address::Coordinator,
                    payload: Payload::Heartbeat { agent: 3 },
                    sent_epoch: e,
                });
            }
            let mut delivered = Vec::new();
            for e in 0..80usize {
                delivered.extend(t.deliver(e));
            }
            (t.stats(), delivered.len())
        };
        let (sa, da) = mk();
        let (sb, db) = mk();
        assert_eq!(sa, sb);
        assert_eq!(da, db);
        assert!(sa.lost > 0, "20% loss over 60 sends must drop something");
        assert!(sa.partition_drops > 0, "the window must cut traffic");
        assert_eq!(
            sa.delivered + sa.lost + sa.partition_drops,
            sa.sent + sa.duplicated,
            "every copy is delivered, lost, or cut"
        );
    }

    #[test]
    fn config_validation_rejects_degenerate_windows() {
        let bad = ControlConfig {
            heartbeat_interval: 20,
            lease_epochs: 20,
            ..ControlConfig::default()
        };
        assert!(bad.validate().is_err());
        let zero = ControlConfig {
            lease_epochs: 0,
            ..ControlConfig::default()
        };
        assert!(zero.validate().is_err());
    }
}
