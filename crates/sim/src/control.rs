//! The supervised coordinator↔agent control plane.
//!
//! The paper's architecture (§2.3, Figure 4) separates an *offline*
//! coordinator — collect profiles, run Algorithm 1, hand each agent a
//! threshold strategy — from *online* agents that self-enforce the
//! assigned equilibrium. The base [`sprint_game::coordinator`] assumes
//! that handoff rides a lossless, instantaneous channel. This module
//! drops that assumption: messages flow through an injectable
//! [`Transport`] that may lose, delay, duplicate, or partition them,
//! and the protocol is built to survive it.
//!
//! The protocol, epoch by epoch:
//!
//! - **Messages** ([`Payload`]): agents send `ProfileReport` (once, at
//!   enrollment) and periodic `Heartbeat`s; the coordinator answers
//!   with `StrategyAssign` carrying a threshold and a lease; agents
//!   `Ack` adoption. Every message is idempotent, so duplicates and
//!   stale retransmissions are harmless.
//! - **Leases**: a `StrategyAssign` is valid for
//!   [`ControlConfig::lease_epochs`]. Agents heartbeat well inside the
//!   lease to renew it; an agent whose renewals go unanswered retries
//!   on a bounded exponential backoff with seeded jitter
//!   ([`sprint_game::retry`]).
//! - **Suspicion**: the coordinator marks agents silent for more than
//!   [`ControlConfig::suspect_after`] epochs as suspect and re-solves
//!   the equilibrium over the surviving population; a heartbeat from a
//!   suspect re-enrolls it (and triggers another re-solve).
//! - **Degradation ladder** ([`ControlTier`]): every agent holds a
//!   valid threshold at every epoch. Preferred: a leased, freshly
//!   solved equilibrium. If the coordinator is unreachable or its
//!   solve fails ([`GameError::NonConvergence`] under an iteration
//!   budget), the agent runs its last assignment stamped stale; past a
//!   grace window it falls to the provably breaker-safe conservative
//!   threshold. Each rung transition emits one typed
//!   [`Event::TierShift`], and the climb back to the equilibrium tier
//!   is measured into a recovery-latency histogram.
//!
//! Everything is deterministic: transport faults draw from a dedicated
//! seeded stream, backoff jitter is seeded per participant, and agents
//! are iterated in index order — the same seed yields a bit-identical
//! [`ControlReport`].

use rand::rngs::StdRng;
use rand::Rng;

use sprint_game::cache::EquilibriumCache;
use sprint_game::meanfield::SolverOptions;
use sprint_game::retry::BackoffSchedule;
use sprint_game::{GameConfig, MeanFieldSolver, RetryPolicy};
use sprint_stats::density::DiscreteDensity;
use sprint_stats::rng::seeded_rng;
use sprint_telemetry::{ControlTier, Event, EventKind, FaultKind, Telemetry};

use crate::faults::{FaultPlan, RackPartition, TransportFault};
use crate::SimError;

/// Where a control-plane message is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Address {
    /// The rack coordinator.
    Coordinator,
    /// One agent, by index.
    Agent {
        /// Agent index.
        id: u32,
    },
}

/// A control-plane message body.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Payload {
    /// An agent enrolls its utility profile with the coordinator.
    ProfileReport {
        /// Reporting agent.
        agent: u32,
    },
    /// An agent signals liveness and asks for lease renewal.
    Heartbeat {
        /// Heartbeating agent.
        agent: u32,
    },
    /// The coordinator assigns (or renews) a leased strategy.
    StrategyAssign {
        /// Receiving agent.
        agent: u32,
        /// Assigned sprint threshold.
        threshold: f64,
        /// Advertised stationary tripping probability.
        trip_probability: f64,
        /// Lease duration, in epochs from receipt.
        lease_epochs: u32,
        /// Whether the strategy came from the stale-cache tier (the
        /// coordinator could not produce a fresh solve).
        stale: bool,
    },
    /// An agent acknowledges an adopted assignment.
    Ack {
        /// Acknowledging agent.
        agent: u32,
    },
}

impl Payload {
    /// The agent on whose behalf this message travels (for partition
    /// checks on coordinator-bound traffic).
    #[must_use]
    pub fn agent(&self) -> u32 {
        match *self {
            Payload::ProfileReport { agent }
            | Payload::Heartbeat { agent }
            | Payload::StrategyAssign { agent, .. }
            | Payload::Ack { agent } => agent,
        }
    }
}

/// One queued control-plane message.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Envelope {
    /// Destination.
    pub to: Address,
    /// Message body.
    pub payload: Payload,
    /// Epoch the sender handed it to the transport.
    pub sent_epoch: usize,
}

/// Cumulative transport counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct TransportStats {
    /// Messages handed to the transport.
    pub sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages silently dropped by the lossy channel.
    pub lost: u64,
    /// Messages delivered late.
    pub delayed: u64,
    /// Extra deliveries from duplication.
    pub duplicated: u64,
    /// Messages dropped because an endpoint was partitioned.
    pub partition_drops: u64,
}

/// The injectable message channel between coordinator and agents.
///
/// Implementations must be deterministic: the delivery schedule may
/// depend only on the messages sent and the transport's own seed.
/// Minimum latency is one epoch — a message sent at epoch `e` is
/// deliverable at `e + 1` at the earliest — so the control plane never
/// depends on same-epoch round trips.
pub trait Transport {
    /// Queue a message.
    fn send(&mut self, env: Envelope);
    /// Remove and return every message due at `epoch`, in a
    /// deterministic order.
    fn deliver(&mut self, epoch: usize) -> Vec<Envelope>;
    /// Cumulative counters.
    fn stats(&self) -> TransportStats;
    /// Drain the log of fault activations since the last call
    /// (empty for well-behaved transports).
    fn drain_faults(&mut self) -> Vec<(usize, FaultKind)> {
        Vec::new()
    }
}

/// A reliable transport: every message arrives exactly once, one epoch
/// after it was sent, in send order.
#[derive(Debug, Default)]
pub struct PerfectTransport {
    queue: Vec<(usize, u64, Envelope)>,
    seq: u64,
    stats: TransportStats,
}

impl PerfectTransport {
    /// An empty reliable transport.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for PerfectTransport {
    fn send(&mut self, env: Envelope) {
        self.stats.sent += 1;
        self.queue.push((env.sent_epoch + 1, self.seq, env));
        self.seq += 1;
    }

    fn deliver(&mut self, epoch: usize) -> Vec<Envelope> {
        let mut due: Vec<(usize, u64, Envelope)> = Vec::new();
        self.queue.retain(|item| {
            if item.0 <= epoch {
                due.push(*item);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|&(_, seq, _)| seq);
        self.stats.delivered += due.len() as u64;
        due.into_iter().map(|(_, _, env)| env).collect()
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// A deterministic fault-injecting transport: message loss, delay,
/// duplication ([`TransportFault`]) and rack partitions
/// ([`RackPartition`]), all drawn from a dedicated seeded stream.
///
/// Partition semantics: a message is dropped when its agent endpoint is
/// cut at the *send* epoch or at the delivery epoch — in-flight traffic
/// does not survive a partition closing around it, and nothing is
/// queued for later.
#[derive(Debug)]
pub struct FaultyTransport {
    fault: Option<TransportFault>,
    partition: Option<RackPartition>,
    n_agents: u32,
    queue: Vec<(usize, u64, Envelope)>,
    seq: u64,
    rng: StdRng,
    stats: TransportStats,
    fault_log: Vec<(usize, FaultKind)>,
}

impl FaultyTransport {
    /// Build from a fault plan's transport components. With both absent
    /// the behavior is identical to [`PerfectTransport`].
    #[must_use]
    pub fn new(plan: &FaultPlan, n_agents: u32, seed: u64) -> Self {
        FaultyTransport {
            fault: plan.transport,
            partition: plan.partition,
            n_agents,
            queue: Vec::new(),
            seq: 0,
            rng: seeded_rng(seed ^ plan.seed.rotate_left(29) ^ 0xC0_117),
            stats: TransportStats::default(),
            fault_log: Vec::new(),
        }
    }

    fn cut(&self, epoch: usize, agent: u32) -> bool {
        self.partition
            .is_some_and(|p| p.cuts(epoch, agent, self.n_agents))
    }

    fn enqueue(&mut self, env: Envelope, extra_delay: usize) {
        self.queue
            .push((env.sent_epoch + 1 + extra_delay, self.seq, env));
        self.seq += 1;
    }
}

impl Transport for FaultyTransport {
    fn send(&mut self, env: Envelope) {
        self.stats.sent += 1;
        let agent = env.payload.agent();
        if self.cut(env.sent_epoch, agent) {
            self.stats.partition_drops += 1;
            self.fault_log.push((env.sent_epoch, FaultKind::Partition));
            return;
        }
        let Some(f) = self.fault else {
            self.enqueue(env, 0);
            return;
        };
        if self.rng.gen::<f64>() < f.loss_probability {
            self.stats.lost += 1;
            self.fault_log
                .push((env.sent_epoch, FaultKind::MessageLoss));
            return;
        }
        let delay = if f.max_delay_epochs > 0 && self.rng.gen::<f64>() < f.delay_probability {
            let d = self.rng.gen_range(1..=f.max_delay_epochs) as usize;
            self.stats.delayed += 1;
            self.fault_log
                .push((env.sent_epoch, FaultKind::MessageDelay));
            d
        } else {
            0
        };
        self.enqueue(env, delay);
        if self.rng.gen::<f64>() < f.duplicate_probability {
            self.stats.duplicated += 1;
            self.fault_log
                .push((env.sent_epoch, FaultKind::MessageDuplicate));
            self.enqueue(env, delay);
        }
    }

    fn deliver(&mut self, epoch: usize) -> Vec<Envelope> {
        let mut due: Vec<(usize, u64, Envelope)> = Vec::new();
        self.queue.retain(|item| {
            if item.0 <= epoch {
                due.push(*item);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|&(_, seq, _)| seq);
        let mut out = Vec::with_capacity(due.len());
        for (_, _, env) in due {
            if self.cut(epoch, env.payload.agent()) {
                self.stats.partition_drops += 1;
                self.fault_log.push((epoch, FaultKind::Partition));
                continue;
            }
            self.stats.delivered += 1;
            out.push(env);
        }
        out
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn drain_faults(&mut self) -> Vec<(usize, FaultKind)> {
        std::mem::take(&mut self.fault_log)
    }
}

/// Timing and retry knobs for the control plane.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControlConfig {
    /// Epochs a `StrategyAssign` stays valid.
    pub lease_epochs: u32,
    /// Epochs between routine heartbeats while the lease is healthy.
    pub heartbeat_interval: u32,
    /// Epochs of silence before the coordinator suspects an agent.
    pub suspect_after: u32,
    /// Epochs an expired assignment may run stale before the agent
    /// falls to the conservative tier.
    pub stale_grace_epochs: u32,
    /// Backoff policy for unanswered renewals and failed solves.
    pub retry: RetryPolicy,
    /// Iteration budget per coordinator solve (the deterministic solve
    /// deadline threaded into [`MeanFieldSolver`]).
    pub solve_budget: usize,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            lease_epochs: 20,
            heartbeat_interval: 5,
            suspect_after: 12,
            stale_grace_epochs: 10,
            retry: RetryPolicy::default(),
            solve_budget: 50_000,
        }
    }
}

impl ControlConfig {
    /// Validate the timing parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when any window is zero
    /// or the heartbeat interval does not fit inside the lease.
    pub fn validate(&self) -> crate::Result<()> {
        let positive: [(&'static str, u32); 4] = [
            ("lease_epochs", self.lease_epochs),
            ("heartbeat_interval", self.heartbeat_interval),
            ("suspect_after", self.suspect_after),
            (
                "solve_budget",
                u32::try_from(self.solve_budget.min(1)).unwrap_or(1),
            ),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(SimError::InvalidParameter {
                    name,
                    value: 0.0,
                    expected: "a positive epoch count",
                });
            }
        }
        if self.heartbeat_interval >= self.lease_epochs {
            return Err(SimError::InvalidParameter {
                name: "heartbeat_interval",
                value: f64::from(self.heartbeat_interval),
                expected: "an interval strictly inside the lease window",
            });
        }
        Ok(())
    }
}

/// Deterministic outcome summary of one control-plane run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControlReport {
    /// Agents simulated.
    pub agents: u32,
    /// Epochs simulated.
    pub epochs: usize,
    /// Live agent-epochs spent on each ladder tier
    /// (`[equilibrium, stale_cache, conservative]`).
    pub tier_epochs: [u64; 3],
    /// Total ladder transitions across all agents.
    pub tier_transitions: u64,
    /// Epochs at which an agent held an unusable threshold (must be 0).
    pub invariant_violations: u64,
    /// Coordinator solve attempts.
    pub resolves: u64,
    /// Coordinator solves that failed (budget exhausted or divergent).
    pub resolve_failures: u64,
    /// Agents marked suspect (cumulative).
    pub suspects: u64,
    /// Strategy leases granted or renewed.
    pub lease_grants: u64,
    /// Leases that lapsed without renewal.
    pub lease_expiries: u64,
    /// Completed recoveries back to the equilibrium tier.
    pub recoveries: u64,
    /// Mean epochs from degradation (or partition heal, whichever is
    /// later) back to the equilibrium tier; `None` when no agent ever
    /// recovered.
    pub mean_recovery_epochs: Option<f64>,
    /// Mean per-agent-epoch sprint-gain proxy actually realized:
    /// `(1 − P(u > T)) + E[u · 1(u > T)]` at each held threshold.
    /// Ignores cooling externalities — it compares ladder tiers, not
    /// policies.
    pub mean_utility: f64,
    /// The same proxy for a rack pinned to the conservative threshold.
    pub conservative_utility: f64,
    /// Transport counters.
    pub messages: TransportStats,
}

struct AgentCtl {
    threshold: f64,
    tier: ControlTier,
    lease_until: usize,
    stale_deadline: Option<usize>,
    next_heartbeat: usize,
    enrolled: bool,
    backoff: Option<BackoffSchedule>,
    attempt: u32,
    crashed: bool,
    degraded_since: Option<usize>,
}

/// An epoch-driven simulation of the control plane for one homogeneous
/// rack (the coordinator, `n` agents, and a transport between them).
#[derive(Debug, Clone)]
pub struct ControlSim {
    game: GameConfig,
    density: DiscreteDensity,
    options: SolverOptions,
    plan: FaultPlan,
    config: ControlConfig,
    epochs: usize,
}

impl ControlSim {
    /// A control-plane simulation of `epochs` epochs over the agents of
    /// `game`, all running the profile `density`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `epochs` is zero.
    pub fn new(game: GameConfig, density: DiscreteDensity, epochs: usize) -> crate::Result<Self> {
        if epochs == 0 {
            return Err(SimError::InvalidParameter {
                name: "epochs",
                value: 0.0,
                expected: "at least one epoch",
            });
        }
        Ok(ControlSim {
            game,
            density,
            options: SolverOptions::default(),
            plan: FaultPlan::none(),
            config: ControlConfig::default(),
            epochs,
        })
    }

    /// Override the solver options (the control plane adds its own
    /// iteration budget on top).
    #[must_use]
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach a fault plan (transport faults, partitions, crash churn).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Override the control-plane timing/retry configuration.
    #[must_use]
    pub fn with_control(mut self, config: ControlConfig) -> Self {
        self.config = config;
        self
    }

    /// The control configuration in effect.
    #[must_use]
    pub fn control(&self) -> &ControlConfig {
        &self.config
    }

    /// Run with the fault plan's own [`FaultyTransport`].
    ///
    /// # Errors
    ///
    /// As [`ControlSim::run_with_transport`].
    pub fn run(&self, seed: u64, telemetry: &mut Telemetry) -> crate::Result<ControlReport> {
        let mut transport = FaultyTransport::new(&self.plan, self.game.n_agents(), seed);
        self.run_with_transport(&mut transport, seed, telemetry)
    }

    /// Run the message loop over an injected transport.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for invalid fault or
    /// control configurations. Solver failures never error: they are
    /// what the degradation ladder absorbs.
    pub fn run_with_transport(
        &self,
        transport: &mut dyn Transport,
        seed: u64,
        telemetry: &mut Telemetry,
    ) -> crate::Result<ControlReport> {
        self.plan.validate()?;
        self.config.validate()?;
        let n = self.game.n_agents() as usize;
        let cfg = &self.config;

        let budgeted = self.options.with_iteration_budget(cfg.solve_budget);
        let base_solver = MeanFieldSolver::with_options(self.game, budgeted);
        let fallback = base_solver.conservative_threshold(&self.density);
        let cache = EquilibriumCache::default();
        let mut fault_rng: StdRng = seeded_rng(seed ^ self.plan.seed.rotate_left(17) ^ 0xFA_17);

        let on = telemetry.enabled();
        let want_tier = on && telemetry.wants(EventKind::TierShift);
        let want_lease = on && telemetry.wants(EventKind::LeaseGranted);
        let want_suspect = on && telemetry.wants(EventKind::AgentSuspected);
        let want_retry = on && telemetry.wants(EventKind::RetryBackoff);
        let want_faults = on && telemetry.wants(EventKind::FaultInjected);

        // Agent-side state. Every agent boots on the conservative tier:
        // the ladder's floor is also its starting rung, so a threshold
        // is valid from epoch 0.
        let mut agents: Vec<AgentCtl> = (0..n)
            .map(|_| AgentCtl {
                threshold: fallback,
                tier: ControlTier::Conservative,
                lease_until: 0,
                stale_deadline: None,
                next_heartbeat: 0,
                enrolled: false,
                backoff: None,
                attempt: 0,
                crashed: false,
                degraded_since: None,
            })
            .collect();

        // Coordinator-side state.
        let mut last_heard = vec![0usize; n];
        let mut suspect = vec![false; n];
        let mut assignment: Option<(f64, f64, bool)> = None; // (threshold, p_trip, stale)
        let mut assignment_pop: u32 = 0;
        let mut next_solve_at = 0usize;
        let mut solve_backoff: Option<BackoffSchedule> = None;
        let mut solve_attempt = 0u32;

        // Report accumulators.
        let mut tier_epochs = [0u64; 3];
        let mut tier_transitions = 0u64;
        let mut invariant_violations = 0u64;
        let mut resolves = 0u64;
        let mut resolve_failures = 0u64;
        let mut suspects = 0u64;
        let mut lease_grants = 0u64;
        let mut lease_expiries = 0u64;
        let mut recovery_samples: Vec<u64> = Vec::new();
        let mut utility_sum = 0.0f64;
        let mut live_agent_epochs = 0u64;
        // The proxy is evaluated per distinct threshold, memoized by bit
        // pattern — thresholds take a handful of values per run.
        let mut utility_memo: Vec<(u64, f64)> = Vec::new();
        let mut utility_of = |t: f64, density: &DiscreteDensity| -> f64 {
            let bits = t.to_bits();
            if let Some(&(_, u)) = utility_memo.iter().find(|&&(b, _)| b == bits) {
                return u;
            }
            let u = (1.0 - density.tail_mass(t)) + density.partial_expectation(t);
            utility_memo.push((bits, u));
            u
        };
        let heal_epoch = self.plan.partition.as_ref().map(RackPartition::heal_epoch);

        for epoch in 0..self.epochs {
            // 1. Crash churn progresses first (engine convention): agents
            // go down silently and restart cold on the conservative rung.
            if let Some(c) = self.plan.crash {
                for (i, a) in agents.iter_mut().enumerate() {
                    if a.crashed {
                        if fault_rng.gen::<f64>() >= c.p_restart_stay {
                            a.crashed = false;
                            a.threshold = fallback;
                            a.tier = ControlTier::Conservative;
                            a.lease_until = 0;
                            a.stale_deadline = None;
                            a.enrolled = false;
                            a.backoff = None;
                            a.attempt = 0;
                            a.next_heartbeat = epoch;
                            a.degraded_since = None;
                            if want_faults {
                                telemetry.emit(&Event::FaultInjected {
                                    epoch,
                                    kind: FaultKind::Restart,
                                    agent: Some(i as u32),
                                });
                            }
                        }
                    } else if fault_rng.gen::<f64>() < c.crash_probability {
                        a.crashed = true;
                        if want_faults {
                            telemetry.emit(&Event::FaultInjected {
                                epoch,
                                kind: FaultKind::Crash,
                                agent: Some(i as u32),
                            });
                        }
                    }
                }
            }

            // 2. Deliver due messages.
            let mut renewal_requests: Vec<u32> = Vec::new();
            for env in transport.deliver(epoch) {
                match env.to {
                    Address::Coordinator => {
                        let who = env.payload.agent() as usize;
                        if who >= n {
                            continue;
                        }
                        last_heard[who] = epoch;
                        if suspect[who] {
                            // The suspect came back: re-enroll and force
                            // a re-solve over the grown population.
                            suspect[who] = false;
                        }
                        if matches!(env.payload, Payload::Heartbeat { .. }) {
                            renewal_requests.push(who as u32);
                        }
                    }
                    Address::Agent { id } => {
                        let i = id as usize;
                        if i >= n || agents[i].crashed {
                            continue;
                        }
                        if let Payload::StrategyAssign {
                            threshold,
                            lease_epochs,
                            stale,
                            ..
                        } = env.payload
                        {
                            let a = &mut agents[i];
                            a.threshold = threshold;
                            a.lease_until = epoch + lease_epochs as usize;
                            a.stale_deadline = None;
                            a.backoff = None;
                            a.attempt = 0;
                            let to = if stale {
                                ControlTier::StaleCache
                            } else {
                                ControlTier::Equilibrium
                            };
                            if a.tier != to {
                                if to == ControlTier::Equilibrium {
                                    if let Some(since) = a.degraded_since.take() {
                                        let from = match heal_epoch {
                                            // Degraded through a partition:
                                            // recovery is measured from the
                                            // heal, the earliest instant
                                            // recovery was possible.
                                            Some(h) if since < h && epoch >= h => h,
                                            _ => since,
                                        };
                                        recovery_samples.push((epoch - from) as u64);
                                    }
                                } else if a.tier == ControlTier::Equilibrium
                                    && a.degraded_since.is_none()
                                {
                                    a.degraded_since = Some(epoch);
                                }
                                if want_tier {
                                    telemetry.emit(&Event::TierShift {
                                        epoch,
                                        agent: i as u32,
                                        from: a.tier,
                                        to,
                                    });
                                }
                                a.tier = to;
                                tier_transitions += 1;
                            }
                            lease_grants += 1;
                            if want_lease {
                                telemetry.emit(&Event::LeaseGranted {
                                    epoch,
                                    agent: i as u32,
                                    lease_epochs,
                                    stale,
                                });
                            }
                            transport.send(Envelope {
                                to: Address::Coordinator,
                                payload: Payload::Ack { agent: i as u32 },
                                sent_epoch: epoch,
                            });
                        }
                    }
                }
            }

            // 3. Surface transport fault activations.
            if want_faults {
                for (e, kind) in transport.drain_faults() {
                    telemetry.emit(&Event::FaultInjected {
                        epoch: e,
                        kind,
                        agent: None,
                    });
                }
            }

            // 4. Coordinator: suspicion scan, then solve if the
            // population or assignment demands one.
            for (i, heard) in last_heard.iter().enumerate() {
                if !suspect[i] && epoch.saturating_sub(*heard) > cfg.suspect_after as usize {
                    suspect[i] = true;
                    suspects += 1;
                    if want_suspect {
                        telemetry.emit(&Event::AgentSuspected {
                            epoch,
                            agent: i as u32,
                            silent_epochs: (epoch - heard) as u32,
                        });
                    }
                }
            }
            let live = suspect.iter().filter(|s| !**s).count() as u32;
            let enrolled_any = agents.iter().any(|a| a.enrolled);
            let needs_solve = enrolled_any
                && live > 0
                && (assignment.is_none_or(|(_, _, stale)| stale) || assignment_pop != live);
            if needs_solve && epoch >= next_solve_at {
                let solver = if live == self.game.n_agents() {
                    base_solver
                } else {
                    let shrunk = GameConfig::builder()
                        .n_agents(live)
                        .n_min(self.game.n_min())
                        .n_max(self.game.n_max())
                        .p_cooling(self.game.p_cooling())
                        .p_recovery(self.game.p_recovery())
                        .discount(self.game.discount())
                        .build()?;
                    MeanFieldSolver::with_options(shrunk, budgeted)
                };
                resolves += 1;
                let span = on.then(|| telemetry.spans.start());
                let solved = cache.solve(&solver, &self.density);
                if let Some(s) = span {
                    telemetry.spans.end("control.solve", s);
                }
                match solved {
                    Ok(eq) => {
                        assignment = Some((eq.threshold(), eq.trip_probability(), false));
                        assignment_pop = live;
                        solve_backoff = None;
                        solve_attempt = 0;
                        next_solve_at = epoch + 1;
                    }
                    Err(_) => {
                        resolve_failures += 1;
                        // Ladder tier 2 at the source: the last cached
                        // assignment, stamped stale. Tier 3 (conservative)
                        // is agent-side — silence gets them there.
                        assignment = cache
                            .latest()
                            .map(|eq| (eq.threshold(), eq.trip_probability(), true));
                        assignment_pop = live;
                        let sched = solve_backoff
                            .get_or_insert_with(|| cfg.retry.schedule(seed ^ 0x50_17E));
                        solve_attempt += 1;
                        let delay = sched
                            .next_delay()
                            .unwrap_or_else(|| cfg.retry.max_delay.max(1));
                        if want_retry {
                            telemetry.emit(&Event::RetryBackoff {
                                epoch,
                                attempt: solve_attempt,
                                delay_epochs: delay,
                            });
                        }
                        next_solve_at = epoch + 1 + delay as usize;
                    }
                }
                if assignment.is_some() {
                    // Broadcast to the live population.
                    for (i, _) in suspect.iter().enumerate().filter(|&(_, &s)| !s) {
                        self.send_assign(transport, assignment, i as u32, epoch, cfg);
                    }
                    renewal_requests.clear();
                }
            }
            // Unicast renewals for heartbeats that did not ride a
            // broadcast this epoch.
            for who in renewal_requests {
                self.send_assign(transport, assignment, who, epoch, cfg);
            }

            // 5. Agent bookkeeping: ladder descent and heartbeats.
            for (i, a) in agents.iter_mut().enumerate() {
                if a.crashed {
                    continue;
                }
                if a.tier != ControlTier::Conservative && epoch >= a.lease_until {
                    match a.stale_deadline {
                        None => {
                            lease_expiries += 1;
                            if on && telemetry.wants(EventKind::LeaseExpired) {
                                telemetry.emit(&Event::LeaseExpired {
                                    epoch,
                                    agent: i as u32,
                                });
                            }
                            a.stale_deadline = Some(epoch + cfg.stale_grace_epochs as usize);
                            if a.tier == ControlTier::Equilibrium {
                                if a.degraded_since.is_none() {
                                    a.degraded_since = Some(epoch);
                                }
                                if want_tier {
                                    telemetry.emit(&Event::TierShift {
                                        epoch,
                                        agent: i as u32,
                                        from: ControlTier::Equilibrium,
                                        to: ControlTier::StaleCache,
                                    });
                                }
                                a.tier = ControlTier::StaleCache;
                                tier_transitions += 1;
                            }
                        }
                        Some(deadline) if epoch >= deadline => {
                            if a.degraded_since.is_none() {
                                a.degraded_since = Some(epoch);
                            }
                            if want_tier {
                                telemetry.emit(&Event::TierShift {
                                    epoch,
                                    agent: i as u32,
                                    from: a.tier,
                                    to: ControlTier::Conservative,
                                });
                            }
                            a.tier = ControlTier::Conservative;
                            a.threshold = fallback;
                            a.stale_deadline = None;
                            tier_transitions += 1;
                        }
                        Some(_) => {}
                    }
                }
                if epoch >= a.next_heartbeat {
                    if !a.enrolled {
                        a.enrolled = true;
                        transport.send(Envelope {
                            to: Address::Coordinator,
                            payload: Payload::ProfileReport { agent: i as u32 },
                            sent_epoch: epoch,
                        });
                    }
                    transport.send(Envelope {
                        to: Address::Coordinator,
                        payload: Payload::Heartbeat { agent: i as u32 },
                        sent_epoch: epoch,
                    });
                    let healthy = a.tier == ControlTier::Equilibrium
                        && epoch + (cfg.heartbeat_interval as usize) < a.lease_until;
                    if healthy {
                        a.backoff = None;
                        a.attempt = 0;
                        a.next_heartbeat = epoch + cfg.heartbeat_interval as usize;
                    } else {
                        // Renewal is overdue: retry on seeded backoff so
                        // a healing partition is not met by a thundering
                        // herd of synchronized heartbeats.
                        let sched = a.backoff.get_or_insert_with(|| {
                            cfg.retry
                                .schedule(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        });
                        a.attempt += 1;
                        // Clamp to one lease period: however far the
                        // backoff has grown during an outage, a healed
                        // agent re-announces within a single lease.
                        let delay = sched
                            .next_delay()
                            .unwrap_or_else(|| cfg.retry.max_delay.max(1))
                            .min(cfg.lease_epochs);
                        if want_retry {
                            telemetry.emit(&Event::RetryBackoff {
                                epoch,
                                attempt: a.attempt,
                                delay_epochs: delay,
                            });
                        }
                        a.next_heartbeat = epoch + 1 + delay as usize;
                    }
                }

                // 6. Accounting: every live agent holds a valid
                // threshold at every epoch, on some rung.
                if !(a.threshold.is_finite() && a.threshold >= 0.0) {
                    invariant_violations += 1;
                }
                tier_epochs[match a.tier {
                    ControlTier::Equilibrium => 0,
                    ControlTier::StaleCache => 1,
                    ControlTier::Conservative => 2,
                }] += 1;
                utility_sum += utility_of(a.threshold, &self.density);
                live_agent_epochs += 1;
            }
        }

        let conservative_utility = utility_of(fallback, &self.density);
        let mean_utility = if live_agent_epochs == 0 {
            conservative_utility
        } else {
            utility_sum / live_agent_epochs as f64
        };
        let mean_recovery_epochs = if recovery_samples.is_empty() {
            None
        } else {
            Some(recovery_samples.iter().sum::<u64>() as f64 / recovery_samples.len() as f64)
        };

        if on {
            let reg = &mut telemetry.registry;
            for (tier, count) in ControlTier::ALL.iter().zip(tier_epochs) {
                let c = reg.counter(&format!("control.tier_epochs.{}", tier.name()));
                reg.inc(c, count);
            }
            let pairs: [(&str, u64); 6] = [
                ("control.resolves", resolves),
                ("control.resolve_failures", resolve_failures),
                ("control.suspects", suspects),
                ("control.lease_grants", lease_grants),
                ("control.lease_expiries", lease_expiries),
                ("control.tier_transitions", tier_transitions),
            ];
            for (name, v) in pairs {
                let c = reg.counter(name);
                reg.inc(c, v);
            }
            let h = reg.histogram(
                "control.recovery_epochs",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            );
            for s in &recovery_samples {
                reg.observe(h, *s as f64);
            }
            let g = reg.gauge("control.mean_utility");
            reg.set(g, mean_utility);
            cache.export_metrics(reg);
        }

        Ok(ControlReport {
            agents: self.game.n_agents(),
            epochs: self.epochs,
            tier_epochs,
            tier_transitions,
            invariant_violations,
            resolves,
            resolve_failures,
            suspects,
            lease_grants,
            lease_expiries,
            recoveries: recovery_samples.len() as u64,
            mean_recovery_epochs,
            mean_utility,
            conservative_utility,
            messages: transport.stats(),
        })
    }

    fn send_assign(
        &self,
        transport: &mut dyn Transport,
        assignment: Option<(f64, f64, bool)>,
        agent: u32,
        epoch: usize,
        cfg: &ControlConfig,
    ) {
        if let Some((threshold, trip_probability, stale)) = assignment {
            transport.send(Envelope {
                to: Address::Agent { id: agent },
                payload: Payload::StrategyAssign {
                    agent,
                    threshold,
                    trip_probability,
                    lease_epochs: cfg.lease_epochs,
                    stale,
                },
                sent_epoch: epoch,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::Benchmark;

    fn sim(agents: u32, epochs: usize) -> ControlSim {
        let game = GameConfig::builder()
            .n_agents(agents)
            .n_min(f64::from(agents) * 0.25)
            .n_max(f64::from(agents) * 0.75)
            .build()
            .unwrap();
        let density = Benchmark::DecisionTree.utility_density(256).unwrap();
        ControlSim::new(game, density, epochs).unwrap()
    }

    #[test]
    fn clean_transport_reaches_and_holds_the_equilibrium_tier() {
        let report = sim(32, 400).run(7, &mut Telemetry::noop()).unwrap();
        assert_eq!(report.invariant_violations, 0);
        assert_eq!(report.messages.lost, 0);
        assert_eq!(report.resolve_failures, 0);
        let [eq, stale, cons] = report.tier_epochs;
        assert!(
            eq > 9 * (stale + cons),
            "healthy racks live on the equilibrium tier: {:?}",
            report.tier_epochs
        );
        assert!(report.lease_grants > 0);
        assert!(report.mean_utility >= report.conservative_utility);
    }

    #[test]
    fn reports_are_bit_reproducible() {
        let s = sim(24, 300).with_faults(FaultPlan::partition_chaos(3, 80, 3));
        let a = s.run(11, &mut Telemetry::noop()).unwrap();
        let b = s.run(11, &mut Telemetry::noop()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn perfect_transport_injection_matches_empty_fault_plan() {
        let s = sim(16, 200);
        let via_plan = s.run(5, &mut Telemetry::noop()).unwrap();
        let mut perfect = PerfectTransport::new();
        let injected = s
            .run_with_transport(&mut perfect, 5, &mut Telemetry::noop())
            .unwrap();
        assert_eq!(via_plan, injected);
    }

    #[test]
    fn faulty_transport_is_deterministic_and_lossy() {
        let plan = FaultPlan::partition_chaos(9, 50, 3);
        let mk = || {
            let mut t = FaultyTransport::new(&plan, 8, 123);
            for e in 0..60usize {
                t.send(Envelope {
                    to: Address::Coordinator,
                    payload: Payload::Heartbeat { agent: 3 },
                    sent_epoch: e,
                });
            }
            let mut delivered = Vec::new();
            for e in 0..80usize {
                delivered.extend(t.deliver(e));
            }
            (t.stats(), delivered.len())
        };
        let (sa, da) = mk();
        let (sb, db) = mk();
        assert_eq!(sa, sb);
        assert_eq!(da, db);
        assert!(sa.lost > 0, "20% loss over 60 sends must drop something");
        assert!(sa.partition_drops > 0, "the window must cut traffic");
        assert_eq!(
            sa.delivered + sa.lost + sa.partition_drops,
            sa.sent + sa.duplicated,
            "every copy is delivered, lost, or cut"
        );
    }

    #[test]
    fn config_validation_rejects_degenerate_windows() {
        let bad = ControlConfig {
            heartbeat_interval: 20,
            lease_epochs: 20,
            ..ControlConfig::default()
        };
        assert!(bad.validate().is_err());
        let zero = ControlConfig {
            lease_epochs: 0,
            ..ControlConfig::default()
        };
        assert!(zero.validate().is_err());
    }
}
