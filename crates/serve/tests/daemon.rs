//! End-to-end daemon tests: the ISSUE acceptance criteria.
//!
//! - An HTTP-submitted run job yields a `JobReport` byte-identical to
//!   the same spec executed through the CLI code path.
//! - 16 concurrent clients requesting the same equilibrium key trigger
//!   exactly one Algorithm-1 solve (single-flight, verified by registry
//!   counters) while an SSE client receives live health snapshots.
//! - Drain is graceful and the second drain is the typed 409.
//! - Golden v1 fixtures (and legacy bare sweep specs) keep parsing.

use std::path::PathBuf;
use std::time::Duration;

use sprint_game::EquilibriumCache;
use sprint_serve::http::client;
use sprint_serve::jobs::{self, ExecOptions, JobKind, JobSpec, RunSpec, SCHEMA_VERSION};
use sprint_serve::{Daemon, ServeConfig, ServeError};
use sprint_sim::telemetry::{Registry, Telemetry};
use sprint_sim::PolicyKind;

fn et_run_spec(seed: u64) -> JobSpec {
    JobSpec::new(JobKind::Run {
        spec: RunSpec {
            benchmark: "decision".to_string(),
            policy: PolicyKind::EquilibriumThreshold,
            agents: 30,
            epochs: 40,
            seed,
            jobs: None,
        },
    })
}

fn start_daemon(workers: usize) -> sprint_serve::DaemonHandle {
    Daemon::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServeConfig::default()
    })
    .expect("daemon boots on an ephemeral port")
}

/// The reference bytes: the exact code path `sprint run --json` uses.
fn cli_bytes(spec: &JobSpec) -> String {
    let cache = EquilibriumCache::default();
    let report = jobs::execute(
        spec,
        &cache,
        &ExecOptions::default(),
        &mut Telemetry::noop(),
    )
    .expect("reference execution succeeds");
    jobs::report_json(&report).expect("reference report serializes")
}

fn testdata(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/testdata")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn http_run_report_is_byte_identical_to_cli() {
    let handle = start_daemon(2);
    let addr = handle.addr().to_string();
    let spec = et_run_spec(7);
    let want = cli_bytes(&spec);

    let body = serde_json::to_string(&spec).unwrap();
    let (status, got) = client::request(&addr, "POST", "/v1/jobs?wait=true", Some(&body)).unwrap();
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, want, "HTTP report must match the CLI bytes exactly");

    handle.drain().unwrap();
    handle.join().unwrap();
}

#[test]
fn sixteen_clients_share_one_solve_while_sse_streams() {
    let handle = start_daemon(16);
    let addr = handle.addr().to_string();
    let spec = et_run_spec(11);
    let body = serde_json::to_string(&spec).unwrap();

    // A live SSE subscriber runs alongside the burst.
    let sse_addr = addr.clone();
    let sse = std::thread::spawn(move || {
        client::sse_frames(&sse_addr, "/v1/events", 2, Duration::from_secs(10)).unwrap()
    });

    let mut reports: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let addr = addr.as_str();
                let body = body.as_str();
                scope.spawn(move || {
                    let (status, report) =
                        client::request(addr, "POST", "/v1/jobs?wait=true", Some(body)).unwrap();
                    assert_eq!(status, 200, "{report}");
                    report
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    reports.dedup();
    assert_eq!(reports.len(), 1, "all 16 clients see identical bytes");

    // Single-flight: one Algorithm-1 solve, fifteen hits — asserted
    // through the registry counters the cache exports.
    let mut registry = Registry::new();
    let stats = handle.cache_stats();
    assert_eq!(stats.misses, 1, "exactly one solve for 16 identical keys");
    assert_eq!(stats.hits, 15, "the other fifteen are cache hits");
    {
        let (status, metrics) = client::request(&addr, "GET", "/v1/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            metrics.contains("cache_equilibrium_misses_total 1"),
            "prometheus exposition carries the solve counter:\n{metrics}"
        );
    }
    // The same counters are exportable into a local registry.
    let cache = EquilibriumCache::default();
    cache.export_metrics(&mut registry);
    assert_eq!(registry.counter_value("cache.equilibrium.misses"), Some(0));

    let frames = sse.join().unwrap();
    assert!(
        !frames.is_empty(),
        "SSE client received live health snapshots during the burst"
    );
    assert!(
        frames[0].contains("epochs") || frames[0].starts_with('{'),
        "frames are JSON snapshots: {}",
        frames[0]
    );

    handle.drain().unwrap();
    handle.join().unwrap();
}

#[test]
fn job_lifecycle_over_plain_submit_and_polling() {
    let handle = start_daemon(1);
    let addr = handle.addr().to_string();
    let body = serde_json::to_string(&et_run_spec(3)).unwrap();

    let (status, accepted) = client::request(&addr, "POST", "/v1/jobs", Some(&body)).unwrap();
    assert_eq!(status, 202, "{accepted}");
    assert!(accepted.contains("\"id\":1"), "{accepted}");

    // Poll until done.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (status, state) = client::request(&addr, "GET", "/v1/jobs/1", None).unwrap();
        assert_eq!(status, 200, "{state}");
        if state.contains("\"done\"") {
            break;
        }
        assert!(
            !state.contains("\"failed\""),
            "job failed unexpectedly: {state}"
        );
        assert!(std::time::Instant::now() < deadline, "job never finished");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (status, report) = client::request(&addr, "GET", "/v1/jobs/1/report", None).unwrap();
    assert_eq!(status, 200);
    assert!(report.contains("\"schema_version\""), "{report}");

    let (status, list) = client::request(&addr, "GET", "/v1/jobs", None).unwrap();
    assert_eq!(status, 200);
    assert!(list.contains("\"done\""), "{list}");

    let (status, _) = client::request(&addr, "GET", "/v1/jobs/99", None).unwrap();
    assert_eq!(status, 404, "unknown jobs are 404");

    let (status, health) = client::request(&addr, "GET", "/v1/health", None).unwrap();
    assert_eq!(status, 200);
    assert!(health.starts_with('{'), "{health}");

    let (status, version) = client::request(&addr, "GET", "/v1/version", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        version.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")),
        "{version}"
    );

    handle.drain().unwrap();
    handle.join().unwrap();
}

#[test]
fn drain_is_graceful_and_double_drain_is_typed() {
    let handle = start_daemon(2);
    let addr = handle.addr().to_string();

    let (status, body) = client::request(&addr, "POST", "/v1/drain", None).unwrap();
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"draining\":true"), "{body}");

    // Second drain over HTTP: the typed conflict.
    let (status, body) = client::request(&addr, "POST", "/v1/drain", None).unwrap();
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("drain already in progress"), "{body}");

    // And through the handle: the typed error itself.
    match handle.drain() {
        Err(ServeError::AlreadyDraining) => {}
        other => panic!("expected AlreadyDraining, got {other:?}"),
    }

    // Submissions during a drain are rejected with 503.
    let body = serde_json::to_string(&et_run_spec(5)).unwrap();
    let (status, rejected) = client::request(&addr, "POST", "/v1/jobs", Some(&body)).unwrap();
    assert_eq!(status, 503, "{rejected}");

    handle.join().unwrap();
}

#[test]
fn spool_persists_reports_and_event_log_is_flushed() {
    let dir = std::env::temp_dir().join(format!("sprint-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spool = dir.join("spool");
    let event_log = dir.join("events.jsonl");
    let handle = Daemon::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        spool: Some(spool.clone()),
        event_log: Some(event_log.clone()),
        snapshot_every_ms: 20,
        ..ServeConfig::default()
    })
    .expect("daemon boots with spool and event log");
    let addr = handle.addr().to_string();

    let body = serde_json::to_string(&et_run_spec(9)).unwrap();
    let (status, report) =
        client::request(&addr, "POST", "/v1/jobs?wait=true", Some(&body)).unwrap();
    assert_eq!(status, 200, "{report}");

    let spooled = std::fs::read_to_string(spool.join("job-1.json")).expect("spooled report");
    assert_eq!(spooled, report, "spool holds the exact report bytes");

    handle.drain().unwrap();
    handle.join().unwrap();

    let log = std::fs::read_to_string(&event_log).expect("event log flushed on shutdown");
    assert!(
        log.lines()
            .any(|l| l.contains("\"epoch\"") || l.starts_with('{')),
        "event log carries JSONL events:\n{}",
        &log[..log.len().min(400)]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_submissions_map_to_http_errors() {
    let handle = start_daemon(1);
    let addr = handle.addr().to_string();

    let (status, body) =
        client::request(&addr, "POST", "/v1/jobs", Some("this is not json")).unwrap();
    assert_eq!(status, 400, "{body}");

    let unknown = et_run_spec(1);
    let body = serde_json::to_string(&unknown)
        .unwrap()
        .replace("decision", "warp-drive");
    let (status, response) =
        client::request(&addr, "POST", "/v1/jobs?wait=true", Some(&body)).unwrap();
    assert_eq!(status, 500, "unknown benchmark fails the job: {response}");
    assert!(response.contains("warp-drive"), "{response}");

    let (status, _) = client::request(&addr, "GET", "/v1/nonsense", None).unwrap();
    assert_eq!(status, 404);

    handle.drain().unwrap();
    handle.join().unwrap();
}

#[test]
fn golden_v1_fixtures_parse_and_execute() {
    for fixture in [
        "jobspec_run_v1.json",
        "jobspec_sweep_v1.json",
        "jobspec_chaos_v1.json",
    ] {
        let text = testdata(fixture);
        let spec = JobSpec::parse_json(&text)
            .unwrap_or_else(|e| panic!("golden fixture {fixture} must keep parsing: {e}"));
        // v1 fixtures up-convert to the current version on entry.
        assert_eq!(spec.schema_version, SCHEMA_VERSION, "{fixture}");
        // Round-trip: serialize → parse → same spec.
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(JobSpec::parse_json(&json).unwrap(), spec, "{fixture}");
    }

    // The run fixture executes and matches the CLI bytes.
    let run = JobSpec::parse_json(&testdata("jobspec_run_v1.json")).unwrap();
    let bytes = cli_bytes(&run);
    assert!(bytes.contains("\"tasks_per_agent_epoch\""), "{bytes}");
}

#[test]
fn golden_v2_fixture_with_deadline_round_trips() {
    let text = testdata("jobspec_run_v2_deadline.json");
    let spec = JobSpec::parse_json(&text).expect("v2 fixture parses");
    assert_eq!(spec.schema_version, SCHEMA_VERSION);
    assert_eq!(spec.deadline_ms, Some(30_000));
    // Round-trip keeps the budget on the wire.
    let json = serde_json::to_string(&spec).unwrap();
    assert!(json.contains("\"deadline_ms\":30000"), "{json}");
    assert_eq!(JobSpec::parse_json(&json).unwrap(), spec);
}

#[test]
fn legacy_bare_sweep_spec_files_still_parse() {
    let text = testdata("legacy_sweep_spec.json");
    let spec = JobSpec::parse_json(&text).expect("pre-JobSpec sweep files keep working");
    assert_eq!(spec.schema_version, SCHEMA_VERSION);
    match &spec.job {
        JobKind::Sweep { spec } => {
            assert_eq!(spec.games.len(), 4);
            assert_eq!(spec.policies.len(), 4);
        }
        other => panic!("legacy sweep parsed as {other:?}"),
    }
}
