//! Admission-control tests: bounded queue, degradation ladder,
//! per-client rate limits and quotas, and the golden Prometheus
//! exposition for the serve counters.

use std::path::PathBuf;
use std::time::Duration;

use sprint_serve::harness;
use sprint_serve::http::client;
use sprint_serve::jobs::{JobKind, JobSpec, RunSpec};
use sprint_serve::{AdmissionConfig, Daemon, DaemonHandle, ServeConfig};
use sprint_sim::PolicyKind;

/// Holds a worker for many seconds unless cancelled (Greedy: no solve,
/// straight into the engine loop).
fn blocker_spec(seed: u64) -> JobSpec {
    JobSpec::new(JobKind::Run {
        spec: RunSpec {
            benchmark: "decision".to_string(),
            policy: PolicyKind::Greedy,
            agents: 20,
            epochs: 20_000_000,
            seed,
            jobs: None,
        },
    })
}

fn quick_spec(seed: u64) -> JobSpec {
    JobSpec::new(JobKind::Run {
        spec: RunSpec {
            benchmark: "decision".to_string(),
            policy: PolicyKind::Greedy,
            agents: 10,
            epochs: 50,
            seed,
            jobs: None,
        },
    })
}

fn start_daemon(admission: AdmissionConfig) -> DaemonHandle {
    Daemon::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        admission,
        ..ServeConfig::default()
    })
    .expect("daemon boots")
}

/// Submit as a named client; returns status, lowercased response
/// headers, and body.
fn submit_as(addr: &str, spec_json: &str, client: &str) -> (u16, Vec<(String, String)>, String) {
    let headers: &[(&str, &str)] = if client.is_empty() {
        &[]
    } else {
        &[("x-api-key", client)]
    };
    client::request_full(addr, "POST", "/v1/jobs", headers, Some(spec_json)).unwrap()
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn ack_id(ack: &str) -> u64 {
    ack.split("\"id\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|digits| digits.trim().parse().ok())
        .unwrap_or_else(|| panic!("unparseable ack: {ack}"))
}

fn cancel(addr: &str, id: u64) {
    let (status, body) =
        client::request(addr, "POST", &format!("/v1/jobs/{id}/cancel"), None).unwrap();
    assert_eq!(status, 202, "{body}");
}

fn testdata(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/testdata")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn bounded_queue_and_ladder_reject_with_typed_429s() {
    let handle = start_daemon(AdmissionConfig {
        max_queue: 4,
        ..AdmissionConfig::default()
    });
    let addr = handle.addr().to_string();

    // Saturate the single worker, then half-fill the queue.
    let blocker = serde_json::to_string(&blocker_spec(1)).unwrap();
    let (status, _, ack) = submit_as(&addr, &blocker, "");
    assert_eq!(status, 202, "{ack}");
    let blocker_id = ack_id(&ack);
    harness::wait_for_job_state(&addr, blocker_id, "running", Duration::from_secs(30)).unwrap();
    for seed in 2..=3 {
        let body = serde_json::to_string(&quick_spec(seed)).unwrap();
        let (status, _, ack) = submit_as(&addr, &body, "");
        assert_eq!(status, 202, "{ack}");
    }

    // Half-full queue + saturated worker = ShedHeavy: sweeps bounce
    // with a Retry-After, single runs still get in.
    let sweep = testdata("jobspec_sweep_v1.json");
    let (status, headers, body) = submit_as(&addr, &sweep, "");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("queue full"), "{body}");
    assert_eq!(header(&headers, "retry-after"), Some("1"), "{headers:?}");
    for seed in 4..=5 {
        let body = serde_json::to_string(&quick_spec(seed)).unwrap();
        let (status, _, ack) = submit_as(&addr, &body, "");
        assert_eq!(status, 202, "runs are admitted during ShedHeavy: {ack}");
    }

    // The queue is now at its bound: everything bounces, runs included.
    let overflow = serde_json::to_string(&quick_spec(6)).unwrap();
    let (status, headers, body) = submit_as(&addr, &overflow, "");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("queue full (4 jobs pending)"), "{body}");
    assert!(header(&headers, "retry-after").is_some(), "{headers:?}");

    // The daemon itself stays healthy under the burst.
    let (status, health) = client::request(&addr, "GET", "/v1/health", None).unwrap();
    assert_eq!(status, 200, "{health}");
    let (_, metrics) = client::request(&addr, "GET", "/v1/metrics", None).unwrap();
    assert!(metrics.contains("serve_jobs_shed_total 2"), "{metrics}");
    assert!(metrics.contains("serve_admission_rung 1"), "{metrics}");

    // Unblock the worker; the four queued quick jobs finish the drain.
    cancel(&addr, blocker_id);
    handle.drain().unwrap();
    handle.join().unwrap();
}

#[test]
fn rate_limits_are_per_client() {
    let handle = start_daemon(AdmissionConfig {
        rate_limit: Some(1.0),
        ..AdmissionConfig::default()
    });
    let addr = handle.addr().to_string();

    // Burst capacity is 2× the rate: two submissions pass, the third
    // bounces with the bucket's refill ETA.
    for seed in 1..=2 {
        let body = serde_json::to_string(&quick_spec(seed)).unwrap();
        let (status, _, ack) = submit_as(&addr, &body, "alice");
        assert_eq!(status, 202, "{ack}");
    }
    let body = serde_json::to_string(&quick_spec(3)).unwrap();
    let (status, headers, rejected) = submit_as(&addr, &body, "alice");
    assert_eq!(status, 429, "{rejected}");
    assert!(rejected.contains("alice"), "{rejected}");
    let retry_after: u64 = header(&headers, "retry-after")
        .expect("rate-limit rejection carries Retry-After")
        .parse()
        .unwrap();
    assert!(retry_after >= 1, "{headers:?}");

    // Other clients draw from their own buckets.
    let (status, _, ack) = submit_as(&addr, &body, "bob");
    assert_eq!(status, 202, "{ack}");
    let (status, _, ack) = submit_as(&addr, &body, "");
    assert_eq!(status, 202, "anonymous is its own client: {ack}");

    let (_, metrics) = client::request(&addr, "GET", "/v1/metrics", None).unwrap();
    assert!(
        metrics.contains("serve_jobs_rate_limited_total 1"),
        "{metrics}"
    );
    handle.drain().unwrap();
    handle.join().unwrap();
}

#[test]
fn concurrent_job_quota_is_per_client() {
    let handle = start_daemon(AdmissionConfig {
        client_jobs: 1,
        ..AdmissionConfig::default()
    });
    let addr = handle.addr().to_string();

    let blocker = serde_json::to_string(&blocker_spec(7)).unwrap();
    let (status, _, ack) = submit_as(&addr, &blocker, "alice");
    assert_eq!(status, 202, "{ack}");
    let blocker_id = ack_id(&ack);

    // One active job is the quota: alice's second submission bounces
    // while the first is queued or running.
    let body = serde_json::to_string(&quick_spec(8)).unwrap();
    let (status, headers, rejected) = submit_as(&addr, &body, "alice");
    assert_eq!(status, 429, "{rejected}");
    assert!(rejected.contains("quota"), "{rejected}");
    assert_eq!(header(&headers, "retry-after"), Some("1"), "{headers:?}");

    // bob is unaffected by alice's quota.
    let (status, _, ack) = submit_as(&addr, &body, "bob");
    assert_eq!(status, 202, "{ack}");

    let (_, metrics) = client::request(&addr, "GET", "/v1/metrics", None).unwrap();
    assert!(
        metrics.contains("serve_jobs_quota_rejected_total 1"),
        "{metrics}"
    );
    cancel(&addr, blocker_id);
    handle.drain().unwrap();
    handle.join().unwrap();
}

#[test]
fn serve_counters_export_golden_prometheus_exposition() {
    let handle = start_daemon(AdmissionConfig::default());
    let addr = handle.addr().to_string();
    let (status, metrics) = client::request(&addr, "GET", "/v1/metrics", None).unwrap();
    assert_eq!(status, 200);

    // The ring counters tick with the snapshot thread, so the golden
    // match covers the deterministic job/admission series: counters
    // first in sorted order, then gauges, dots mapped to underscores,
    // `_total` suffix on counters only.
    let got: Vec<&str> = metrics
        .lines()
        .filter(|l| l.contains("serve_jobs_") || l.contains("serve_admission_"))
        .collect();
    let want = [
        "# TYPE serve_jobs_cancelled_total counter",
        "serve_jobs_cancelled_total 0",
        "# TYPE serve_jobs_completed_total counter",
        "serve_jobs_completed_total 0",
        "# TYPE serve_jobs_deadline_exceeded_total counter",
        "serve_jobs_deadline_exceeded_total 0",
        "# TYPE serve_jobs_failed_total counter",
        "serve_jobs_failed_total 0",
        "# TYPE serve_jobs_quota_rejected_total counter",
        "serve_jobs_quota_rejected_total 0",
        "# TYPE serve_jobs_rate_limited_total counter",
        "serve_jobs_rate_limited_total 0",
        "# TYPE serve_jobs_recovered_total counter",
        "serve_jobs_recovered_total 0",
        "# TYPE serve_jobs_shed_total counter",
        "serve_jobs_shed_total 0",
        "# TYPE serve_jobs_submitted_total counter",
        "serve_jobs_submitted_total 0",
        "# TYPE serve_admission_rung gauge",
        "serve_admission_rung 0",
        "# TYPE serve_jobs_pending gauge",
        "serve_jobs_pending 0",
    ];
    assert_eq!(got, want, "full exposition:\n{metrics}");
    handle.drain().unwrap();
    handle.join().unwrap();
}
