//! Crash-safety tests: kill-restart recovery, journal edge cases, and
//! spool adoption.
//!
//! The kill-restart drill spawns this very test binary as a child
//! process (`serve_child_process_entry`, gated on an environment
//! variable), SIGKILLs it mid-queue, restarts it on the same journal +
//! spool, and asserts that zero acknowledged jobs are lost and every
//! recovered report is byte-identical to an in-process reference
//! execution.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use sprint_game::EquilibriumCache;
use sprint_serve::harness::{self, ServeChild};
use sprint_serve::http::client;
use sprint_serve::jobs::{self, ExecOptions, JobKind, JobSpec, RunSpec};
use sprint_serve::journal::{Journal, Transition};
use sprint_serve::{Daemon, ServeConfig};
use sprint_sim::telemetry::Telemetry;
use sprint_sim::PolicyKind;

const CHILD_ENV: &str = "SPRINT_SERVE_RECOVERY_CHILD";

fn run_spec(seed: u64) -> JobSpec {
    JobSpec::new(JobKind::Run {
        spec: RunSpec {
            benchmark: "decision".to_string(),
            policy: PolicyKind::EquilibriumThreshold,
            agents: 30,
            epochs: 40,
            seed,
            jobs: None,
        },
    })
}

/// The reference bytes the recovered daemon must reproduce exactly.
fn reference_bytes(spec: &JobSpec) -> String {
    let report = jobs::execute(
        spec,
        &EquilibriumCache::default(),
        &ExecOptions::default(),
        &mut Telemetry::noop(),
    )
    .expect("reference execution succeeds");
    jobs::report_json(&report).expect("reference report serializes")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sprint-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn journaled_config(dir: &Path, workers: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        spool: Some(dir.join("spool")),
        journal: Some(dir.join("journal.jsonl")),
        ..ServeConfig::default()
    }
}

fn submit(addr: &str, spec: &JobSpec) -> (u16, String) {
    let body = serde_json::to_string(spec).unwrap();
    client::request(addr, "POST", "/v1/jobs", Some(&body)).unwrap()
}

fn ack_id(ack: &str) -> u64 {
    ack.split("\"id\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|digits| digits.trim().parse().ok())
        .unwrap_or_else(|| panic!("unparseable ack: {ack}"))
}

fn counter_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with("# "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no `{name}` sample in:\n{metrics}"))
}

/// Child-process entry point for the kill-restart drill: a no-op under
/// a normal `cargo test` run, a blocking journaled daemon when spawned
/// by the harness with [`CHILD_ENV`] set.
#[test]
fn serve_child_process_entry() {
    let Ok(dir) = std::env::var(CHILD_ENV) else {
        return;
    };
    let handle = Daemon::start(&journaled_config(Path::new(&dir), 2)).expect("child daemon boots");
    println!("{}", harness::addr_line(&handle.addr()));
    std::io::stdout().flush().expect("stdout flush");
    // Blocks until the parent SIGKILLs the process — that is the test.
    handle.join().expect("child daemon joins");
}

fn spawn_child(dir: &Path) -> ServeChild {
    let exe = std::env::current_exe().unwrap();
    ServeChild::spawn(
        &exe,
        &["serve_child_process_entry", "--exact", "--nocapture"],
        &[(CHILD_ENV, dir.to_str().unwrap())],
    )
    .expect("child daemon spawns and announces its address")
}

#[test]
fn kill_restart_loses_no_acknowledged_jobs() {
    let dir = tempdir("kill-restart");
    let mut child = spawn_child(&dir);
    let addr = child.addr.clone();

    // Queue more work than the two child workers can finish: at kill
    // time some jobs are running, the rest are queued.
    let mut acknowledged = Vec::new();
    for seed in 1..=8 {
        let (status, ack) = submit(&addr, &run_spec(seed));
        assert_eq!(status, 202, "{ack}");
        acknowledged.push((ack_id(&ack), seed));
    }
    assert!(child.alive(), "child survived the submissions");
    child.kill();

    // Restart on the same journal + spool: every acknowledged job must
    // reach `done` with byte-identical report bytes.
    let child = spawn_child(&dir);
    let addr = child.addr.clone();
    for &(id, seed) in &acknowledged {
        harness::wait_for_job_state(&addr, id, "done", Duration::from_secs(120))
            .unwrap_or_else(|e| panic!("job {id} lost across the crash: {e}"));
        let (status, recovered) =
            client::request(&addr, "GET", &format!("/v1/jobs/{id}/report"), None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            recovered,
            reference_bytes(&run_spec(seed)),
            "job {id} must recover byte-identical"
        );
    }
    let (_, metrics) = client::request(&addr, "GET", "/v1/metrics", None).unwrap();
    assert_eq!(
        counter_value(&metrics, "serve_jobs_recovered_total"),
        acknowledged.len() as u64,
        "every acknowledged job was recovered"
    );
    drop(child);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_journal_tail_still_recovers_the_acknowledged_job() {
    let dir = tempdir("torn-tail");
    let journal_path = dir.join("journal.jsonl");
    {
        let mut journal = Journal::open_append(&journal_path).unwrap();
        journal
            .append(&Transition::Submitted {
                id: 1,
                client: "anonymous".to_string(),
                spec: run_spec(5).into(),
            })
            .unwrap();
        journal.append(&Transition::Started { id: 1 }).unwrap();
    }
    // A crash mid-append leaves a partial final record.
    let mut raw = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal_path)
        .unwrap();
    raw.write_all(b"{\"Done\":{\"i").unwrap();
    drop(raw);

    let handle = Daemon::start(&journaled_config(&dir, 1)).unwrap();
    let addr = handle.addr().to_string();
    harness::wait_for_job_state(&addr, 1, "done", Duration::from_secs(120)).unwrap();
    let (status, report) = client::request(&addr, "GET", "/v1/jobs/1/report", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(report, reference_bytes(&run_spec(5)));
    handle.drain().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_with_spooled_report_adopts_without_reexecution() {
    let dir = tempdir("spool-trust");
    // First life: run one job to completion (report lands in the spool).
    let handle = Daemon::start(&journaled_config(&dir, 1)).unwrap();
    let addr = handle.addr().to_string();
    let body = serde_json::to_string(&run_spec(9)).unwrap();
    let (status, report) =
        client::request(&addr, "POST", "/v1/jobs?wait=true", Some(&body)).unwrap();
    assert_eq!(status, 200, "{report}");
    handle.drain().unwrap();
    handle.join().unwrap();

    // Second life: the journal's Done record plus the spool file mean
    // the job is adopted as-is — no re-execution, so the shared cache
    // never sees a solve.
    let handle = Daemon::start(&journaled_config(&dir, 1)).unwrap();
    let addr = handle.addr().to_string();
    let (status, adopted) = client::request(&addr, "GET", "/v1/jobs/1/report", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(adopted, report, "adopted report keeps its exact bytes");
    assert_eq!(
        handle.cache_stats().misses,
        0,
        "adoption must not re-execute (no equilibrium solves)"
    );
    let (_, metrics) = client::request(&addr, "GET", "/v1/metrics", None).unwrap();
    assert_eq!(counter_value(&metrics, "serve_jobs_recovered_total"), 1);
    // New work still flows after recovery.
    let (status, ack) = submit(&addr, &run_spec(10));
    assert_eq!(status, 202, "{ack}");
    assert_eq!(ack_id(&ack), 2, "ids resume above the recovered ones");
    harness::wait_for_job_state(&addr, 2, "done", Duration::from_secs(120)).unwrap();
    handle.drain().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_missing_journals_boot_a_fresh_daemon() {
    let dir = tempdir("empty-journal");
    std::fs::write(dir.join("journal.jsonl"), "").unwrap();
    let handle = Daemon::start(&journaled_config(&dir, 1)).unwrap();
    let addr = handle.addr().to_string();
    let (status, list) = client::request(&addr, "GET", "/v1/jobs", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(list, "[]", "an empty journal recovers to an empty table");
    handle.drain().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
