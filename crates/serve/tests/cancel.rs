//! Cancellation, deadline, and drain semantics over the HTTP API.

use std::time::{Duration, Instant};

use sprint_serve::harness;
use sprint_serve::http::client;
use sprint_serve::jobs::{JobKind, JobSpec, RunSpec};
use sprint_serve::{Daemon, DaemonHandle, ServeConfig};
use sprint_sim::PolicyKind;

/// A job that runs for many wall-clock seconds if nobody stops it —
/// Greedy needs no equilibrium solve, so the worker is inside the
/// engine loop almost immediately.
fn blocker_spec(seed: u64) -> JobSpec {
    JobSpec::new(JobKind::Run {
        spec: RunSpec {
            benchmark: "decision".to_string(),
            policy: PolicyKind::Greedy,
            agents: 20,
            epochs: 20_000_000,
            seed,
            jobs: None,
        },
    })
}

fn quick_spec(seed: u64) -> JobSpec {
    JobSpec::new(JobKind::Run {
        spec: RunSpec {
            benchmark: "decision".to_string(),
            policy: PolicyKind::Greedy,
            agents: 10,
            epochs: 50,
            seed,
            jobs: None,
        },
    })
}

fn start_daemon() -> DaemonHandle {
    Daemon::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("daemon boots")
}

fn submit(addr: &str, spec: &JobSpec) -> u64 {
    let body = serde_json::to_string(spec).unwrap();
    let (status, ack) = client::request(addr, "POST", "/v1/jobs", Some(&body)).unwrap();
    assert_eq!(status, 202, "{ack}");
    ack.split("\"id\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|digits| digits.trim().parse().ok())
        .unwrap_or_else(|| panic!("unparseable ack: {ack}"))
}

fn cancel(addr: &str, id: u64) -> (u16, String) {
    client::request(addr, "POST", &format!("/v1/jobs/{id}/cancel"), None).unwrap()
}

#[test]
fn cancelling_a_running_job_resolves_at_the_next_checkpoint() {
    let handle = start_daemon();
    let addr = handle.addr().to_string();
    let id = submit(&addr, &blocker_spec(1));
    harness::wait_for_job_state(&addr, id, "running", Duration::from_secs(30)).unwrap();

    let asked = Instant::now();
    let (status, body) = cancel(&addr, id);
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"cancelling\""), "{body}");
    harness::wait_for_job_state(&addr, id, "cancelled", Duration::from_secs(10))
        .expect("running job resolves cancelled at an epoch checkpoint");
    // The engine checks the token every 64 epochs — milliseconds of
    // work. Anything past a few seconds means the checkpoint is broken.
    assert!(
        asked.elapsed() < Duration::from_secs(5),
        "cancel took {:?}",
        asked.elapsed()
    );

    let (status, report) =
        client::request(&addr, "GET", &format!("/v1/jobs/{id}/report"), None).unwrap();
    assert_eq!(status, 200);
    assert!(report.contains("\"Cancelled\""), "{report}");

    // Terminal jobs are not cancellable: the typed 409.
    let (status, body) = cancel(&addr, id);
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("already cancelled"), "{body}");
    // Unknown jobs are 404.
    let (status, _) = cancel(&addr, 999);
    assert_eq!(status, 404);

    let (_, metrics) = client::request(&addr, "GET", "/v1/metrics", None).unwrap();
    assert!(
        metrics.contains("serve_jobs_cancelled_total 1"),
        "{metrics}"
    );
    handle.drain().unwrap();
    handle.join().unwrap();
}

#[test]
fn cancelling_a_queued_job_resolves_immediately() {
    let handle = start_daemon();
    let addr = handle.addr().to_string();
    let blocker = submit(&addr, &blocker_spec(2));
    harness::wait_for_job_state(&addr, blocker, "running", Duration::from_secs(30)).unwrap();
    let queued = submit(&addr, &quick_spec(3));

    let (status, body) = cancel(&addr, queued);
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"cancelled\""), "{body}");
    harness::wait_for_job_state(&addr, queued, "cancelled", Duration::from_secs(5)).unwrap();
    let (status, report) =
        client::request(&addr, "GET", &format!("/v1/jobs/{queued}/report"), None).unwrap();
    assert_eq!(status, 200);
    assert!(report.contains("\"Cancelled\""), "{report}");

    let (status, _) = cancel(&addr, blocker);
    assert_eq!(status, 202);
    harness::wait_for_job_state(&addr, blocker, "cancelled", Duration::from_secs(10)).unwrap();
    handle.drain().unwrap();
    handle.join().unwrap();
}

#[test]
fn deadline_exceeded_is_typed_and_counted() {
    let handle = start_daemon();
    let addr = handle.addr().to_string();
    // The deadline clock starts when a worker picks the job up, so an
    // already-expired budget resolves deterministically at the first
    // cooperative checkpoint.
    let id = submit(&addr, &blocker_spec(4).with_deadline_ms(0));
    harness::wait_for_job_state(&addr, id, "deadline_exceeded", Duration::from_secs(30)).unwrap();
    let (status, report) =
        client::request(&addr, "GET", &format!("/v1/jobs/{id}/report"), None).unwrap();
    assert_eq!(status, 200);
    assert!(report.contains("\"DeadlineExceeded\""), "{report}");
    assert!(report.contains("\"limit_ms\": 0"), "{report}");

    let (status, body) = cancel(&addr, id);
    assert_eq!(status, 409, "{body}");
    let (_, metrics) = client::request(&addr, "GET", "/v1/metrics", None).unwrap();
    assert!(
        metrics.contains("serve_jobs_deadline_exceeded_total 1"),
        "{metrics}"
    );
    handle.drain().unwrap();
    handle.join().unwrap();
}

#[test]
fn drain_completes_queued_jobs_and_cancel_still_works() {
    let handle = start_daemon();
    let addr = handle.addr().to_string();
    let blocker = submit(&addr, &blocker_spec(5));
    harness::wait_for_job_state(&addr, blocker, "running", Duration::from_secs(30)).unwrap();
    let survives_drain = submit(&addr, &quick_spec(6));
    let cancelled_in_drain = submit(&addr, &quick_spec(7));

    let pending = handle.drain().unwrap();
    assert_eq!(pending, 3, "one running, two queued");
    // Draining rejects new work but leaves the queue to finish.
    let body = serde_json::to_string(&quick_spec(8)).unwrap();
    let (status, rejected) = client::request(&addr, "POST", "/v1/jobs", Some(&body)).unwrap();
    assert_eq!(status, 503, "{rejected}");

    // Cancellation still works mid-drain: the queued job resolves on
    // the spot, the running blocker at its next checkpoint.
    let (status, body) = cancel(&addr, cancelled_in_drain);
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"cancelled\""), "{body}");
    let (status, _) = cancel(&addr, blocker);
    assert_eq!(status, 202);

    // The queued-but-unstarted job still runs to completion during the
    // drain — draining stops intake, not the queue.
    harness::wait_for_job_state(&addr, survives_drain, "done", Duration::from_secs(60)).unwrap();
    harness::wait_for_job_state(
        &addr,
        cancelled_in_drain,
        "cancelled",
        Duration::from_secs(5),
    )
    .unwrap();
    handle.join().unwrap();
}
