//! Child-process harness for kill-restart chaos testing.
//!
//! The crash-safety claims in [`crate::journal`] are only worth
//! anything if they hold against a real `SIGKILL` — no destructors, no
//! flushes, no drain. This module spawns a daemon as a separate OS
//! process, scrapes the `SERVE_ADDR=<addr>` line it prints on stdout,
//! and kills it ungracefully on request. Both `sprint chaos
//! --serve-restart` and the serve crate's recovery integration tests
//! drive restarts through it.

use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::error::ServeError;

/// The stdout line a harness-friendly daemon prints once bound:
/// `SERVE_ADDR=127.0.0.1:PORT`.
pub const ADDR_LINE_PREFIX: &str = "SERVE_ADDR=";

/// Format the announcement line for a bound address (daemon side).
#[must_use]
pub fn addr_line(addr: &std::net::SocketAddr) -> String {
    format!("{ADDR_LINE_PREFIX}{addr}")
}

/// A daemon running as a child process, killable without ceremony.
#[derive(Debug)]
pub struct ServeChild {
    child: Child,
    /// The address the child announced.
    pub addr: String,
}

impl ServeChild {
    /// Spawn `program` with `args` and extra environment variables,
    /// then block until it announces its address (or exits without
    /// doing so).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the child cannot be spawned,
    /// [`ServeError::Job`] when it exits or floods stdout without an
    /// address line.
    pub fn spawn(
        program: &Path,
        args: &[&str],
        envs: &[(&str, &str)],
    ) -> crate::Result<ServeChild> {
        let mut command = Command::new(program);
        command
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (name, value) in envs {
            command.env(name, value);
        }
        let mut child = command
            .spawn()
            .map_err(ServeError::io(format!("spawning {}", program.display())))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| ServeError::Job("child stdout was not piped".into()))?;
        let mut reader = BufReader::new(stdout);
        let mut addr = None;
        // Bounded scan: a daemon announces within its first lines; a
        // runaway child must not wedge the harness.
        for _ in 0..256 {
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(ServeError::io("reading child stdout"))?;
            if n == 0 {
                break;
            }
            // Find the marker anywhere in the line: a libtest child
            // under `--nocapture` prints `test foo ... ` without a
            // newline before the announcement lands on the same line.
            if let Some(at) = line.find(ADDR_LINE_PREFIX) {
                addr = Some(line[at + ADDR_LINE_PREFIX.len()..].trim().to_string());
                break;
            }
        }
        let Some(addr) = addr else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(ServeError::Job(
                "child never announced SERVE_ADDR on stdout".into(),
            ));
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || {
            let _ = std::io::copy(&mut reader, &mut std::io::sink());
        });
        Ok(ServeChild { child, addr })
    }

    /// Kill the child ungracefully (`SIGKILL` on unix) and reap it.
    /// This is the point: no drain, no flush, no destructors — exactly
    /// the crash the journal must survive.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Whether the child is still running.
    pub fn alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Poll `GET path` on `addr` until it answers with `status`, or give up
/// after `timeout`.
///
/// # Errors
///
/// [`ServeError::Job`] when the deadline passes without a match.
pub fn wait_for_status(
    addr: &str,
    path: &str,
    status: u16,
    timeout: Duration,
) -> crate::Result<String> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok((got, body)) = crate::http::client::request(addr, "GET", path, None) {
            if got == status {
                return Ok(body);
            }
        }
        if Instant::now() >= deadline {
            return Err(ServeError::Job(format!(
                "timed out waiting for {status} from {path} on {addr}"
            )));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Poll a job's status endpoint until it reaches `want`
/// (`done`/`failed`/`cancelled`/...), or give up after `timeout`.
///
/// # Errors
///
/// [`ServeError::Job`] when the deadline passes first.
pub fn wait_for_job_state(addr: &str, id: u64, want: &str, timeout: Duration) -> crate::Result<()> {
    let needle = format!("\"status\":\"{want}\"");
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok((200, body)) =
            crate::http::client::request(addr, "GET", &format!("/v1/jobs/{id}"), None)
        {
            if body.contains(&needle) {
                return Ok(());
            }
        }
        if Instant::now() >= deadline {
            return Err(ServeError::Job(format!(
                "timed out waiting for job {id} to reach `{want}` on {addr}"
            )));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
