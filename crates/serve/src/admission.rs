//! Admission control for the daemon: bounded queue depth, per-client
//! token-bucket rate limits and concurrent-job quotas, and a
//! degradation ladder that sheds heavy work before the queue drowns.
//!
//! The sprinting game's whole premise is that unmanaged demand on a
//! shared resource trips the breaker (PAPER.md §2); the daemon applies
//! the same discipline to itself. Submissions beyond capacity get a
//! typed 429 with a `Retry-After` hint instead of an unbounded queue,
//! and each client (keyed by the `x-api-key` header, `anonymous`
//! otherwise) draws from its own bucket so one flash-crowd client
//! cannot starve the rest.

use std::collections::BTreeMap;
use std::time::Instant;

/// Admission knobs, all optional: zero / `None` disables that check.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionConfig {
    /// Maximum queued (not yet running) jobs; `0` = unbounded.
    pub max_queue: usize,
    /// Per-client sustained submissions per second; `None` = unlimited.
    /// The burst capacity is twice the rate (at least one token).
    pub rate_limit: Option<f64>,
    /// Per-client cap on jobs queued or running at once; `0` = none.
    pub client_jobs: usize,
}

/// One rung of the daemon's degradation ladder, ordered healthiest
/// first. The rung is derived from queue depth and worker saturation on
/// every submission — there is no hysteresis state to desync from
/// reality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Normal operation: every well-formed job is admitted.
    Accept,
    /// The queue is more than half full with every worker busy: shed
    /// heavy jobs (sweeps, chaos suites) but keep admitting single
    /// runs, which are cheap and latency-sensitive.
    ShedHeavy,
    /// Draining: nothing is admitted; queued jobs still execute.
    DrainOnly,
}

impl Rung {
    /// Stable snake_case name for metrics and response bodies.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Rung::Accept => "accept",
            Rung::ShedHeavy => "shed_heavy",
            Rung::DrainOnly => "drain_only",
        }
    }

    /// Numeric gauge value: 0 healthy, 1 shedding, 2 drain-only.
    #[must_use]
    pub fn level(&self) -> u8 {
        match self {
            Rung::Accept => 0,
            Rung::ShedHeavy => 1,
            Rung::DrainOnly => 2,
        }
    }
}

/// Derive the current rung from live queue facts.
#[must_use]
pub fn rung(
    draining: bool,
    queued: usize,
    running: usize,
    workers: usize,
    max_queue: usize,
) -> Rung {
    if draining {
        return Rung::DrainOnly;
    }
    // Shedding only makes sense with a bounded queue: half-full plus
    // saturated workers means new heavy work would sit behind
    // everything already waiting.
    if max_queue > 0 && queued.saturating_mul(2) >= max_queue && running >= workers {
        return Rung::ShedHeavy;
    }
    Rung::Accept
}

/// A `Retry-After` hint for a full queue: one second per four queued
/// jobs, clamped to `[1, 30]` — a coarse, monotone signal, not a
/// promise.
#[must_use]
pub fn queue_retry_after_s(queued: usize) -> u64 {
    ((queued as u64) / 4).clamp(1, 30)
}

/// A token bucket: `capacity` burst, refilled at `rate` tokens/second.
#[derive(Debug, Clone)]
struct TokenBucket {
    tokens: f64,
    capacity: f64,
    rate: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: f64, now: Instant) -> Self {
        let capacity = (rate * 2.0).max(1.0);
        TokenBucket {
            tokens: capacity,
            capacity,
            rate: rate.max(f64::MIN_POSITIVE),
            last: now,
        }
    }

    /// Take one token, or report how many whole seconds until one
    /// accrues.
    fn try_take(&mut self, now: Instant) -> Result<(), u64> {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err((deficit / self.rate).ceil() as u64)
        }
    }
}

/// Per-client rate-limit state, keyed by API key.
#[derive(Debug, Default)]
pub struct RateLimiter {
    buckets: BTreeMap<String, TokenBucket>,
}

impl RateLimiter {
    /// Charge one submission to `client` at `rate` tokens/second.
    ///
    /// # Errors
    ///
    /// The number of whole seconds until the client's bucket holds a
    /// token again.
    pub fn charge(&mut self, client: &str, rate: f64, now: Instant) -> Result<(), u64> {
        self.buckets
            .entry(client.to_string())
            .or_insert_with(|| TokenBucket::new(rate, now))
            .try_take(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ladder_rungs_follow_queue_pressure() {
        assert_eq!(rung(false, 0, 0, 2, 8), Rung::Accept);
        // Half full but workers idle: still accepting.
        assert_eq!(rung(false, 4, 1, 2, 8), Rung::Accept);
        // Half full and saturated: shed heavy work.
        assert_eq!(rung(false, 4, 2, 2, 8), Rung::ShedHeavy);
        // Unbounded queue never sheds.
        assert_eq!(rung(false, 1000, 2, 2, 0), Rung::Accept);
        // Draining dominates everything.
        assert_eq!(rung(true, 0, 0, 2, 8), Rung::DrainOnly);
        assert!(Rung::Accept.level() < Rung::ShedHeavy.level());
        assert_eq!(Rung::ShedHeavy.name(), "shed_heavy");
    }

    #[test]
    fn retry_after_is_monotone_and_clamped() {
        assert_eq!(queue_retry_after_s(0), 1);
        assert_eq!(queue_retry_after_s(8), 2);
        assert_eq!(queue_retry_after_s(10_000), 30);
    }

    #[test]
    fn token_bucket_allows_burst_then_rejects_with_eta() {
        let t0 = Instant::now();
        let mut limiter = RateLimiter::default();
        // rate 1/s → burst capacity 2.
        assert!(limiter.charge("a", 1.0, t0).is_ok());
        assert!(limiter.charge("a", 1.0, t0).is_ok());
        let eta = limiter.charge("a", 1.0, t0).unwrap_err();
        assert!(eta >= 1, "empty bucket reports a positive wait: {eta}");
        // A different client has its own bucket.
        assert!(limiter.charge("b", 1.0, t0).is_ok());
        // Refill after simulated time passes.
        let later = t0 + Duration::from_secs(5);
        assert!(limiter.charge("a", 1.0, later).is_ok());
    }
}
