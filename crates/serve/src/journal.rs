//! The durable job journal: a write-ahead JSONL log of job-lifecycle
//! transitions, fsync'd per record, that makes acknowledged submissions
//! survive a daemon crash.
//!
//! # Protocol
//!
//! Every transition is appended — and synced to disk — **before** the
//! state change is acknowledged to the client. A `202 Accepted` for a
//! submission therefore implies a durable [`Transition::Submitted`]
//! record carrying the full spec, which is everything recovery needs:
//! job reports are a function of the spec alone (see [`crate::jobs`]),
//! so re-executing a journaled spec reproduces the lost report
//! byte-for-byte.
//!
//! # Recovery
//!
//! On boot the daemon replays the journal ([`replay`]) and folds the
//! transitions into per-job end states ([`recover`]):
//!
//! - `queued` jobs are re-enqueued as-is;
//! - jobs `running` at crash time surface as
//!   [`RecoveredState::Interrupted`] and are re-executed under a bounded
//!   retry budget;
//! - `done` jobs whose report survives in the spool are adopted without
//!   re-execution; done jobs with no spool file are re-executed (exact
//!   by construction);
//! - terminal `failed` / `cancelled` / `deadline_exceeded` states are
//!   kept verbatim.
//!
//! A torn final line — the signature of a crash mid-append — is
//! tolerated and dropped; a torn line anywhere else is corruption and a
//! typed error. After recovery the daemon compacts the journal
//! ([`Journal::rewrite`]): the folded state is rewritten to a temp file
//! and atomically renamed over the old log, so the journal stays
//! proportional to the job table rather than to daemon uptime.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::error::ServeError;
use crate::jobs::JobSpec;

/// One durable job-lifecycle transition, as journaled.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Transition {
    /// A submission was accepted (journaled before the ack).
    Submitted {
        /// Daemon-assigned job id.
        id: u64,
        /// Submitting client key (API key header, or `anonymous`).
        client: String,
        /// The full spec — everything re-execution needs. Boxed so the
        /// common id-only transitions stay small on the stack; `serde`
        /// treats the box transparently, so the wire format is
        /// unchanged.
        spec: Box<JobSpec>,
    },
    /// A worker picked the job up.
    Started {
        /// The job id.
        id: u64,
    },
    /// The job completed; its report lives in the spool (if configured)
    /// or is reproducible from the spec.
    Done {
        /// The job id.
        id: u64,
    },
    /// The job failed with an execution error.
    Failed {
        /// The job id.
        id: u64,
        /// The stringified error.
        error: String,
    },
    /// The job was cancelled.
    Cancelled {
        /// The job id.
        id: u64,
    },
    /// The job overran its deadline budget.
    DeadlineExceeded {
        /// The job id.
        id: u64,
        /// The budget that was exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// Recovery found the job mid-run at crash time (written during
    /// replay compaction, never by a live worker).
    Interrupted {
        /// The job id.
        id: u64,
    },
}

impl Transition {
    /// The job id this transition belongs to.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Transition::Submitted { id, .. }
            | Transition::Started { id }
            | Transition::Done { id }
            | Transition::Failed { id, .. }
            | Transition::Cancelled { id }
            | Transition::DeadlineExceeded { id, .. }
            | Transition::Interrupted { id } => *id,
        }
    }
}

/// A job's folded end state after replaying its transitions.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveredState {
    /// Acknowledged but never started: re-enqueue.
    Queued,
    /// Mid-run at crash time: re-execute under a retry budget.
    Interrupted,
    /// Completed; adopt the spool report or re-execute for the bytes.
    Done,
    /// Failed before the crash; terminal.
    Failed {
        /// The stringified error.
        error: String,
    },
    /// Cancelled before the crash; terminal.
    Cancelled,
    /// Overran its deadline before the crash; terminal.
    DeadlineExceeded {
        /// The budget that was exceeded, in milliseconds.
        limit_ms: u64,
    },
}

/// One journaled job with its folded end state.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// The journaled job id.
    pub id: u64,
    /// The submitting client key.
    pub client: String,
    /// The full spec.
    pub spec: JobSpec,
    /// The folded end state.
    pub state: RecoveredState,
}

/// The result of replaying a journal.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Journaled jobs in id order.
    pub jobs: Vec<RecoveredJob>,
    /// Highest id seen (the daemon resumes numbering above it).
    pub max_id: u64,
    /// Whether a torn final line was dropped (crash mid-append).
    pub torn_tail: bool,
}

fn journal_err(context: &str, detail: impl std::fmt::Display) -> ServeError {
    ServeError::Job(format!("journal {context}: {detail}"))
}

/// Read and parse every transition in the journal at `path`.
///
/// A missing file is an empty journal. A final line that fails to parse
/// is treated as a torn tail from a crash mid-append and dropped
/// (reported via the returned flag); an unparseable line anywhere else
/// is corruption.
///
/// # Errors
///
/// [`ServeError::Io`] for read failures, [`ServeError::Job`] for
/// mid-file corruption.
pub fn replay(path: &Path) -> crate::Result<(Vec<Transition>, bool)> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_string(&mut text)
                .map_err(ServeError::io(format!("reading {}", path.display())))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
        Err(e) => return Err(ServeError::io(format!("opening {}", path.display()))(e)),
    }
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    let mut transitions = Vec::with_capacity(lines.len());
    let mut torn_tail = false;
    for (i, line) in lines.iter().enumerate() {
        match serde_json::from_str::<Transition>(line) {
            Ok(t) => transitions.push(t),
            Err(e) if i + 1 == lines.len() => {
                // The canonical crash signature: power lost between
                // write and sync leaves a partial final record.
                let _ = e;
                torn_tail = true;
            }
            Err(e) => {
                return Err(journal_err(
                    "corrupt",
                    format!("line {} of {}: {e}", i + 1, path.display()),
                ));
            }
        }
    }
    Ok((transitions, torn_tail))
}

/// Fold replayed transitions into per-job end states.
///
/// Transitions referencing an id with no `Submitted` record are dropped
/// (they can only come from a compaction bug, and recovery must not
/// invent jobs it has no spec for).
#[must_use]
pub fn recover(transitions: &[Transition], torn_tail: bool) -> Recovery {
    let mut jobs: std::collections::BTreeMap<u64, RecoveredJob> = std::collections::BTreeMap::new();
    let mut max_id = 0;
    for t in transitions {
        max_id = max_id.max(t.id());
        match t {
            Transition::Submitted { id, client, spec } => {
                jobs.insert(
                    *id,
                    RecoveredJob {
                        id: *id,
                        client: client.clone(),
                        spec: (**spec).clone(),
                        state: RecoveredState::Queued,
                    },
                );
            }
            Transition::Started { id } | Transition::Interrupted { id } => {
                if let Some(job) = jobs.get_mut(id) {
                    job.state = RecoveredState::Interrupted;
                }
            }
            Transition::Done { id } => {
                if let Some(job) = jobs.get_mut(id) {
                    job.state = RecoveredState::Done;
                }
            }
            Transition::Failed { id, error } => {
                if let Some(job) = jobs.get_mut(id) {
                    job.state = RecoveredState::Failed {
                        error: error.clone(),
                    };
                }
            }
            Transition::Cancelled { id } => {
                if let Some(job) = jobs.get_mut(id) {
                    job.state = RecoveredState::Cancelled;
                }
            }
            Transition::DeadlineExceeded { id, limit_ms } => {
                if let Some(job) = jobs.get_mut(id) {
                    job.state = RecoveredState::DeadlineExceeded {
                        limit_ms: *limit_ms,
                    };
                }
            }
        }
    }
    Recovery {
        jobs: jobs.into_values().collect(),
        max_id,
        torn_tail,
    }
}

/// The append handle: one fsync'd JSONL record per transition.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Open (creating if absent) the journal at `path` for appending.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the file cannot be opened.
    pub fn open_append(path: &Path) -> crate::Result<Journal> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(ServeError::io(format!("creating {}", dir.display())))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(ServeError::io(format!(
                "opening journal {}",
                path.display()
            )))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Atomically replace the journal with the given transitions
    /// (boot-time compaction): write a temp file, sync it, rename it
    /// over the old log, and return the fresh append handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Job`] for write failures.
    pub fn rewrite(path: &Path, transitions: &[Transition]) -> crate::Result<Journal> {
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut file = File::create(&tmp)
                .map_err(ServeError::io(format!("creating {}", tmp.display())))?;
            for t in transitions {
                let line = serde_json::to_string(t).map_err(|e| journal_err("serializing", e))?;
                file.write_all(line.as_bytes())
                    .and_then(|()| file.write_all(b"\n"))
                    .map_err(ServeError::io("writing compacted journal"))?;
            }
            file.sync_data()
                .map_err(ServeError::io("syncing compacted journal"))?;
        }
        std::fs::rename(&tmp, path)
            .map_err(ServeError::io(format!("renaming over {}", path.display())))?;
        Journal::open_append(path)
    }

    /// Append one transition and sync it to disk. Returns only after
    /// the record is durable — callers ack the client *after* this.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Job`] when the record cannot
    /// be made durable; the caller must fail the state change.
    pub fn append(&mut self, transition: &Transition) -> crate::Result<()> {
        let line = serde_json::to_string(transition).map_err(|e| journal_err("serializing", e))?;
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .map_err(ServeError::io(format!(
                "appending to journal {}",
                self.path.display()
            )))?;
        self.file
            .sync_data()
            .map_err(ServeError::io("syncing journal append"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{JobKind, RunSpec};
    use sprint_sim::policy::PolicyKind;

    fn spec(seed: u64) -> JobSpec {
        JobSpec::new(JobKind::Run {
            spec: RunSpec {
                benchmark: "svm".into(),
                policy: PolicyKind::Greedy,
                agents: 5,
                epochs: 5,
                seed,
                jobs: None,
            },
        })
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sprint-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_replay_round_trips_and_folds() {
        let dir = tempdir("roundtrip");
        let path = dir.join("journal.jsonl");
        let mut journal = Journal::open_append(&path).unwrap();
        journal
            .append(&Transition::Submitted {
                id: 1,
                client: "anonymous".into(),
                spec: spec(1).into(),
            })
            .unwrap();
        journal.append(&Transition::Started { id: 1 }).unwrap();
        journal.append(&Transition::Done { id: 1 }).unwrap();
        journal
            .append(&Transition::Submitted {
                id: 2,
                client: "ci".into(),
                spec: spec(2).into(),
            })
            .unwrap();
        journal.append(&Transition::Started { id: 2 }).unwrap();
        journal
            .append(&Transition::Submitted {
                id: 3,
                client: "ci".into(),
                spec: spec(3).into(),
            })
            .unwrap();

        let (transitions, torn) = replay(&path).unwrap();
        assert_eq!(transitions.len(), 6);
        assert!(!torn);
        let recovery = recover(&transitions, torn);
        assert_eq!(recovery.max_id, 3);
        let states: Vec<_> = recovery.jobs.iter().map(|j| j.state.clone()).collect();
        assert_eq!(
            states,
            vec![
                RecoveredState::Done,
                RecoveredState::Interrupted,
                RecoveredState::Queued
            ]
        );
        assert_eq!(recovery.jobs[1].client, "ci");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_empty_journals_recover_to_nothing() {
        let dir = tempdir("empty");
        let missing = dir.join("nope.jsonl");
        let (transitions, torn) = replay(&missing).unwrap();
        assert!(transitions.is_empty() && !torn);
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        let (transitions, torn) = replay(&empty).unwrap();
        assert!(transitions.is_empty() && !torn);
        assert_eq!(recover(&transitions, torn).jobs.len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_dropped_but_mid_file_corruption_is_fatal() {
        let dir = tempdir("torn");
        let path = dir.join("journal.jsonl");
        let mut journal = Journal::open_append(&path).unwrap();
        journal
            .append(&Transition::Submitted {
                id: 1,
                client: "anonymous".into(),
                spec: spec(1).into(),
            })
            .unwrap();
        // Simulate a crash mid-append: a partial record with no newline.
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        raw.write_all(b"{\"Started\":{\"id").unwrap();
        drop(raw);
        let (transitions, torn) = replay(&path).unwrap();
        assert_eq!(transitions.len(), 1);
        assert!(torn, "the torn tail must be reported");
        assert_eq!(
            recover(&transitions, torn).jobs[0].state,
            RecoveredState::Queued
        );

        // The same garbage mid-file is corruption, not a torn tail.
        let good = serde_json::to_string(&Transition::Done { id: 1 }).unwrap();
        std::fs::write(&path, format!("{{\"Started\":{{\"id\n{good}\n")).unwrap();
        assert!(replay(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_compacts_atomically_and_stays_appendable() {
        let dir = tempdir("compact");
        let path = dir.join("journal.jsonl");
        let mut journal = Journal::open_append(&path).unwrap();
        for id in 1..=5 {
            journal
                .append(&Transition::Submitted {
                    id,
                    client: "anonymous".into(),
                    spec: spec(id).into(),
                })
                .unwrap();
            journal.append(&Transition::Started { id }).unwrap();
            journal.append(&Transition::Done { id }).unwrap();
        }
        drop(journal);
        let (transitions, torn) = replay(&path).unwrap();
        let recovery = recover(&transitions, torn);
        // Compact to submitted + terminal per job: 10 lines, not 15.
        let compacted: Vec<Transition> = recovery
            .jobs
            .iter()
            .flat_map(|j| {
                vec![
                    Transition::Submitted {
                        id: j.id,
                        client: j.client.clone(),
                        spec: j.spec.clone().into(),
                    },
                    Transition::Done { id: j.id },
                ]
            })
            .collect();
        let mut journal = Journal::rewrite(&path, &compacted).unwrap();
        journal
            .append(&Transition::Submitted {
                id: 6,
                client: "anonymous".into(),
                spec: spec(6).into(),
            })
            .unwrap();
        let (transitions, _) = replay(&path).unwrap();
        assert_eq!(transitions.len(), 11);
        let recovery = recover(&transitions, false);
        assert_eq!(recovery.jobs.len(), 6);
        assert_eq!(recovery.max_id, 6);
        assert!(!path.with_extension("jsonl.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transitions_serialize_self_describing() {
        let t = Transition::DeadlineExceeded {
            id: 7,
            limit_ms: 250,
        };
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.starts_with("{\"DeadlineExceeded\":"), "{json}");
        let back: Transition = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.id(), 7);
    }
}
