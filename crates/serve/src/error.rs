//! Typed errors for the serve layer.

/// Everything that can go wrong between a job submission and its report.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O failure, annotated with what the daemon was doing.
    Io {
        /// What the daemon was doing when the I/O failed.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The client sent something unparseable or invalid.
    BadRequest(String),
    /// The requested job (or endpoint) does not exist.
    NotFound(String),
    /// The daemon is draining: it no longer accepts new jobs but will
    /// finish the ones already queued.
    Draining,
    /// A second drain was requested while one is already in progress —
    /// the typed double-shutdown error.
    AlreadyDraining,
    /// The daemon has fully stopped; nothing can be submitted or joined.
    Stopped,
    /// A job failed while executing (simulation/spec error, stringified
    /// so reports and HTTP bodies can carry it).
    Job(String),
    /// The request body exceeded the daemon's size bound.
    PayloadTooLarge {
        /// Declared or observed size in bytes.
        bytes: usize,
        /// The daemon's limit in bytes.
        limit: usize,
    },
    /// Admission control shed the submission: the queue is at capacity
    /// (or the degradation ladder is rejecting this job class). Carries
    /// the `Retry-After` hint in seconds.
    TooBusy {
        /// Jobs queued when the submission was shed.
        queued: usize,
        /// Seconds the client should wait before retrying.
        retry_after_s: u64,
    },
    /// The per-client token bucket is empty.
    RateLimited {
        /// The client key (API key header, or `anonymous`).
        client: String,
        /// Seconds until the bucket refills one token.
        retry_after_s: u64,
    },
    /// The client is at its concurrent-job quota.
    QuotaExceeded {
        /// The client key.
        client: String,
        /// The quota that was hit.
        limit: usize,
    },
    /// A cancel was requested for a job already in a terminal state.
    NotCancellable {
        /// The job id.
        id: u64,
        /// The terminal state the job is in.
        state: String,
    },
}

impl ServeError {
    /// Annotate an I/O error with context.
    pub fn io(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> ServeError {
        let context = context.into();
        move |source| ServeError::Io { context, source }
    }

    /// The HTTP status code this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Io { .. } | ServeError::Job(_) => 500,
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::Draining => 503,
            ServeError::AlreadyDraining
            | ServeError::Stopped
            | ServeError::NotCancellable { .. } => 409,
            ServeError::PayloadTooLarge { .. } => 413,
            ServeError::TooBusy { .. }
            | ServeError::RateLimited { .. }
            | ServeError::QuotaExceeded { .. } => 429,
        }
    }

    /// The `Retry-After` hint (seconds) for shed responses, if any.
    #[must_use]
    pub fn retry_after(&self) -> Option<u64> {
        match self {
            ServeError::TooBusy { retry_after_s, .. }
            | ServeError::RateLimited { retry_after_s, .. } => Some((*retry_after_s).max(1)),
            ServeError::QuotaExceeded { .. } => Some(1),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::NotFound(what) => write!(f, "not found: {what}"),
            ServeError::Draining => write!(f, "daemon is draining; not accepting new jobs"),
            ServeError::AlreadyDraining => write!(f, "drain already in progress"),
            ServeError::Stopped => write!(f, "daemon has stopped"),
            ServeError::Job(msg) => write!(f, "job failed: {msg}"),
            ServeError::PayloadTooLarge { bytes, limit } => {
                write!(
                    f,
                    "request body of {bytes} bytes exceeds the {limit}-byte limit"
                )
            }
            ServeError::TooBusy {
                queued,
                retry_after_s,
            } => write!(
                f,
                "queue full ({queued} jobs pending); retry in {retry_after_s}s"
            ),
            ServeError::RateLimited {
                client,
                retry_after_s,
            } => write!(
                f,
                "client `{client}` is rate-limited; retry in {retry_after_s}s"
            ),
            ServeError::QuotaExceeded { client, limit } => {
                write!(
                    f,
                    "client `{client}` is at its quota of {limit} active jobs"
                )
            }
            ServeError::NotCancellable { id, state } => {
                write!(f, "job {id} is already {state}; nothing to cancel")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_map_the_http_contract() {
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServeError::NotFound("x".into()).status(), 404);
        assert_eq!(ServeError::Draining.status(), 503);
        assert_eq!(ServeError::AlreadyDraining.status(), 409);
        assert_eq!(ServeError::Job("x".into()).status(), 500);
        assert_eq!(
            ServeError::PayloadTooLarge { bytes: 9, limit: 8 }.status(),
            413
        );
        assert_eq!(
            ServeError::TooBusy {
                queued: 4,
                retry_after_s: 2
            }
            .status(),
            429
        );
        assert_eq!(
            ServeError::RateLimited {
                client: "k".into(),
                retry_after_s: 1
            }
            .status(),
            429
        );
        assert_eq!(
            ServeError::QuotaExceeded {
                client: "k".into(),
                limit: 2
            }
            .status(),
            429
        );
        assert_eq!(
            ServeError::NotCancellable {
                id: 1,
                state: "done".into()
            }
            .status(),
            409
        );
    }

    #[test]
    fn retry_after_is_present_exactly_on_shed_responses() {
        assert_eq!(
            ServeError::TooBusy {
                queued: 4,
                retry_after_s: 2
            }
            .retry_after(),
            Some(2)
        );
        assert_eq!(
            ServeError::RateLimited {
                client: "k".into(),
                retry_after_s: 0
            }
            .retry_after(),
            Some(1),
            "hint is clamped to at least one second"
        );
        assert_eq!(
            ServeError::QuotaExceeded {
                client: "k".into(),
                limit: 2
            }
            .retry_after(),
            Some(1)
        );
        assert_eq!(ServeError::Draining.retry_after(), None);
        assert_eq!(ServeError::BadRequest("x".into()).retry_after(), None);
    }

    #[test]
    fn io_errors_carry_context_and_source() {
        let e = ServeError::io("binding listener")(std::io::Error::other("nope"));
        assert!(e.to_string().contains("binding listener"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
