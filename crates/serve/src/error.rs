//! Typed errors for the serve layer.

/// Everything that can go wrong between a job submission and its report.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O failure, annotated with what the daemon was doing.
    Io {
        /// What the daemon was doing when the I/O failed.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The client sent something unparseable or invalid.
    BadRequest(String),
    /// The requested job (or endpoint) does not exist.
    NotFound(String),
    /// The daemon is draining: it no longer accepts new jobs but will
    /// finish the ones already queued.
    Draining,
    /// A second drain was requested while one is already in progress —
    /// the typed double-shutdown error.
    AlreadyDraining,
    /// The daemon has fully stopped; nothing can be submitted or joined.
    Stopped,
    /// A job failed while executing (simulation/spec error, stringified
    /// so reports and HTTP bodies can carry it).
    Job(String),
}

impl ServeError {
    /// Annotate an I/O error with context.
    pub fn io(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> ServeError {
        let context = context.into();
        move |source| ServeError::Io { context, source }
    }

    /// The HTTP status code this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Io { .. } | ServeError::Job(_) => 500,
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::Draining => 503,
            ServeError::AlreadyDraining | ServeError::Stopped => 409,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::NotFound(what) => write!(f, "not found: {what}"),
            ServeError::Draining => write!(f, "daemon is draining; not accepting new jobs"),
            ServeError::AlreadyDraining => write!(f, "drain already in progress"),
            ServeError::Stopped => write!(f, "daemon has stopped"),
            ServeError::Job(msg) => write!(f, "job failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_map_the_http_contract() {
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServeError::NotFound("x".into()).status(), 404);
        assert_eq!(ServeError::Draining.status(), 503);
        assert_eq!(ServeError::AlreadyDraining.status(), 409);
        assert_eq!(ServeError::Job("x".into()).status(), 500);
    }

    #[test]
    fn io_errors_carry_context_and_source() {
        let e = ServeError::io("binding listener")(std::io::Error::other("nope"));
        assert!(e.to_string().contains("binding listener"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
