//! Rack-as-a-service: the `sprint serve` daemon and the unified job API.
//!
//! The paper's coordinator is an online service — it watches the rack,
//! re-solves the sprinting equilibrium, and broadcasts thresholds
//! continuously. This crate turns the batch reproduction into that
//! shape:
//!
//! - [`jobs`] defines the canonical, versioned [`JobSpec`] / [`JobReport`]
//!   pair. Every CLI subcommand and every HTTP endpoint constructs and
//!   consumes the same types, so a job submitted over HTTP yields a
//!   report byte-identical to the same spec run locally.
//! - [`http`] is a hand-rolled `std::net` HTTP/1.1 layer (the workspace
//!   is offline/vendored — no external server frameworks).
//! - [`daemon`] is the long-lived process: a listener, a queue, worker
//!   threads sharing one process-wide [`EquilibriumCache`]
//!   (single-flight-deduped solves), and a telemetry aggregator
//!   streaming live health snapshots over SSE.
//!
//! Determinism contract: job reports are a function of the [`JobSpec`]
//! alone. Equilibrium solves on the shared cache run *cold* (no
//! warm-start hints), so cache history never leaks into report bytes —
//! see [`sprint_game::EquilibriumCache::solve`].
//!
//! [`JobSpec`]: jobs::JobSpec
//! [`JobReport`]: jobs::JobReport
//! [`EquilibriumCache`]: sprint_game::EquilibriumCache

pub mod admission;
pub mod daemon;
pub mod error;
pub mod harness;
pub mod http;
pub mod jobs;
pub mod journal;

pub use admission::AdmissionConfig;
pub use daemon::{Daemon, DaemonHandle, ServeConfig};
pub use error::ServeError;
pub use jobs::{
    execute, report_json, ChaosMode, ChaosOutcome, ChaosSpec, ExecOptions, JobKind, JobOutcome,
    JobReport, JobSpec, RunSpec, RunSummary, SCHEMA_VERSION,
};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
