//! The unified job API: one canonical, versioned [`JobSpec`] /
//! [`JobReport`] pair that both CLI subcommands and HTTP endpoints
//! construct and consume.
//!
//! Determinism contract: a [`JobReport`] is a function of its
//! [`JobSpec`] alone. Every equilibrium solve on the shared
//! [`EquilibriumCache`] runs *cold* ([`EquilibriumCache::solve`], no
//! warm-start hints), so whatever the cache already holds — from earlier
//! CLI invocations or other daemon clients — can never leak into report
//! bytes. An HTTP-submitted job therefore serializes byte-identically to
//! the same spec run locally, and [`report_json`] is the single place
//! those canonical bytes are produced.
//!
//! Runtime knobs that affect wall-clock behavior but never report bytes
//! (worker fan-out, trial supervision) live in [`ExecOptions`], outside
//! the spec.

use sprint_game::EquilibriumCache;
use sprint_sim::control::{ControlConfig, DetectorConfig};
use sprint_sim::engine::{self, CancelToken, Interrupt, RunGuard, SimConfig};
use sprint_sim::faults::FaultPlan;
use sprint_sim::policy::{PolicyKind, SprintPolicy};
use sprint_sim::runner::{self, ChaosReport, ResilienceReport};
use sprint_sim::scenario::{Scenario, SolveSummary};
use sprint_sim::sweep::{run_sweep_shared, Supervision, SweepSpec};
use sprint_sim::telemetry::Telemetry;
use sprint_sim::{AdversaryMix, AdversaryReport, SweepReport};
use sprint_workloads::Benchmark;

use crate::error::ServeError;

/// The current wire-format version of [`JobSpec`] and [`JobReport`].
///
/// Version history:
/// - **1** — the original unified spec (`schema_version` + `job`).
/// - **2** — adds the optional per-job `deadline_ms` wall-clock budget.
///
/// Specs without a `schema_version` field parse as the current version
/// (the field was optional from day one); explicit versions `1..=2` are
/// accepted and **up-converted** to the current version (`deadline_ms`
/// defaults to none), so reports always echo a current-version spec.
/// Versions above this constant are rejected so a newer client cannot
/// silently submit fields an older daemon ignores.
pub const SCHEMA_VERSION: u32 = 2;

fn job_err<E: std::error::Error>(e: E) -> ServeError {
    ServeError::Job(e.to_string())
}

/// Read a required field of a hand-written `Deserialize` impl.
fn de_required<T: serde::Deserialize>(
    obj: &[(String, serde::Value)],
    name: &str,
    parent: &str,
) -> Result<T, serde::DeError> {
    match serde::__field(obj, name) {
        Some(v) => T::from_value(v),
        None => Err(serde::DeError::custom(format!(
            "missing field `{name}` in `{parent}`"
        ))),
    }
}

/// Read an optional field, substituting `default` when absent.
fn de_or<T: serde::Deserialize>(
    obj: &[(String, serde::Value)],
    name: &str,
    default: T,
) -> Result<T, serde::DeError> {
    match serde::__field(obj, name) {
        Some(v) => T::from_value(v),
        None => Ok(default),
    }
}

/// One simulation run: a benchmark, a policy, and the knobs that shape
/// the scenario. The typed replacement for `sprint simulate`'s (and
/// trace/report/monitor's) flag plumbing.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Benchmark name (see `sprint benchmarks`).
    pub benchmark: String,
    /// Sprinting policy to run.
    pub policy: PolicyKind,
    /// Rack size.
    pub agents: u32,
    /// Simulated epochs.
    pub epochs: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Requested intra-run thread budget (the engine's persistent worker
    /// pool size). `None` defers to the executor's default; `Some(0)`
    /// asks for all available cores. The daemon clamps the request to
    /// its `--jobs-cap` so HTTP clients can use the pool without
    /// oversubscribing the host. Reports are byte-identical at every
    /// value, so this knob shapes wall-clock only, never results.
    pub jobs: Option<u64>,
}

// Hand-written so an absent `jobs` stays absent on the wire: pre-pool
// specs keep their exact bytes (the journal replay and report
// byte-identity gates pin them), and echoed reports only mention the
// knob when the client asked for it.
impl serde::Serialize for RunSpec {
    fn to_value(&self) -> serde::Value {
        let mut obj = vec![
            ("benchmark".to_string(), self.benchmark.to_value()),
            ("policy".to_string(), self.policy.to_value()),
            ("agents".to_string(), self.agents.to_value()),
            ("epochs".to_string(), self.epochs.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ];
        if let Some(jobs) = self.jobs {
            obj.push(("jobs".to_string(), jobs.to_value()));
        }
        serde::Value::Object(obj)
    }
}

impl serde::Deserialize for RunSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let Some(obj) = value.as_object() else {
            return Err(serde::DeError::type_mismatch("object", value));
        };
        Ok(RunSpec {
            benchmark: de_required(obj, "benchmark", "RunSpec")?,
            policy: de_required(obj, "policy", "RunSpec")?,
            agents: de_required(obj, "agents", "RunSpec")?,
            epochs: de_required(obj, "epochs", "RunSpec")?,
            seed: de_required(obj, "seed", "RunSpec")?,
            jobs: de_or(obj, "jobs", None)?,
        })
    }
}

impl RunSpec {
    /// Resolve this spec into a [`Scenario`] — the one place run-shaped
    /// commands (simulate, trace, report, monitor) turn flags into a
    /// simulation.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for an unknown benchmark,
    /// [`ServeError::Job`] for invalid scenario parameters.
    pub fn scenario(&self) -> crate::Result<Scenario> {
        let benchmark = Benchmark::from_name(&self.benchmark).ok_or_else(|| {
            ServeError::BadRequest(format!(
                "unknown benchmark `{}`; see `sprint benchmarks`",
                self.benchmark
            ))
        })?;
        Scenario::homogeneous(benchmark, self.agents, self.epochs).map_err(job_err)
    }
}

/// Which chaos suite a [`ChaosSpec`] runs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ChaosMode {
    /// The policy × fault-plan resilience matrix over the standard
    /// fault suite.
    Matrix,
    /// The control-plane partition-resilience suite.
    Partition {
        /// Epoch the partition starts (default: halfway through the run).
        start: Option<usize>,
        /// Partition duration in epochs.
        duration: usize,
    },
    /// The adversary-defense suite: a misbehaving fraction of the rack
    /// against the coordinator's detector and graduated sanctions.
    Adversaries {
        /// The adversary population specification.
        mix: AdversaryMix,
    },
}

/// One chaos job: the scenario shape plus which suite to run against it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosSpec {
    /// Benchmark name.
    pub benchmark: String,
    /// Rack size.
    pub agents: u32,
    /// Simulated epochs per trial.
    pub epochs: usize,
    /// Number of trial seeds (trials run seeds `1..=seeds`).
    pub seeds: u64,
    /// Seed for fault-plan and adversary randomness.
    pub fault_seed: u64,
    /// Which suite to run.
    pub mode: ChaosMode,
}

/// The job payload: what kind of work to run, with its full typed spec.
///
/// One lives per job; the size skew between variants is irrelevant and
/// boxing would leak into the derived JSON shape.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum JobKind {
    /// One simulation run.
    Run {
        /// The run spec.
        spec: RunSpec,
    },
    /// A declarative multi-trial sweep.
    Sweep {
        /// The sweep spec.
        spec: SweepSpec,
    },
    /// A chaos suite.
    Chaos {
        /// The chaos spec.
        spec: ChaosSpec,
    },
}

/// The canonical, versioned job submission — the one type every CLI
/// subcommand builds from its flags and every HTTP client posts to
/// `/v1/jobs`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Wire-format version (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The work to run.
    pub job: JobKind,
    /// Wall-clock budget for the job's execution, in milliseconds
    /// (schema v2). The clock starts when a worker picks the job up,
    /// not at submission; the run is abandoned at the next cooperative
    /// epoch checkpoint past the budget with a typed
    /// [`JobOutcome::DeadlineExceeded`]. `None` means unbounded.
    pub deadline_ms: Option<u64>,
}

// Hand-written so an absent `deadline_ms` stays absent on the wire:
// v1-shaped specs keep their exact v1 bytes, which the report
// byte-identity gates pin.
impl serde::Serialize for JobSpec {
    fn to_value(&self) -> serde::Value {
        let mut obj = vec![
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("job".to_string(), self.job.to_value()),
        ];
        if let Some(ms) = self.deadline_ms {
            obj.push(("deadline_ms".to_string(), ms.to_value()));
        }
        serde::Value::Object(obj)
    }
}

// Hand-written so `schema_version` defaults for specs written before
// versioning existed, old versions up-convert, and unsupported versions
// fail loudly instead of parsing to something the executor
// half-understands.
impl serde::Deserialize for JobSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let Some(obj) = value.as_object() else {
            return Err(serde::DeError::type_mismatch("object", value));
        };
        let schema_version: u32 = de_or(obj, "schema_version", SCHEMA_VERSION)?;
        if schema_version == 0 || schema_version > SCHEMA_VERSION {
            return Err(serde::DeError::custom(format!(
                "unsupported schema_version {schema_version}; this build speaks 1..={SCHEMA_VERSION}"
            )));
        }
        Ok(JobSpec {
            // Accepted old versions are up-converted on entry: the rest
            // of the system (executor, reports, journal) only ever sees
            // current-version specs.
            schema_version: SCHEMA_VERSION,
            job: de_required(obj, "job", "JobSpec")?,
            deadline_ms: de_or(obj, "deadline_ms", None)?,
        })
    }
}

impl JobSpec {
    /// Wrap a job payload at the current schema version.
    #[must_use]
    pub fn new(job: JobKind) -> Self {
        JobSpec {
            schema_version: SCHEMA_VERSION,
            job,
            deadline_ms: None,
        }
    }

    /// This spec with a wall-clock execution budget.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Parse a job spec from JSON text.
    ///
    /// Legacy compatibility: a bare [`SweepSpec`] document (the format
    /// `sprint sweep --spec` accepted before the unified API) still
    /// parses, wrapped as a [`JobKind::Sweep`] at version 1.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] with the primary parse failure when
    /// the text is neither a [`JobSpec`] nor a legacy sweep spec.
    pub fn parse_json(text: &str) -> crate::Result<JobSpec> {
        match serde_json::from_str::<JobSpec>(text) {
            Ok(spec) => Ok(spec),
            Err(primary) => match serde_json::from_str::<SweepSpec>(text) {
                Ok(sweep) => Ok(JobSpec::new(JobKind::Sweep { spec: sweep })),
                Err(_) => Err(ServeError::BadRequest(format!(
                    "invalid job spec: {primary}"
                ))),
            },
        }
    }
}

/// The distilled result of one [`RunSpec`] execution: the spec echoed
/// back plus the simulation-time facts (never wall-clock ones).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunSummary {
    /// Benchmark name.
    pub benchmark: String,
    /// Policy that ran.
    pub policy: PolicyKind,
    /// Rack size.
    pub agents: u32,
    /// Simulated epochs.
    pub epochs: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Normalized throughput.
    pub tasks_per_agent_epoch: f64,
    /// Total tasks completed across the rack.
    pub total_tasks: f64,
    /// Power emergencies (breaker trips).
    pub trips: u32,
    /// Mean concurrent sprinters per epoch.
    pub mean_sprinters: f64,
    /// State occupancy fractions: active, cooling, recovery, sprinting.
    pub occupancy: [f64; 4],
    /// Offline-solve convergence facts (E-T only).
    pub solve: Option<SolveSummary>,
}

/// The chaos suite's report, tagged by mode.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ChaosOutcome {
    /// Matrix-mode report.
    Matrix {
        /// The policy × fault-plan matrix.
        report: ChaosReport,
    },
    /// Partition-mode report.
    Partition {
        /// The control-plane resilience report.
        report: ResilienceReport,
    },
    /// Adversary-mode report.
    Adversaries {
        /// The adversary-defense report.
        report: AdversaryReport,
    },
}

/// The result payload of one job, shaped like its [`JobKind`].
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum JobOutcome {
    /// A run's summary.
    Run {
        /// The distilled run result.
        report: RunSummary,
    },
    /// A sweep's full report.
    Sweep {
        /// The sweep report.
        report: SweepReport,
    },
    /// A chaos suite's report.
    Chaos {
        /// The mode-tagged chaos report.
        report: ChaosOutcome,
    },
    /// The job was cancelled (`POST /v1/jobs/{id}/cancel`) before it
    /// produced a result; execution stopped at the next cooperative
    /// epoch checkpoint.
    Cancelled,
    /// The job ran past its [`JobSpec::deadline_ms`] budget and was
    /// abandoned at the next cooperative epoch checkpoint.
    DeadlineExceeded {
        /// The budget that was exceeded, in milliseconds.
        limit_ms: u64,
    },
}

/// The canonical job result: the spec that produced it (full
/// provenance) plus the outcome, versioned like the spec.
///
/// [`report_json`] serializes this to the canonical bytes both
/// `sprint <cmd> --json` and `GET /v1/jobs/{id}/report` emit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobReport {
    /// Wire-format version (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The spec this report answers.
    pub spec: JobSpec,
    /// The result payload.
    pub outcome: JobOutcome,
}

/// Host/runtime execution knobs: these shape how fast a job runs, never
/// what its report says, so they live outside the [`JobSpec`].
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker fan-out (engine threads for runs, pool size for sweeps).
    /// `0` sizes to the available cores. Reports are byte-identical at
    /// every job count.
    pub jobs: usize,
    /// Ceiling on the per-run thread budget a [`RunSpec::jobs`] request
    /// can claim. `0` caps at the available cores. The daemon sets this
    /// from `--jobs-cap` so one HTTP client cannot oversubscribe the
    /// host underneath the other workers.
    pub jobs_cap: usize,
    /// Sweep trial supervision (deadline, retries).
    pub supervision: Supervision,
    /// Shared cancellation token for this execution, checked at the
    /// engine's epoch checkpoints. The daemon passes each job's token
    /// here so `POST /v1/jobs/{id}/cancel` can reach a run in flight;
    /// [`execute`] also arms it with the spec's `deadline_ms`.
    pub cancel: Option<CancelToken>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            jobs: 1,
            jobs_cap: 0,
            supervision: Supervision::default(),
            cancel: None,
        }
    }
}

fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        jobs
    }
}

/// Resolve a run's intra-run thread budget. The cap binds only the
/// *spec's* request — that side comes from untrusted HTTP clients; the
/// executor's own `opts.jobs` is the operator's word and passes through
/// untouched. Byte-identity across job counts makes the clamp silent-safe.
fn resolve_run_jobs(requested: Option<u64>, opts: &ExecOptions) -> usize {
    match requested {
        Some(jobs) => {
            let asked = usize::try_from(jobs).unwrap_or(0);
            effective_jobs(asked).min(effective_jobs(opts.jobs_cap))
        }
        None => effective_jobs(opts.jobs),
    }
}

/// Execute a job spec against a shared equilibrium cache — the single
/// code path behind every CLI subcommand and every HTTP submission.
///
/// E-T solves go through `cache` cold (single-flight-deduped for
/// concurrent clients, bytes independent of cache history); pass
/// [`EquilibriumCache::process`] for the process-wide instance or a
/// local cache for isolation. Telemetry observes the run (events,
/// spans) and never alters the report.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for specs that name unknown benchmarks or
/// empty seed sets; [`ServeError::Job`] for simulation failures.
pub fn execute(
    spec: &JobSpec,
    cache: &EquilibriumCache,
    opts: &ExecOptions,
    telemetry: &mut Telemetry,
) -> crate::Result<JobReport> {
    // One token carries both interrupt sources: the daemon's cancel
    // endpoint (a token it passed in) and the spec's own deadline_ms
    // (armed here, so the clock starts at execution, not submission).
    let token = match (&opts.cancel, spec.deadline_ms) {
        (Some(t), limit) => {
            if let Some(ms) = limit {
                t.arm_deadline_ms(ms);
            }
            Some(t.clone())
        }
        (None, Some(ms)) => {
            let t = CancelToken::new();
            t.arm_deadline_ms(ms);
            Some(t)
        }
        (None, None) => None,
    };
    let mut supervision = opts.supervision.clone();
    supervision.cancel = token.clone();
    let result = match &spec.job {
        JobKind::Run { spec: run } => execute_run(run, cache, opts, token.as_ref(), telemetry)
            .map(|report| JobOutcome::Run { report }),
        JobKind::Sweep { spec: sweep } => {
            run_sweep_shared(sweep, opts.jobs, supervision, cache, telemetry)
                .map_err(job_err)
                .map(|report| JobOutcome::Sweep { report })
        }
        JobKind::Chaos { spec: chaos } => {
            // Chaos suites run whole sub-simulations without a guard
            // thread-through; cancellation is only effective while the
            // job is queued or between this check and the suite start.
            if let Some(t) = &token {
                t.check("chaos job").map_err(job_err)?;
            }
            execute_chaos(chaos, opts, telemetry).map(|report| JobOutcome::Chaos { report })
        }
    };
    let outcome = match result {
        Ok(outcome) => outcome,
        Err(e) => match token.as_ref().and_then(CancelToken::fired) {
            // The run errored *because* the token fired: surface the
            // typed outcome instead of a stringly failure.
            Some(Interrupt::Cancelled) => JobOutcome::Cancelled,
            Some(Interrupt::DeadlineExceeded { limit_ms }) => {
                JobOutcome::DeadlineExceeded { limit_ms }
            }
            None => return Err(e),
        },
    };
    Ok(JobReport {
        schema_version: SCHEMA_VERSION,
        spec: spec.clone(),
        outcome,
    })
}

fn execute_run(
    run: &RunSpec,
    cache: &EquilibriumCache,
    opts: &ExecOptions,
    cancel: Option<&CancelToken>,
    telemetry: &mut Telemetry,
) -> crate::Result<RunSummary> {
    let scenario = run.scenario()?;
    let (mut policy, solve): (Box<dyn SprintPolicy>, Option<SolveSummary>) = match run.policy {
        PolicyKind::EquilibriumThreshold => {
            let (policy, summary) = scenario
                .equilibrium_policy_cached_cold(cache)
                .map_err(job_err)?;
            (Box::new(policy), Some(summary))
        }
        kind => (
            scenario
                .policy(kind, run.seed, &mut Telemetry::noop())
                .map_err(job_err)?,
            None,
        ),
    };
    let config = SimConfig::new(*scenario.game(), scenario.epochs(), run.seed)
        .map_err(job_err)?
        .with_options(*scenario.options());
    let mut streams = scenario
        .population()
        .spawn_streams(run.seed)
        .map_err(job_err)?;
    let guard = RunGuard {
        deadline: None,
        cancel: cancel.cloned(),
    };
    let result = engine::run_guarded(
        &config,
        &mut streams,
        policy.as_mut(),
        &guard,
        resolve_run_jobs(run.jobs, opts),
        telemetry,
    )
    .map_err(job_err)?;
    Ok(RunSummary {
        benchmark: run.benchmark.clone(),
        policy: run.policy,
        agents: run.agents,
        epochs: run.epochs,
        seed: run.seed,
        tasks_per_agent_epoch: result.tasks_per_agent_epoch(),
        total_tasks: result.total_tasks(),
        trips: result.trips(),
        mean_sprinters: result.mean_sprinters(),
        occupancy: result.occupancy().fractions(),
        solve,
    })
}

fn execute_chaos(
    chaos: &ChaosSpec,
    opts: &ExecOptions,
    telemetry: &mut Telemetry,
) -> crate::Result<ChaosOutcome> {
    if chaos.seeds == 0 {
        return Err(ServeError::BadRequest(
            "chaos spec needs at least one seed".into(),
        ));
    }
    let benchmark = Benchmark::from_name(&chaos.benchmark).ok_or_else(|| {
        ServeError::BadRequest(format!(
            "unknown benchmark `{}`; see `sprint benchmarks`",
            chaos.benchmark
        ))
    })?;
    let scenario = Scenario::homogeneous(benchmark, chaos.agents, chaos.epochs).map_err(job_err)?;
    let seeds: Vec<u64> = (1..=chaos.seeds).collect();
    Ok(match &chaos.mode {
        ChaosMode::Matrix => {
            let plans = runner::standard_fault_suite(chaos.fault_seed);
            let report = runner::chaos_jobs(
                &scenario,
                &PolicyKind::ALL,
                &plans,
                &seeds,
                effective_jobs(opts.jobs),
                telemetry,
            )
            .map_err(job_err)?;
            ChaosOutcome::Matrix { report }
        }
        ChaosMode::Partition { start, duration } => {
            let start = start.unwrap_or(chaos.epochs / 2);
            let plan = FaultPlan::partition_chaos(chaos.fault_seed, start, *duration);
            let report =
                runner::resilience(&scenario, plan, ControlConfig::default(), &seeds, telemetry)
                    .map_err(job_err)?;
            ChaosOutcome::Partition { report }
        }
        ChaosMode::Adversaries { mix } => {
            let plan = FaultPlan::adversary_chaos(chaos.fault_seed);
            let report = runner::adversary_defense(
                &scenario,
                plan,
                ControlConfig::default(),
                DetectorConfig::default(),
                *mix,
                &seeds,
                telemetry,
            )
            .map_err(job_err)?;
            ChaosOutcome::Adversaries { report }
        }
    })
}

/// Serialize a [`JobReport`] to its canonical bytes — the one function
/// behind both `sprint <cmd> --json` output and the daemon's
/// `GET /v1/jobs/{id}/report` body, so CLI and HTTP reports are
/// byte-identical by construction.
///
/// # Errors
///
/// [`ServeError::Job`] if serialization fails (it cannot for these
/// types, but the vendored encoder is fallible by signature).
pub fn report_json(report: &JobReport) -> crate::Result<String> {
    serde_json::to_string_pretty(report).map_err(job_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run() -> JobSpec {
        JobSpec::new(JobKind::Run {
            spec: RunSpec {
                benchmark: "svm".into(),
                policy: PolicyKind::EquilibriumThreshold,
                agents: 20,
                epochs: 15,
                seed: 3,
                jobs: None,
            },
        })
    }

    #[test]
    fn job_spec_round_trips_through_json() {
        let spec = small_run();
        let text = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(spec, back);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn schema_version_defaults_and_validates() {
        let missing = r#"{"job":{"Run":{"spec":{"benchmark":"svm","policy":"Greedy","agents":5,"epochs":5,"seed":1}}}}"#;
        let spec = JobSpec::parse_json(missing).unwrap();
        assert_eq!(spec.schema_version, SCHEMA_VERSION);
        for bad in [0, SCHEMA_VERSION + 1] {
            let text = format!(
                r#"{{"schema_version":{bad},"job":{{"Run":{{"spec":{{"benchmark":"svm","policy":"Greedy","agents":5,"epochs":5,"seed":1}}}}}}}}"#
            );
            assert!(
                JobSpec::parse_json(&text).is_err(),
                "version {bad} must be rejected"
            );
        }
    }

    #[test]
    fn legacy_bare_sweep_spec_still_parses() {
        let legacy = serde_json::to_string(&SweepSpec::example()).unwrap();
        let spec = JobSpec::parse_json(&legacy).unwrap();
        assert_eq!(spec.schema_version, SCHEMA_VERSION);
        let JobKind::Sweep { spec: sweep } = &spec.job else {
            panic!("legacy sweep spec must wrap as JobKind::Sweep");
        };
        assert_eq!(*sweep, SweepSpec::example());
    }

    #[test]
    fn v1_specs_up_convert_to_the_current_version() {
        let v1 = r#"{"schema_version":1,"job":{"Run":{"spec":{"benchmark":"svm","policy":"Greedy","agents":5,"epochs":5,"seed":1}}}}"#;
        let spec = JobSpec::parse_json(v1).unwrap();
        assert_eq!(spec.schema_version, SCHEMA_VERSION);
        assert_eq!(spec.deadline_ms, None);
    }

    #[test]
    fn deadline_ms_round_trips_and_stays_absent_when_none() {
        let bare = serde_json::to_string(&small_run()).unwrap();
        assert!(
            !bare.contains("deadline_ms"),
            "absent deadline must not appear on the wire: {bare}"
        );
        let spec = small_run().with_deadline_ms(250);
        let text = serde_json::to_string(&spec).unwrap();
        assert!(text.contains("\"deadline_ms\":250"), "{text}");
        let back: JobSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn pre_cancelled_token_yields_typed_cancelled_outcome() {
        let token = CancelToken::new();
        token.cancel();
        let opts = ExecOptions {
            cancel: Some(token),
            ..ExecOptions::default()
        };
        let report = execute(
            &small_run(),
            &EquilibriumCache::default(),
            &opts,
            &mut Telemetry::noop(),
        )
        .unwrap();
        assert_eq!(report.outcome, JobOutcome::Cancelled);
        // The typed outcome serializes and round-trips like any other.
        let json = report_json(&report).unwrap();
        let back: JobReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn expired_deadline_yields_typed_outcome() {
        let spec = small_run().with_deadline_ms(0);
        let report = execute(
            &spec,
            &EquilibriumCache::default(),
            &ExecOptions::default(),
            &mut Telemetry::noop(),
        )
        .unwrap();
        assert_eq!(
            report.outcome,
            JobOutcome::DeadlineExceeded { limit_ms: 0 },
            "a 0ms budget must trip the first cooperative checkpoint"
        );
    }

    #[test]
    fn garbage_reports_the_primary_parse_error() {
        let err = JobSpec::parse_json("{\"job\": 42}").unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
    }

    #[test]
    fn execute_run_matches_the_scenario_path() {
        let spec = small_run();
        let cache = EquilibriumCache::default();
        let report = execute(
            &spec,
            &cache,
            &ExecOptions::default(),
            &mut Telemetry::noop(),
        )
        .unwrap();
        let JobOutcome::Run { report: run } = &report.outcome else {
            panic!("run job must yield a run outcome");
        };
        let scenario = Scenario::homogeneous(Benchmark::Svm, 20, 15).unwrap();
        let direct = scenario
            .execute(PolicyKind::EquilibriumThreshold, 3, &mut Telemetry::noop())
            .unwrap();
        assert_eq!(run.tasks_per_agent_epoch, direct.tasks_per_agent_epoch());
        assert_eq!(run.trips, direct.trips());
        assert_eq!(run.occupancy, direct.occupancy().fractions());
        assert!(run.solve.expect("E-T runs solve").converged);
    }

    #[test]
    fn report_bytes_ignore_cache_history_and_job_count() {
        let spec = small_run();
        let fresh = EquilibriumCache::default();
        let a = report_json(
            &execute(
                &spec,
                &fresh,
                &ExecOptions::default(),
                &mut Telemetry::noop(),
            )
            .unwrap(),
        )
        .unwrap();
        // A cache pre-warmed by a different scenario, and a different
        // worker fan-out: bytes must not move.
        let warmed = EquilibriumCache::default();
        let other = Scenario::homogeneous(Benchmark::PageRank, 40, 10).unwrap();
        other.equilibrium_policy_cached(&warmed).unwrap();
        let opts = ExecOptions {
            jobs: 4,
            ..ExecOptions::default()
        };
        let b =
            report_json(&execute(&spec, &warmed, &opts, &mut Telemetry::noop()).unwrap()).unwrap();
        assert_eq!(a, b, "JobReport bytes must be a function of the spec alone");
    }

    #[test]
    fn run_spec_jobs_is_absent_on_the_wire_unless_requested() {
        // Pre-pool specs must keep their exact bytes: `jobs` only
        // appears when a client asked for it.
        let spec = small_run();
        let text = serde_json::to_string(&spec).unwrap();
        assert!(!text.contains("\"jobs\""), "{text}");
        let JobKind::Run { spec: run } = &spec.job else {
            unreachable!("small_run is a run job");
        };
        let mut with_jobs = run.clone();
        with_jobs.jobs = Some(4);
        let text = serde_json::to_string(&with_jobs).unwrap();
        assert!(text.contains("\"jobs\":4"), "{text}");
        let back: RunSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(with_jobs, back);
    }

    #[test]
    fn run_jobs_requests_are_clamped_to_the_daemon_cap() {
        let opts = ExecOptions {
            jobs_cap: 2,
            ..ExecOptions::default()
        };
        assert_eq!(resolve_run_jobs(Some(8), &opts), 2, "cap binds spec asks");
        assert_eq!(resolve_run_jobs(Some(1), &opts), 1, "small asks pass");
        // `Some(0)` asks for every core, still capped.
        assert!(resolve_run_jobs(Some(0), &opts) <= 2);
        // An uncapped daemon (`0` = cores) still bounds huge asks.
        let open = ExecOptions::default();
        assert_eq!(resolve_run_jobs(Some(u64::MAX), &open), effective_jobs(0));
        // The operator's own jobs knob is never capped: the cap guards
        // against untrusted spec requests only.
        let local = ExecOptions {
            jobs: 8,
            jobs_cap: 2,
            ..ExecOptions::default()
        };
        assert_eq!(resolve_run_jobs(None, &local), 8, "operator word passes");
    }

    #[test]
    fn per_job_thread_budget_never_moves_report_facts() {
        let mk = |jobs| {
            JobSpec::new(JobKind::Run {
                spec: RunSpec {
                    benchmark: "svm".into(),
                    policy: PolicyKind::Greedy,
                    agents: 20,
                    epochs: 15,
                    seed: 3,
                    jobs,
                },
            })
        };
        let opts = ExecOptions {
            jobs_cap: 2,
            ..ExecOptions::default()
        };
        let run = |spec: &JobSpec| {
            let report = execute(
                spec,
                &EquilibriumCache::default(),
                &opts,
                &mut Telemetry::noop(),
            )
            .unwrap();
            let JobOutcome::Run { report } = report.outcome else {
                panic!("run job must produce a run outcome");
            };
            report
        };
        assert_eq!(
            run(&mk(None)),
            run(&mk(Some(8))),
            "the thread-budget knob shapes wall-clock only, never results"
        );
    }

    #[test]
    fn execute_rejects_unknown_benchmarks() {
        let spec = JobSpec::new(JobKind::Run {
            spec: RunSpec {
                benchmark: "nosuch".into(),
                policy: PolicyKind::Greedy,
                agents: 5,
                epochs: 5,
                seed: 1,
                jobs: None,
            },
        });
        let err = execute(
            &spec,
            &EquilibriumCache::default(),
            &ExecOptions::default(),
            &mut Telemetry::noop(),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
    }

    #[test]
    fn chaos_modes_round_trip_and_validate() {
        let spec = JobSpec::new(JobKind::Chaos {
            spec: ChaosSpec {
                benchmark: "svm".into(),
                agents: 20,
                epochs: 40,
                seeds: 0,
                fault_seed: 17,
                mode: ChaosMode::Partition {
                    start: None,
                    duration: 3,
                },
            },
        });
        let text = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(spec, back);
        let err = execute(
            &spec,
            &EquilibriumCache::default(),
            &ExecOptions::default(),
            &mut Telemetry::noop(),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
    }
}
