//! The long-lived `sprint serve` daemon: a listener, a job queue,
//! worker threads sharing one [`EquilibriumCache`], a durable job
//! journal, and a telemetry aggregator streaming live health snapshots
//! over SSE.
//!
//! # Endpoints
//!
//! | Method | Path                  | Purpose                                        |
//! |--------|-----------------------|------------------------------------------------|
//! | POST   | `/v1/jobs`            | Submit a [`JobSpec`]; `?wait=true` blocks for the report |
//! | GET    | `/v1/jobs`            | List jobs and their states                     |
//! | GET    | `/v1/jobs/{id}`       | One job's state                                |
//! | GET    | `/v1/jobs/{id}/report`| The canonical [`JobReport`] bytes              |
//! | POST   | `/v1/jobs/{id}/cancel`| Cancel a queued or running job                 |
//! | GET    | `/v1/health`          | Latest health snapshot (JSON)                  |
//! | GET    | `/v1/metrics`         | Prometheus exposition (cache + queue + ring)   |
//! | GET    | `/v1/events`          | SSE stream of health snapshots                 |
//! | POST   | `/v1/drain`           | Graceful shutdown: stop accepting, finish queue|
//! | GET    | `/v1/version`         | Daemon name and schema version                 |
//!
//! # Job lifecycle
//!
//! `queued → running → done | failed | cancelled | deadline_exceeded`.
//! Submissions during a drain are rejected with 503; a second drain is
//! the typed [`ServeError::AlreadyDraining`] (409). Workers exit once
//! the daemon is draining and the queue is empty; [`DaemonHandle::join`]
//! then flushes the event log and tears the listener down.
//!
//! # Durability
//!
//! With a journal configured ([`ServeConfig::journal`]), every
//! lifecycle transition is appended to a write-ahead JSONL log — the
//! `Submitted` record is fsync'd **before** the submission is
//! acknowledged, so an acked job survives a crash. On boot the journal
//! (plus the report spool) is replayed: queued jobs re-enqueue, jobs
//! that were mid-run re-execute under a bounded retry budget, and
//! completed jobs adopt their spooled report. Reports are a function of
//! the spec alone, so a re-executed job reproduces its report
//! byte-for-byte. See [`crate::journal`].
//!
//! # Admission
//!
//! Submissions pass through admission control ([`crate::admission`]):
//! per-client token-bucket rate limits and concurrent-job quotas, a
//! bounded queue, and a degradation ladder that sheds heavy jobs
//! (sweeps, chaos) while workers are saturated. Shed submissions get a
//! typed 429 with a `Retry-After` hint.
//!
//! [`JobSpec`]: crate::jobs::JobSpec
//! [`JobReport`]: crate::jobs::JobReport

use std::collections::{BTreeMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sprint_game::{BackoffSchedule, CacheStats, EquilibriumCache, RetryPolicy};
use sprint_sim::engine::CancelToken;
use sprint_sim::sweep::Supervision;
use sprint_sim::telemetry::{
    prometheus_text, Event, EventRing, HealthAggregator, Recorder, Registry, RingConfig,
    RingProducer, RotatingJsonl, Severity, SpanProfile, Telemetry,
};

use crate::admission::{self, AdmissionConfig, RateLimiter};
use crate::error::ServeError;
use crate::http::{self, Request};
use crate::jobs::{self, ExecOptions, JobKind, JobOutcome, JobReport, JobSpec, SCHEMA_VERSION};
use crate::journal::{self, Journal, RecoveredState, Transition};

/// How the daemon binds, fans out, persists, and protects itself.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Job worker threads (minimum 1).
    pub workers: usize,
    /// Engine fan-out per job (`0` = available cores); never affects
    /// report bytes.
    pub jobs: usize,
    /// Ceiling on the per-job `jobs` a submitted [`RunSpec`] may request
    /// (`0` = available cores), so HTTP clients can size the engine's
    /// worker pool without oversubscribing the daemon's own workers.
    ///
    /// [`RunSpec`]: crate::jobs::RunSpec
    pub jobs_cap: usize,
    /// Directory to persist each `job-{id}.json` report into, if any.
    pub spool: Option<PathBuf>,
    /// Rotating JSONL event-log path, if any.
    pub event_log: Option<PathBuf>,
    /// Health-snapshot publication period in milliseconds.
    pub snapshot_every_ms: u64,
    /// Write-ahead job journal path, if any. With a journal every
    /// acknowledged submission survives a daemon crash (see
    /// [`crate::journal`]).
    pub journal: Option<PathBuf>,
    /// Admission knobs: queue bound, rate limit, client quota.
    pub admission: AdmissionConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: 2,
            jobs: 1,
            jobs_cap: 0,
            spool: None,
            event_log: None,
            snapshot_every_ms: 200,
            journal: None,
            admission: AdmissionConfig::default(),
        }
    }
}

/// A job's position in its lifecycle.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Running,
    Done { report: String },
    Failed { error: String },
    Cancelled { report: String },
    DeadlineExceeded { report: String },
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Cancelled { .. } => "cancelled",
            JobState::DeadlineExceeded { .. } => "deadline_exceeded",
        }
    }
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    client: String,
    /// Cooperative cancel/deadline token, shared with the worker
    /// executing this job so `POST /v1/jobs/{id}/cancel` reaches a run
    /// in flight.
    cancel: CancelToken,
    /// Retry budget for crash-interrupted jobs: a fresh submission
    /// fails fast (`None`), a recovered one re-executes with backoff.
    retry: Option<BackoffSchedule>,
}

#[derive(Debug, Default)]
struct JobTable {
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, JobEntry>,
    running: usize,
    draining: bool,
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    deadline_exceeded: u64,
    shed: u64,
    rate_limited: u64,
    quota_rejected: u64,
    recovered: u64,
}

#[derive(Debug, Default)]
struct HealthState {
    seq: u64,
    json: String,
    published: u64,
    dropped: u64,
}

/// How one job execution ended, classified by the worker before the
/// table/journal update.
enum Completion {
    Done { report: String },
    Failed { error: String },
    Cancelled { report: String },
    DeadlineExceeded { report: String, limit_ms: u64 },
}

struct Shared {
    table: Mutex<JobTable>,
    jobs_cv: Condvar,
    done_cv: Condvar,
    health: Mutex<HealthState>,
    health_cv: Condvar,
    cache: EquilibriumCache,
    stop: AtomicBool,
    opts: ExecOptions,
    spool: Option<PathBuf>,
    journal: Option<Mutex<Journal>>,
    admission: AdmissionConfig,
    limiter: Mutex<RateLimiter>,
    workers: usize,
    /// Ring producer for daemon-side events (recovery, shedding,
    /// queued-job cancellation) — workers each own their own segment.
    events: Mutex<RingProducer>,
}

impl Shared {
    fn emit(&self, event: &Event) {
        let mut producer = self.events.lock().expect("event producer poisoned");
        if producer.wants(event.kind()) {
            producer.record(event);
        }
    }

    /// Append to the journal, holding the table lock: journal order
    /// matches table order by construction.
    fn journal_append(&self, transition: &Transition) -> crate::Result<()> {
        match &self.journal {
            Some(journal) => journal.lock().expect("journal poisoned").append(transition),
            None => Ok(()),
        }
    }

    fn submit(&self, spec: JobSpec, client: &str) -> crate::Result<u64> {
        let mut table = self.table.lock().expect("job table poisoned");
        if table.draining {
            return Err(ServeError::Draining);
        }
        // Admission pipeline: rate limit, quota, queue bound, ladder —
        // every rejection is typed and carries a Retry-After where one
        // makes sense.
        if let Some(rate) = self.admission.rate_limit {
            let mut limiter = self.limiter.lock().expect("rate limiter poisoned");
            if let Err(retry_after_s) = limiter.charge(client, rate, Instant::now()) {
                table.rate_limited += 1;
                return Err(ServeError::RateLimited {
                    client: client.to_string(),
                    retry_after_s,
                });
            }
        }
        if self.admission.client_jobs > 0 {
            let active = table
                .jobs
                .values()
                .filter(|e| {
                    e.client == client && matches!(e.state, JobState::Queued | JobState::Running)
                })
                .count();
            if active >= self.admission.client_jobs {
                table.quota_rejected += 1;
                return Err(ServeError::QuotaExceeded {
                    client: client.to_string(),
                    limit: self.admission.client_jobs,
                });
            }
        }
        let queued = table.queue.len();
        if self.admission.max_queue > 0 && queued >= self.admission.max_queue {
            table.shed += 1;
            drop(table);
            self.emit(&Event::JobShed {
                queued: queued as u64,
            });
            return Err(ServeError::TooBusy {
                queued,
                retry_after_s: admission::queue_retry_after_s(queued),
            });
        }
        let rung = admission::rung(
            false,
            queued,
            table.running,
            self.workers,
            self.admission.max_queue,
        );
        if rung == admission::Rung::ShedHeavy
            && matches!(spec.job, JobKind::Sweep { .. } | JobKind::Chaos { .. })
        {
            table.shed += 1;
            drop(table);
            self.emit(&Event::JobShed {
                queued: queued as u64,
            });
            return Err(ServeError::TooBusy {
                queued,
                retry_after_s: admission::queue_retry_after_s(queued),
            });
        }
        let id = table.next_id + 1;
        // The write-ahead step: the Submitted record must be durable
        // before the client sees the ack. A failed append fails the
        // submission — no id is handed out for a job a crash would lose.
        self.journal_append(&Transition::Submitted {
            id,
            client: client.to_string(),
            spec: spec.clone().into(),
        })?;
        table.next_id = id;
        table.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                client: client.to_string(),
                cancel: CancelToken::new(),
                retry: None,
            },
        );
        table.queue.push_back(id);
        table.submitted += 1;
        drop(table);
        self.jobs_cv.notify_all();
        Ok(id)
    }

    fn drain(&self) -> crate::Result<usize> {
        let mut table = self.table.lock().expect("job table poisoned");
        if table.draining {
            return Err(ServeError::AlreadyDraining);
        }
        table.draining = true;
        let pending = table.queue.len() + table.running;
        drop(table);
        // Idle workers are parked on the queue condvar; wake them so
        // they observe the drain and exit.
        self.jobs_cv.notify_all();
        Ok(pending)
    }

    /// Cancel a job: a queued job resolves to its typed cancelled
    /// report immediately; a running one has its token fired and
    /// resolves at the worker's next cooperative epoch checkpoint.
    fn cancel(&self, id: u64) -> crate::Result<&'static str> {
        enum Action {
            Resolve(String),
            Fire(CancelToken),
        }
        let mut table = self.table.lock().expect("job table poisoned");
        let action = {
            let entry = table
                .jobs
                .get(&id)
                .ok_or_else(|| ServeError::NotFound(format!("job {id}")))?;
            match &entry.state {
                JobState::Queued => Action::Resolve(cancelled_report(&entry.spec)?),
                JobState::Running => Action::Fire(entry.cancel.clone()),
                terminal => {
                    return Err(ServeError::NotCancellable {
                        id,
                        state: terminal.name().to_string(),
                    })
                }
            }
        };
        match action {
            Action::Resolve(report) => {
                let _ = self.journal_append(&Transition::Cancelled { id });
                table.queue.retain(|&queued| queued != id);
                table.cancelled += 1;
                if let Some(entry) = table.jobs.get_mut(&id) {
                    entry.state = JobState::Cancelled { report };
                }
                drop(table);
                self.emit(&Event::JobCancelled { job: id });
                self.done_cv.notify_all();
                Ok("cancelled")
            }
            Action::Fire(token) => {
                token.cancel();
                // The worker observes the token at the next epoch
                // checkpoint and journals the terminal transition.
                Ok("cancelling")
            }
        }
    }

    fn wait_done(&self, id: u64) -> crate::Result<String> {
        let mut table = self.table.lock().expect("job table poisoned");
        loop {
            match table.jobs.get(&id) {
                None => return Err(ServeError::NotFound(format!("job {id}"))),
                Some(entry) => match &entry.state {
                    JobState::Done { report }
                    | JobState::Cancelled { report }
                    | JobState::DeadlineExceeded { report } => return Ok(report.clone()),
                    JobState::Failed { error } => return Err(ServeError::Job(error.clone())),
                    JobState::Queued | JobState::Running => {
                        table = self.done_cv.wait(table).expect("job table poisoned");
                    }
                },
            }
        }
    }
}

/// The canonical bytes for a job cancelled before (or instead of)
/// producing a result — same path as a worker-observed cancellation, so
/// queued and running cancels serialize identically.
fn cancelled_report(spec: &JobSpec) -> crate::Result<String> {
    jobs::report_json(&JobReport {
        schema_version: SCHEMA_VERSION,
        spec: spec.clone(),
        outcome: JobOutcome::Cancelled,
    })
}

fn claim(shared: &Shared) -> Option<(u64, JobSpec, CancelToken)> {
    let mut table = shared.table.lock().expect("job table poisoned");
    loop {
        if let Some(id) = table.queue.pop_front() {
            if let Some(entry) = table.jobs.get_mut(&id) {
                entry.state = JobState::Running;
                let spec = entry.spec.clone();
                let token = entry.cancel.clone();
                table.running += 1;
                // Best-effort: losing a Started record degrades a
                // crash-time `running` job to `queued` in the replay —
                // it re-executes either way, to identical bytes.
                let _ = shared.journal_append(&Transition::Started { id });
                return Some((id, spec, token));
            }
            continue;
        }
        if table.draining {
            return None;
        }
        table = shared.jobs_cv.wait(table).expect("job table poisoned");
    }
}

fn finish(shared: &Shared, id: u64, completion: Completion, telemetry: &mut Telemetry) {
    if matches!(completion, Completion::Failed { .. }) {
        // Crash-interrupted jobs carry a retry budget: back off and
        // requeue instead of failing what a healthy daemon would have
        // finished.
        let delay = {
            let mut table = shared.table.lock().expect("job table poisoned");
            let delay = table
                .jobs
                .get_mut(&id)
                .and_then(|entry| entry.retry.as_mut())
                .and_then(BackoffSchedule::next_delay);
            if delay.is_some() {
                table.running -= 1;
                if let Some(entry) = table.jobs.get_mut(&id) {
                    entry.state = JobState::Queued;
                }
                table.queue.push_back(id);
            }
            delay
        };
        if let Some(epochs) = delay {
            // The schedule's backoff is in abstract epochs; ~10ms per
            // epoch keeps retries prompt without hammering a fault.
            std::thread::sleep(Duration::from_millis(u64::from(epochs) * 10));
            shared.jobs_cv.notify_all();
            return;
        }
    }
    // Spool persistence is best-effort: a full disk must not lose the
    // in-memory report a waiting client is about to read. Only `done`
    // reports spool — recovery adopts spooled bytes as completed work.
    if let (Some(dir), Completion::Done { report }) = (&shared.spool, &completion) {
        let _ = std::fs::write(dir.join(format!("job-{id}.json")), report);
    }
    let mut table = shared.table.lock().expect("job table poisoned");
    table.running -= 1;
    let mut event = None;
    match completion {
        Completion::Done { report } => {
            table.completed += 1;
            let _ = shared.journal_append(&Transition::Done { id });
            if let Some(entry) = table.jobs.get_mut(&id) {
                entry.state = JobState::Done { report };
            }
        }
        Completion::Failed { error } => {
            table.failed += 1;
            let _ = shared.journal_append(&Transition::Failed {
                id,
                error: error.clone(),
            });
            if let Some(entry) = table.jobs.get_mut(&id) {
                entry.state = JobState::Failed { error };
            }
        }
        Completion::Cancelled { report } => {
            table.cancelled += 1;
            let _ = shared.journal_append(&Transition::Cancelled { id });
            if let Some(entry) = table.jobs.get_mut(&id) {
                entry.state = JobState::Cancelled { report };
            }
            event = Some(Event::JobCancelled { job: id });
        }
        Completion::DeadlineExceeded { report, limit_ms } => {
            table.deadline_exceeded += 1;
            let _ = shared.journal_append(&Transition::DeadlineExceeded { id, limit_ms });
            if let Some(entry) = table.jobs.get_mut(&id) {
                entry.state = JobState::DeadlineExceeded { report };
            }
            event = Some(Event::JobDeadlineExceeded { job: id, limit_ms });
        }
    }
    drop(table);
    if let Some(event) = event {
        telemetry.emit(&event);
    }
    shared.done_cv.notify_all();
}

fn worker_loop(shared: &Arc<Shared>, producer: RingProducer) {
    // One telemetry bundle per worker lifetime: every job this worker
    // runs publishes into its own lock-free ring segment.
    let mut telemetry = Telemetry::new(Box::new(producer), SpanProfile::monotonic());
    while let Some((id, spec, token)) = claim(shared) {
        let opts = ExecOptions {
            jobs: shared.opts.jobs,
            jobs_cap: shared.opts.jobs_cap,
            supervision: shared.opts.supervision.clone(),
            cancel: Some(token),
        };
        let completion = match jobs::execute(&spec, &shared.cache, &opts, &mut telemetry) {
            Ok(report) => match jobs::report_json(&report) {
                Err(e) => Completion::Failed {
                    error: e.to_string(),
                },
                Ok(bytes) => match report.outcome {
                    JobOutcome::Cancelled => Completion::Cancelled { report: bytes },
                    JobOutcome::DeadlineExceeded { limit_ms } => Completion::DeadlineExceeded {
                        report: bytes,
                        limit_ms,
                    },
                    _ => Completion::Done { report: bytes },
                },
            },
            Err(e) => Completion::Failed {
                error: e.to_string(),
            },
        };
        finish(shared, id, completion, &mut telemetry);
    }
}

fn publish_snapshot(shared: &Shared, agg: &HealthAggregator, ring: &EventRing, started: Instant) {
    let snapshot = agg.snapshot(started.elapsed().as_nanos() as u64, ring.dropped());
    if let Ok(json) = serde_json::to_string(&snapshot) {
        let mut health = shared.health.lock().expect("health state poisoned");
        health.seq += 1;
        health.json = json;
        health.published = ring.published();
        health.dropped = ring.dropped();
        drop(health);
        shared.health_cv.notify_all();
    }
}

fn aggregator_loop(
    shared: &Arc<Shared>,
    mut ring: EventRing,
    mut log: Option<RotatingJsonl>,
    every: Duration,
) {
    let started = Instant::now();
    let mut agg = HealthAggregator::default();
    let mut last_published: Option<Instant> = None;
    loop {
        let stopping = shared.stop.load(Ordering::Acquire);
        for event in &ring.drain() {
            agg.fold(event);
            if let Some(log) = log.as_mut() {
                log.record(event);
            }
        }
        if stopping || last_published.is_none_or(|at| at.elapsed() >= every) {
            last_published = Some(Instant::now());
            publish_snapshot(shared, &agg, &ring, started);
            if let Some(log) = log.as_mut() {
                let _ = log.flush();
            }
        }
        if stopping {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    if let Some(log) = log {
        let _ = log.finish();
    }
}

fn listener_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || handle_connection(&shared, stream));
    }
}

#[derive(serde::Serialize)]
struct ErrorBody {
    error: String,
}

#[derive(serde::Serialize)]
struct JobStatus {
    id: u64,
    status: String,
}

fn respond_error(stream: &mut TcpStream, error: &ServeError) {
    let body = serde_json::to_string(&ErrorBody {
        error: error.to_string(),
    })
    .unwrap_or_else(|_| "{\"error\":\"unserializable error\"}".to_string());
    let extra: Vec<(&str, String)> = error
        .retry_after()
        .map(|s| ("Retry-After", s.to_string()))
        .into_iter()
        .collect();
    let _ = http::write_response_with_headers(
        stream,
        error.status(),
        "application/json",
        &extra,
        body.as_bytes(),
    );
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    let request = http::read_request(&mut reader);
    let mut stream = reader.into_inner();
    match request {
        Err(e) => respond_error(&mut stream, &e),
        Ok(request) => {
            if let Err(e) = route(shared, &mut stream, &request) {
                respond_error(&mut stream, &e);
            }
        }
    }
}

fn route(shared: &Arc<Shared>, stream: &mut TcpStream, request: &Request) -> crate::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => handle_submit(shared, stream, request),
        ("GET", "/v1/jobs") => handle_list(shared, stream),
        ("GET", "/v1/health") => handle_health(shared, stream),
        ("GET", "/v1/metrics") => handle_metrics(shared, stream),
        ("GET", "/v1/events") => handle_events(shared, stream),
        ("POST", "/v1/drain") => handle_drain(shared, stream),
        ("GET", "/v1/version") => write_json(
            stream,
            200,
            &format!("{{\"name\":\"sprint-serve\",\"schema_version\":{SCHEMA_VERSION}}}"),
        ),
        ("POST", path) if path.starts_with("/v1/jobs/") && path.ends_with("/cancel") => {
            handle_cancel(shared, stream, path)
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => handle_job(shared, stream, path),
        (method, path) => Err(ServeError::NotFound(format!("{method} {path}"))),
    }
}

fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> crate::Result<()> {
    http::write_response(stream, status, "application/json", body.as_bytes())
        .map_err(ServeError::io("writing response"))
}

/// The submitting client's identity: the `x-api-key` header, or the
/// shared `anonymous` bucket without one.
fn client_key(request: &Request) -> &str {
    request
        .headers
        .iter()
        .find(|(name, _)| name == "x-api-key")
        .map_or("anonymous", |(_, value)| value.as_str())
}

fn handle_submit(shared: &Shared, stream: &mut TcpStream, request: &Request) -> crate::Result<()> {
    let spec = JobSpec::parse_json(request.body_text()?)?;
    let id = shared.submit(spec, client_key(request))?;
    if request.query_flag("wait") {
        let report = shared.wait_done(id)?;
        write_json(stream, 200, &report)
    } else {
        write_json(
            stream,
            202,
            &format!("{{\"id\":{id},\"status\":\"queued\"}}"),
        )
    }
}

fn handle_cancel(shared: &Shared, stream: &mut TcpStream, path: &str) -> crate::Result<()> {
    let id_text = path
        .trim_start_matches("/v1/jobs/")
        .trim_end_matches("/cancel");
    let id: u64 = id_text
        .parse()
        .map_err(|_| ServeError::BadRequest(format!("bad job id `{id_text}`")))?;
    let status = shared.cancel(id)?;
    write_json(
        stream,
        202,
        &format!("{{\"id\":{id},\"status\":\"{status}\"}}"),
    )
}

fn handle_list(shared: &Shared, stream: &mut TcpStream) -> crate::Result<()> {
    let statuses: Vec<JobStatus> = {
        let table = shared.table.lock().expect("job table poisoned");
        table
            .jobs
            .iter()
            .map(|(&id, entry)| JobStatus {
                id,
                status: entry.state.name().to_string(),
            })
            .collect()
    };
    let body = serde_json::to_string(&statuses)
        .map_err(|e| ServeError::Job(format!("serializing job list: {e}")))?;
    write_json(stream, 200, &body)
}

fn handle_job(shared: &Shared, stream: &mut TcpStream, path: &str) -> crate::Result<()> {
    let rest = path.trim_start_matches("/v1/jobs/");
    let (id_text, want_report) = match rest.strip_suffix("/report") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let id: u64 = id_text
        .parse()
        .map_err(|_| ServeError::BadRequest(format!("bad job id `{id_text}`")))?;
    let table = shared.table.lock().expect("job table poisoned");
    let entry = table
        .jobs
        .get(&id)
        .ok_or_else(|| ServeError::NotFound(format!("job {id}")))?;
    if !want_report {
        let body = serde_json::to_string(&JobStatus {
            id,
            status: entry.state.name().to_string(),
        })
        .map_err(|e| ServeError::Job(format!("serializing status: {e}")))?;
        drop(table);
        return write_json(stream, 200, &body);
    }
    match &entry.state {
        JobState::Done { report }
        | JobState::Cancelled { report }
        | JobState::DeadlineExceeded { report } => {
            let report = report.clone();
            drop(table);
            write_json(stream, 200, &report)
        }
        JobState::Failed { error } => Err(ServeError::Job(error.clone())),
        JobState::Queued | JobState::Running => {
            drop(table);
            write_json(
                stream,
                409,
                &format!("{{\"error\":\"report pending\",\"id\":{id}}}"),
            )
        }
    }
}

fn handle_health(shared: &Shared, stream: &mut TcpStream) -> crate::Result<()> {
    let body = {
        let health = shared.health.lock().expect("health state poisoned");
        if health.json.is_empty() {
            "{}".to_string()
        } else {
            health.json.clone()
        }
    };
    write_json(stream, 200, &body)
}

fn handle_metrics(shared: &Shared, stream: &mut TcpStream) -> crate::Result<()> {
    let mut registry = Registry::new();
    shared.cache.export_metrics(&mut registry);
    {
        let table = shared.table.lock().expect("job table poisoned");
        for (name, value) in [
            ("serve.jobs.submitted", table.submitted),
            ("serve.jobs.completed", table.completed),
            ("serve.jobs.failed", table.failed),
            ("serve.jobs.cancelled", table.cancelled),
            ("serve.jobs.deadline_exceeded", table.deadline_exceeded),
            ("serve.jobs.shed", table.shed),
            ("serve.jobs.rate_limited", table.rate_limited),
            ("serve.jobs.quota_rejected", table.quota_rejected),
            ("serve.jobs.recovered", table.recovered),
        ] {
            let counter = registry.counter(name);
            registry.inc(counter, value);
        }
        let pending = registry.gauge("serve.jobs.pending");
        registry.set(pending, (table.queue.len() + table.running) as f64);
        let rung = admission::rung(
            table.draining,
            table.queue.len(),
            table.running,
            shared.workers,
            shared.admission.max_queue,
        );
        let ladder = registry.gauge("serve.admission.rung");
        registry.set(ladder, f64::from(rung.level()));
    }
    {
        let health = shared.health.lock().expect("health state poisoned");
        let published = registry.counter("serve.ring.published");
        registry.inc(published, health.published);
        let dropped = registry.counter("serve.ring.dropped");
        registry.inc(dropped, health.dropped);
    }
    let text = prometheus_text(&registry.snapshot());
    http::write_response(stream, 200, "text/plain; version=0.0.4", text.as_bytes())
        .map_err(ServeError::io("writing metrics"))
}

fn handle_events(shared: &Shared, stream: &mut TcpStream) -> crate::Result<()> {
    http::write_sse_header(stream).map_err(ServeError::io("starting SSE stream"))?;
    let mut last_seq = 0u64;
    loop {
        let frame = {
            let mut health = shared.health.lock().expect("health state poisoned");
            loop {
                if shared.stop.load(Ordering::Acquire) {
                    break None;
                }
                if health.seq > last_seq && !health.json.is_empty() {
                    last_seq = health.seq;
                    break Some(health.json.clone());
                }
                let (guard, _timeout) = shared
                    .health_cv
                    .wait_timeout(health, Duration::from_millis(250))
                    .expect("health state poisoned");
                health = guard;
            }
        };
        let Some(json) = frame else { return Ok(()) };
        if http::write_sse_frame(stream, &json).is_err() {
            // The client hung up; that ends the stream, not the daemon.
            return Ok(());
        }
    }
}

fn handle_drain(shared: &Shared, stream: &mut TcpStream) -> crate::Result<()> {
    let pending = shared.drain()?;
    write_json(
        stream,
        202,
        &format!("{{\"draining\":true,\"pending\":{pending}}}"),
    )
}

/// Reports found in the spool directory, keyed by the id embedded in
/// the `job-{id}.json` filename. Unparseable files are skipped — the
/// spool is best-effort output, never trusted blindly.
fn scan_spool(dir: &Path) -> BTreeMap<u64, (JobSpec, String)> {
    let mut found = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(id) = name
            .to_str()
            .and_then(|n| n.strip_prefix("job-"))
            .and_then(|n| n.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let Ok(report) = serde_json::from_str::<JobReport>(&text) else {
            continue;
        };
        found.insert(id, (report.spec, text));
    }
    found
}

/// The outcome of replaying the journal + spool into a fresh job table.
struct RecoveredTable {
    table: JobTable,
    /// Compacted journal state to rewrite before serving.
    compacted: Vec<Transition>,
    /// `(job, reexecuted)` pairs to announce on the event ring.
    announcements: Vec<(u64, bool)>,
}

/// Fold journal + spool state into the boot-time job table.
///
/// - queued jobs re-enqueue as-is;
/// - crash-time-running jobs re-enqueue with a bounded retry budget;
/// - done jobs adopt their spooled report, or re-enqueue when the spool
///   lost it (re-execution reproduces the bytes — reports are a
///   function of the spec);
/// - terminal failures/cancellations keep their state;
/// - spool-only reports (journal compacted away or disabled) are
///   adopted as done.
fn recover_table(
    recovery: journal::Recovery,
    mut spooled: BTreeMap<u64, (JobSpec, String)>,
) -> RecoveredTable {
    let mut table = JobTable::default();
    let mut compacted = Vec::new();
    let mut announcements = Vec::new();
    table.next_id = recovery.max_id;
    for job in recovery.jobs {
        let spooled_report = spooled.remove(&job.id).map(|(_, report)| report);
        table.next_id = table.next_id.max(job.id);
        table.submitted += 1;
        table.recovered += 1;
        compacted.push(Transition::Submitted {
            id: job.id,
            client: job.client.clone(),
            spec: job.spec.clone().into(),
        });
        let mut entry = JobEntry {
            spec: job.spec,
            state: JobState::Queued,
            client: job.client,
            cancel: CancelToken::new(),
            retry: None,
        };
        match (job.state, spooled_report) {
            // The spool holds the completed report: trust it, skip
            // re-execution, no matter what the journal's last word was.
            (RecoveredState::Done | RecoveredState::Interrupted, Some(report)) => {
                entry.state = JobState::Done { report };
                table.completed += 1;
                compacted.push(Transition::Done { id: job.id });
                announcements.push((job.id, false));
            }
            (RecoveredState::Done, None) => {
                // The report is gone but the spec reproduces it exactly.
                table.queue.push_back(job.id);
                announcements.push((job.id, true));
            }
            (RecoveredState::Interrupted, None) => {
                entry.retry = Some(RetryPolicy::default().schedule(job.id));
                table.queue.push_back(job.id);
                compacted.push(Transition::Interrupted { id: job.id });
                announcements.push((job.id, true));
            }
            (RecoveredState::Queued, _) => {
                table.queue.push_back(job.id);
                announcements.push((job.id, true));
            }
            (RecoveredState::Failed { error }, _) => {
                table.failed += 1;
                compacted.push(Transition::Failed {
                    id: job.id,
                    error: error.clone(),
                });
                entry.state = JobState::Failed { error };
            }
            (RecoveredState::Cancelled, _) => {
                table.cancelled += 1;
                compacted.push(Transition::Cancelled { id: job.id });
                let report = cancelled_report(&entry.spec)
                    .unwrap_or_else(|_| "{\"error\":\"unserializable report\"}".into());
                entry.state = JobState::Cancelled { report };
            }
            (RecoveredState::DeadlineExceeded { limit_ms }, _) => {
                table.deadline_exceeded += 1;
                compacted.push(Transition::DeadlineExceeded {
                    id: job.id,
                    limit_ms,
                });
                let report = jobs::report_json(&JobReport {
                    schema_version: SCHEMA_VERSION,
                    spec: entry.spec.clone(),
                    outcome: JobOutcome::DeadlineExceeded { limit_ms },
                })
                .unwrap_or_else(|_| "{\"error\":\"unserializable report\"}".into());
                entry.state = JobState::DeadlineExceeded { report };
            }
        }
        table.jobs.insert(job.id, entry);
    }
    // Reports with no journal record at all: adopt them as done work.
    for (id, (spec, report)) in spooled {
        table.next_id = table.next_id.max(id);
        table.submitted += 1;
        table.completed += 1;
        table.recovered += 1;
        compacted.push(Transition::Submitted {
            id,
            client: "anonymous".to_string(),
            spec: spec.clone().into(),
        });
        compacted.push(Transition::Done { id });
        announcements.push((id, false));
        table.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Done { report },
                client: "anonymous".to_string(),
                cancel: CancelToken::new(),
                retry: None,
            },
        );
    }
    RecoveredTable {
        table,
        compacted,
        announcements,
    }
}

/// The daemon constructor.
pub struct Daemon;

impl Daemon {
    /// Bind, replay the journal and spool into the job table, compact
    /// the journal, and spawn workers + aggregator + listener.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound, the spool
    /// directory cannot be created, or the journal cannot be read or
    /// rewritten; [`ServeError::Job`] when the event log cannot be
    /// opened or the journal is corrupt mid-file.
    pub fn start(config: &ServeConfig) -> crate::Result<DaemonHandle> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(ServeError::io(format!("binding {}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(ServeError::io("resolving bound address"))?;
        if let Some(dir) = &config.spool {
            std::fs::create_dir_all(dir)
                .map_err(ServeError::io(format!("creating spool {}", dir.display())))?;
        }
        let log = config
            .event_log
            .as_ref()
            .map(|path| {
                RotatingJsonl::create(path, 8 * 1024 * 1024, 3)
                    .map_err(|e| ServeError::Job(format!("opening event log: {e}")))
            })
            .transpose()?;

        // Recovery: replay the journal, cross-check the spool, compact.
        let replayed = match &config.journal {
            Some(path) => {
                let (transitions, torn) = journal::replay(path)?;
                journal::recover(&transitions, torn)
            }
            None => journal::Recovery::default(),
        };
        let spooled = config.spool.as_deref().map(scan_spool).unwrap_or_default();
        let recovered = recover_table(replayed, spooled);
        let journal_handle = config
            .journal
            .as_ref()
            .map(|path| Journal::rewrite(path, &recovered.compacted))
            .transpose()?
            .map(Mutex::new);

        let workers = config.workers.max(1);
        // Per-agent decision firehose stays out of the ring: health
        // snapshots fold epoch-level events. One extra producer segment
        // carries daemon-side events (recovery, shedding, cancels).
        let ring_config = RingConfig::default().with_min_severity(Severity::Info);
        let (ring, mut producers) = EventRing::with_config(workers + 1, &ring_config);
        let daemon_producer = producers.pop().expect("requested producer count");
        let shared = Arc::new(Shared {
            table: Mutex::new(recovered.table),
            jobs_cv: Condvar::new(),
            done_cv: Condvar::new(),
            health: Mutex::new(HealthState::default()),
            health_cv: Condvar::new(),
            cache: EquilibriumCache::default(),
            stop: AtomicBool::new(false),
            opts: ExecOptions {
                jobs: config.jobs,
                jobs_cap: config.jobs_cap,
                supervision: Supervision::default(),
                cancel: None,
            },
            spool: config.spool.clone(),
            journal: journal_handle,
            admission: config.admission,
            limiter: Mutex::new(RateLimiter::default()),
            workers,
            events: Mutex::new(daemon_producer),
        });
        for (job, reexecuted) in recovered.announcements {
            shared.emit(&Event::JobRecovered { job, reexecuted });
        }

        let worker_handles: Vec<std::thread::JoinHandle<()>> = producers
            .into_iter()
            .map(|producer| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, producer))
            })
            .collect();
        let aggregator = {
            let shared = Arc::clone(&shared);
            let every = Duration::from_millis(config.snapshot_every_ms.max(10));
            std::thread::spawn(move || aggregator_loop(&shared, ring, log, every))
        };
        let listener_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || listener_loop(&shared, &listener))
        };
        Ok(DaemonHandle {
            addr,
            shared,
            workers: worker_handles,
            aggregator: Some(aggregator),
            listener: Some(listener_handle),
        })
    }
}

/// A running daemon: the bound address plus the threads to join.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    aggregator: Option<std::thread::JoinHandle<()>>,
    listener: Option<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound address (with the resolved port when 0 was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiate a graceful drain: stop accepting jobs, let workers
    /// finish the queue. Returns the number of jobs still pending.
    ///
    /// # Errors
    ///
    /// [`ServeError::AlreadyDraining`] on a second call — the typed
    /// double-shutdown error.
    pub fn drain(&self) -> crate::Result<usize> {
        self.shared.drain()
    }

    /// Cancel a job by id (the programmatic face of
    /// `POST /v1/jobs/{id}/cancel`). Returns `"cancelled"` for a queued
    /// job resolved on the spot, `"cancelling"` for a running job whose
    /// token was fired.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotFound`] for unknown ids,
    /// [`ServeError::NotCancellable`] for jobs already terminal.
    pub fn cancel(&self, id: u64) -> crate::Result<&'static str> {
        self.shared.cancel(id)
    }

    /// Snapshot of the daemon-wide equilibrium cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Block until the daemon has drained (workers exit when draining
    /// with an empty queue), then tear down the aggregator (final
    /// event-log flush) and listener.
    ///
    /// Without a prior [`DaemonHandle::drain`] (or `POST /v1/drain`)
    /// this blocks for the daemon's lifetime — that is what `sprint
    /// serve` does.
    ///
    /// # Errors
    ///
    /// [`ServeError::Job`] if a worker panicked.
    pub fn join(mut self) -> crate::Result<()> {
        for worker in self.workers.drain(..) {
            worker
                .join()
                .map_err(|_| ServeError::Job("worker thread panicked".into()))?;
        }
        self.shared.stop.store(true, Ordering::Release);
        self.shared.health_cv.notify_all();
        // The accept loop is parked in `accept`; poke it awake so it
        // observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        if let Some(aggregator) = self.aggregator.take() {
            let _ = aggregator.join();
        }
        Ok(())
    }
}
