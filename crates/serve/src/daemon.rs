//! The long-lived `sprint serve` daemon: a listener, a job queue,
//! worker threads sharing one [`EquilibriumCache`], and a telemetry
//! aggregator streaming live health snapshots over SSE.
//!
//! # Endpoints
//!
//! | Method | Path                  | Purpose                                        |
//! |--------|-----------------------|------------------------------------------------|
//! | POST   | `/v1/jobs`            | Submit a [`JobSpec`]; `?wait=true` blocks for the report |
//! | GET    | `/v1/jobs`            | List jobs and their states                     |
//! | GET    | `/v1/jobs/{id}`       | One job's state                                |
//! | GET    | `/v1/jobs/{id}/report`| The canonical [`JobReport`] bytes              |
//! | GET    | `/v1/health`          | Latest health snapshot (JSON)                  |
//! | GET    | `/v1/metrics`         | Prometheus exposition (cache + queue + ring)   |
//! | GET    | `/v1/events`          | SSE stream of health snapshots                 |
//! | POST   | `/v1/drain`           | Graceful shutdown: stop accepting, finish queue|
//! | GET    | `/v1/version`         | Daemon name and schema version                 |
//!
//! # Job lifecycle
//!
//! `queued → running → done | failed`. Submissions during a drain are
//! rejected with 503; a second drain is the typed
//! [`ServeError::AlreadyDraining`] (409). Workers exit once the daemon
//! is draining and the queue is empty; [`DaemonHandle::join`] then
//! flushes the event log and tears the listener down.
//!
//! [`JobSpec`]: crate::jobs::JobSpec
//! [`JobReport`]: crate::jobs::JobReport

use std::collections::{BTreeMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sprint_game::{CacheStats, EquilibriumCache};
use sprint_sim::sweep::Supervision;
use sprint_sim::telemetry::{
    prometheus_text, EventRing, HealthAggregator, Recorder, Registry, RingConfig, RingProducer,
    RotatingJsonl, Severity, SpanProfile, Telemetry,
};

use crate::error::ServeError;
use crate::http::{self, Request};
use crate::jobs::{self, ExecOptions, JobSpec, SCHEMA_VERSION};

/// How the daemon binds, fans out, and persists.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Job worker threads (minimum 1).
    pub workers: usize,
    /// Engine fan-out per job (`0` = available cores); never affects
    /// report bytes.
    pub jobs: usize,
    /// Directory to persist each `job-{id}.json` report into, if any.
    pub spool: Option<PathBuf>,
    /// Rotating JSONL event-log path, if any.
    pub event_log: Option<PathBuf>,
    /// Health-snapshot publication period in milliseconds.
    pub snapshot_every_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: 2,
            jobs: 1,
            spool: None,
            event_log: None,
            snapshot_every_ms: 200,
        }
    }
}

/// A job's position in its lifecycle.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Running,
    Done { report: String },
    Failed { error: String },
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
        }
    }
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
}

#[derive(Debug, Default)]
struct JobTable {
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, JobEntry>,
    running: usize,
    draining: bool,
    submitted: u64,
    completed: u64,
    failed: u64,
}

#[derive(Debug, Default)]
struct HealthState {
    seq: u64,
    json: String,
    published: u64,
    dropped: u64,
}

struct Shared {
    table: Mutex<JobTable>,
    jobs_cv: Condvar,
    done_cv: Condvar,
    health: Mutex<HealthState>,
    health_cv: Condvar,
    cache: EquilibriumCache,
    stop: AtomicBool,
    opts: ExecOptions,
    spool: Option<PathBuf>,
}

impl Shared {
    fn submit(&self, spec: JobSpec) -> crate::Result<u64> {
        let mut table = self.table.lock().expect("job table poisoned");
        if table.draining {
            return Err(ServeError::Draining);
        }
        table.next_id += 1;
        let id = table.next_id;
        table.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
            },
        );
        table.queue.push_back(id);
        table.submitted += 1;
        drop(table);
        self.jobs_cv.notify_all();
        Ok(id)
    }

    fn drain(&self) -> crate::Result<usize> {
        let mut table = self.table.lock().expect("job table poisoned");
        if table.draining {
            return Err(ServeError::AlreadyDraining);
        }
        table.draining = true;
        let pending = table.queue.len() + table.running;
        drop(table);
        // Idle workers are parked on the queue condvar; wake them so
        // they observe the drain and exit.
        self.jobs_cv.notify_all();
        Ok(pending)
    }

    fn wait_done(&self, id: u64) -> crate::Result<String> {
        let mut table = self.table.lock().expect("job table poisoned");
        loop {
            match table.jobs.get(&id) {
                None => return Err(ServeError::NotFound(format!("job {id}"))),
                Some(entry) => match &entry.state {
                    JobState::Done { report } => return Ok(report.clone()),
                    JobState::Failed { error } => return Err(ServeError::Job(error.clone())),
                    JobState::Queued | JobState::Running => {
                        table = self.done_cv.wait(table).expect("job table poisoned");
                    }
                },
            }
        }
    }
}

fn claim(shared: &Shared) -> Option<(u64, JobSpec)> {
    let mut table = shared.table.lock().expect("job table poisoned");
    loop {
        if let Some(id) = table.queue.pop_front() {
            if let Some(entry) = table.jobs.get_mut(&id) {
                entry.state = JobState::Running;
                let spec = entry.spec.clone();
                table.running += 1;
                return Some((id, spec));
            }
            continue;
        }
        if table.draining {
            return None;
        }
        table = shared.jobs_cv.wait(table).expect("job table poisoned");
    }
}

fn finish(shared: &Shared, id: u64, result: crate::Result<String>) {
    // Spool persistence is best-effort: a full disk must not lose the
    // in-memory report a waiting client is about to read.
    if let (Some(dir), Ok(report)) = (&shared.spool, &result) {
        let _ = std::fs::write(dir.join(format!("job-{id}.json")), report);
    }
    let mut table = shared.table.lock().expect("job table poisoned");
    table.running -= 1;
    match result {
        Ok(report) => {
            table.completed += 1;
            if let Some(entry) = table.jobs.get_mut(&id) {
                entry.state = JobState::Done { report };
            }
        }
        Err(err) => {
            table.failed += 1;
            if let Some(entry) = table.jobs.get_mut(&id) {
                entry.state = JobState::Failed {
                    error: err.to_string(),
                };
            }
        }
    }
    drop(table);
    shared.done_cv.notify_all();
}

fn worker_loop(shared: &Arc<Shared>, producer: RingProducer) {
    // One telemetry bundle per worker lifetime: every job this worker
    // runs publishes into its own lock-free ring segment.
    let mut telemetry = Telemetry::new(Box::new(producer), SpanProfile::monotonic());
    while let Some((id, spec)) = claim(shared) {
        let result = jobs::execute(&spec, &shared.cache, &shared.opts, &mut telemetry)
            .and_then(|report| jobs::report_json(&report));
        finish(shared, id, result);
    }
}

fn publish_snapshot(shared: &Shared, agg: &HealthAggregator, ring: &EventRing, started: Instant) {
    let snapshot = agg.snapshot(started.elapsed().as_nanos() as u64, ring.dropped());
    if let Ok(json) = serde_json::to_string(&snapshot) {
        let mut health = shared.health.lock().expect("health state poisoned");
        health.seq += 1;
        health.json = json;
        health.published = ring.published();
        health.dropped = ring.dropped();
        drop(health);
        shared.health_cv.notify_all();
    }
}

fn aggregator_loop(
    shared: &Arc<Shared>,
    mut ring: EventRing,
    mut log: Option<RotatingJsonl>,
    every: Duration,
) {
    let started = Instant::now();
    let mut agg = HealthAggregator::default();
    let mut last_published: Option<Instant> = None;
    loop {
        let stopping = shared.stop.load(Ordering::Acquire);
        for event in &ring.drain() {
            agg.fold(event);
            if let Some(log) = log.as_mut() {
                log.record(event);
            }
        }
        if stopping || last_published.is_none_or(|at| at.elapsed() >= every) {
            last_published = Some(Instant::now());
            publish_snapshot(shared, &agg, &ring, started);
            if let Some(log) = log.as_mut() {
                let _ = log.flush();
            }
        }
        if stopping {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    if let Some(log) = log {
        let _ = log.finish();
    }
}

fn listener_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || handle_connection(&shared, stream));
    }
}

#[derive(serde::Serialize)]
struct ErrorBody {
    error: String,
}

#[derive(serde::Serialize)]
struct JobStatus {
    id: u64,
    status: String,
}

fn respond_error(stream: &mut TcpStream, error: &ServeError) {
    let body = serde_json::to_string(&ErrorBody {
        error: error.to_string(),
    })
    .unwrap_or_else(|_| "{\"error\":\"unserializable error\"}".to_string());
    let _ = http::write_response(stream, error.status(), "application/json", body.as_bytes());
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    let request = http::read_request(&mut reader);
    let mut stream = reader.into_inner();
    match request {
        Err(e) => respond_error(&mut stream, &e),
        Ok(request) => {
            if let Err(e) = route(shared, &mut stream, &request) {
                respond_error(&mut stream, &e);
            }
        }
    }
}

fn route(shared: &Arc<Shared>, stream: &mut TcpStream, request: &Request) -> crate::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => handle_submit(shared, stream, request),
        ("GET", "/v1/jobs") => handle_list(shared, stream),
        ("GET", "/v1/health") => handle_health(shared, stream),
        ("GET", "/v1/metrics") => handle_metrics(shared, stream),
        ("GET", "/v1/events") => handle_events(shared, stream),
        ("POST", "/v1/drain") => handle_drain(shared, stream),
        ("GET", "/v1/version") => write_json(
            stream,
            200,
            &format!("{{\"name\":\"sprint-serve\",\"schema_version\":{SCHEMA_VERSION}}}"),
        ),
        ("GET", path) if path.starts_with("/v1/jobs/") => handle_job(shared, stream, path),
        (method, path) => Err(ServeError::NotFound(format!("{method} {path}"))),
    }
}

fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> crate::Result<()> {
    http::write_response(stream, status, "application/json", body.as_bytes())
        .map_err(ServeError::io("writing response"))
}

fn handle_submit(shared: &Shared, stream: &mut TcpStream, request: &Request) -> crate::Result<()> {
    let spec = JobSpec::parse_json(request.body_text()?)?;
    let id = shared.submit(spec)?;
    if request.query_flag("wait") {
        let report = shared.wait_done(id)?;
        write_json(stream, 200, &report)
    } else {
        write_json(
            stream,
            202,
            &format!("{{\"id\":{id},\"status\":\"queued\"}}"),
        )
    }
}

fn handle_list(shared: &Shared, stream: &mut TcpStream) -> crate::Result<()> {
    let statuses: Vec<JobStatus> = {
        let table = shared.table.lock().expect("job table poisoned");
        table
            .jobs
            .iter()
            .map(|(&id, entry)| JobStatus {
                id,
                status: entry.state.name().to_string(),
            })
            .collect()
    };
    let body = serde_json::to_string(&statuses)
        .map_err(|e| ServeError::Job(format!("serializing job list: {e}")))?;
    write_json(stream, 200, &body)
}

fn handle_job(shared: &Shared, stream: &mut TcpStream, path: &str) -> crate::Result<()> {
    let rest = path.trim_start_matches("/v1/jobs/");
    let (id_text, want_report) = match rest.strip_suffix("/report") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let id: u64 = id_text
        .parse()
        .map_err(|_| ServeError::BadRequest(format!("bad job id `{id_text}`")))?;
    let table = shared.table.lock().expect("job table poisoned");
    let entry = table
        .jobs
        .get(&id)
        .ok_or_else(|| ServeError::NotFound(format!("job {id}")))?;
    if !want_report {
        let body = serde_json::to_string(&JobStatus {
            id,
            status: entry.state.name().to_string(),
        })
        .map_err(|e| ServeError::Job(format!("serializing status: {e}")))?;
        drop(table);
        return write_json(stream, 200, &body);
    }
    match &entry.state {
        JobState::Done { report } => {
            let report = report.clone();
            drop(table);
            write_json(stream, 200, &report)
        }
        JobState::Failed { error } => Err(ServeError::Job(error.clone())),
        JobState::Queued | JobState::Running => {
            drop(table);
            write_json(
                stream,
                409,
                &format!("{{\"error\":\"report pending\",\"id\":{id}}}"),
            )
        }
    }
}

fn handle_health(shared: &Shared, stream: &mut TcpStream) -> crate::Result<()> {
    let body = {
        let health = shared.health.lock().expect("health state poisoned");
        if health.json.is_empty() {
            "{}".to_string()
        } else {
            health.json.clone()
        }
    };
    write_json(stream, 200, &body)
}

fn handle_metrics(shared: &Shared, stream: &mut TcpStream) -> crate::Result<()> {
    let mut registry = Registry::new();
    shared.cache.export_metrics(&mut registry);
    {
        let table = shared.table.lock().expect("job table poisoned");
        let submitted = registry.counter("serve.jobs.submitted");
        registry.inc(submitted, table.submitted);
        let completed = registry.counter("serve.jobs.completed");
        registry.inc(completed, table.completed);
        let failed = registry.counter("serve.jobs.failed");
        registry.inc(failed, table.failed);
        let pending = registry.gauge("serve.jobs.pending");
        registry.set(pending, (table.queue.len() + table.running) as f64);
    }
    {
        let health = shared.health.lock().expect("health state poisoned");
        let published = registry.counter("serve.ring.published");
        registry.inc(published, health.published);
        let dropped = registry.counter("serve.ring.dropped");
        registry.inc(dropped, health.dropped);
    }
    let text = prometheus_text(&registry.snapshot());
    http::write_response(stream, 200, "text/plain; version=0.0.4", text.as_bytes())
        .map_err(ServeError::io("writing metrics"))
}

fn handle_events(shared: &Shared, stream: &mut TcpStream) -> crate::Result<()> {
    http::write_sse_header(stream).map_err(ServeError::io("starting SSE stream"))?;
    let mut last_seq = 0u64;
    loop {
        let frame = {
            let mut health = shared.health.lock().expect("health state poisoned");
            loop {
                if shared.stop.load(Ordering::Acquire) {
                    break None;
                }
                if health.seq > last_seq && !health.json.is_empty() {
                    last_seq = health.seq;
                    break Some(health.json.clone());
                }
                let (guard, _timeout) = shared
                    .health_cv
                    .wait_timeout(health, Duration::from_millis(250))
                    .expect("health state poisoned");
                health = guard;
            }
        };
        let Some(json) = frame else { return Ok(()) };
        if http::write_sse_frame(stream, &json).is_err() {
            // The client hung up; that ends the stream, not the daemon.
            return Ok(());
        }
    }
}

fn handle_drain(shared: &Shared, stream: &mut TcpStream) -> crate::Result<()> {
    let pending = shared.drain()?;
    write_json(
        stream,
        202,
        &format!("{{\"draining\":true,\"pending\":{pending}}}"),
    )
}

/// The daemon constructor.
pub struct Daemon;

impl Daemon {
    /// Bind, spawn workers + aggregator + listener, and return a handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound or the spool
    /// directory cannot be created; [`ServeError::Job`] when the event
    /// log cannot be opened.
    pub fn start(config: &ServeConfig) -> crate::Result<DaemonHandle> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(ServeError::io(format!("binding {}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(ServeError::io("resolving bound address"))?;
        if let Some(dir) = &config.spool {
            std::fs::create_dir_all(dir)
                .map_err(ServeError::io(format!("creating spool {}", dir.display())))?;
        }
        let log = config
            .event_log
            .as_ref()
            .map(|path| {
                RotatingJsonl::create(path, 8 * 1024 * 1024, 3)
                    .map_err(|e| ServeError::Job(format!("opening event log: {e}")))
            })
            .transpose()?;

        let workers = config.workers.max(1);
        // Per-agent decision firehose stays out of the ring: health
        // snapshots fold epoch-level events.
        let ring_config = RingConfig::default().with_min_severity(Severity::Info);
        let (ring, producers) = EventRing::with_config(workers, &ring_config);
        let shared = Arc::new(Shared {
            table: Mutex::new(JobTable::default()),
            jobs_cv: Condvar::new(),
            done_cv: Condvar::new(),
            health: Mutex::new(HealthState::default()),
            health_cv: Condvar::new(),
            cache: EquilibriumCache::default(),
            stop: AtomicBool::new(false),
            opts: ExecOptions {
                jobs: config.jobs,
                supervision: Supervision::default(),
            },
            spool: config.spool.clone(),
        });

        let worker_handles: Vec<std::thread::JoinHandle<()>> = producers
            .into_iter()
            .map(|producer| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, producer))
            })
            .collect();
        let aggregator = {
            let shared = Arc::clone(&shared);
            let every = Duration::from_millis(config.snapshot_every_ms.max(10));
            std::thread::spawn(move || aggregator_loop(&shared, ring, log, every))
        };
        let listener_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || listener_loop(&shared, &listener))
        };
        Ok(DaemonHandle {
            addr,
            shared,
            workers: worker_handles,
            aggregator: Some(aggregator),
            listener: Some(listener_handle),
        })
    }
}

/// A running daemon: the bound address plus the threads to join.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    aggregator: Option<std::thread::JoinHandle<()>>,
    listener: Option<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound address (with the resolved port when 0 was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiate a graceful drain: stop accepting jobs, let workers
    /// finish the queue. Returns the number of jobs still pending.
    ///
    /// # Errors
    ///
    /// [`ServeError::AlreadyDraining`] on a second call — the typed
    /// double-shutdown error.
    pub fn drain(&self) -> crate::Result<usize> {
        self.shared.drain()
    }

    /// Snapshot of the daemon-wide equilibrium cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Block until the daemon has drained (workers exit when draining
    /// with an empty queue), then tear down the aggregator (final
    /// event-log flush) and listener.
    ///
    /// Without a prior [`DaemonHandle::drain`] (or `POST /v1/drain`)
    /// this blocks for the daemon's lifetime — that is what `sprint
    /// serve` does.
    ///
    /// # Errors
    ///
    /// [`ServeError::Job`] if a worker panicked.
    pub fn join(mut self) -> crate::Result<()> {
        for worker in self.workers.drain(..) {
            worker
                .join()
                .map_err(|_| ServeError::Job("worker thread panicked".into()))?;
        }
        self.shared.stop.store(true, Ordering::Release);
        self.shared.health_cv.notify_all();
        // The accept loop is parked in `accept`; poke it awake so it
        // observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        if let Some(aggregator) = self.aggregator.take() {
            let _ = aggregator.join();
        }
        Ok(())
    }
}
