//! A hand-rolled `std::net` HTTP/1.1 layer: just enough server-side
//! parsing and response writing for the daemon's endpoints, plus a tiny
//! blocking client for tests and benches. The workspace is
//! offline/vendored, so no external server framework is available — and
//! none is needed for a line-oriented request/response protocol.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::error::ServeError;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (sweep specs are a few KiB; this
/// leaves room for very wide ones without letting a client OOM us).
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target, without the query string.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers as `(lowercased-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Whether a boolean query flag is set (`?wait=true`, `?wait=1`, or
    /// bare `?wait`).
    #[must_use]
    pub fn query_flag(&self, name: &str) -> bool {
        self.query
            .iter()
            .any(|(k, v)| k == name && (v == "true" || v == "1" || v.is_empty()))
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for non-UTF-8 bodies.
    pub fn body_text(&self) -> crate::Result<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ServeError::BadRequest("request body is not UTF-8".into()))
    }
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Read one `\n`-terminated line without trusting the peer: bytes are
/// consumed through the `BufRead` buffer and the line is abandoned with
/// a typed 400 the moment it exceeds `limit`, so a client streaming an
/// endless header line cannot grow an unbounded `String` (the plain
/// `read_line` has no such bound).
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    limit: usize,
    what: &'static str,
) -> crate::Result<String> {
    let mut line = Vec::new();
    loop {
        let (consumed, done) = {
            let buf = reader.fill_buf().map_err(ServeError::io(what))?;
            if buf.is_empty() {
                (0, true)
            } else if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                line.extend_from_slice(&buf[..=pos]);
                (pos + 1, true)
            } else {
                line.extend_from_slice(buf);
                (buf.len(), false)
            }
        };
        reader.consume(consumed);
        if line.len() > limit {
            return Err(ServeError::BadRequest("request head too large".into()));
        }
        if done {
            break;
        }
    }
    String::from_utf8(line).map_err(|_| ServeError::BadRequest(format!("{what}: not valid UTF-8")))
}

/// Read and parse one request from the stream.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for malformed or oversized heads,
/// [`ServeError::PayloadTooLarge`] for oversized bodies,
/// [`ServeError::Io`] for transport failures.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> crate::Result<Request> {
    let line = read_line_bounded(reader, MAX_HEAD_BYTES, "reading request line")?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServeError::BadRequest("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ServeError::BadRequest("request line has no target".into()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let budget = MAX_HEAD_BYTES.saturating_sub(head_bytes);
        let header = read_line_bounded(reader, budget, "reading header")?;
        head_bytes += header.len();
        if header.is_empty() {
            // EOF before the blank line that ends the head.
            return Err(ServeError::BadRequest("truncated request head".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .map(|(_, value)| {
            value
                .parse::<usize>()
                .map_err(|_| ServeError::BadRequest(format!("bad Content-Length `{value}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ServeError::PayloadTooLarge {
            bytes: content_length,
            limit: MAX_BODY_BYTES,
        });
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(ServeError::io("reading body"))?;
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response and flush it.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with_headers(stream, status, content_type, &[], body)
}

/// [`write_response`] with extra response headers (e.g. `Retry-After`
/// on a 429).
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response_with_headers(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "Connection: close\r\n\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// Start a Server-Sent Events response: status line and headers only;
/// the caller then streams frames with [`write_sse_frame`].
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_sse_header(stream: &mut impl Write) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Write one SSE `data:` frame and flush it.
///
/// # Errors
///
/// Propagates transport failures (a disconnected client surfaces here).
pub fn write_sse_frame(stream: &mut impl Write, data: &str) -> std::io::Result<()> {
    write!(stream, "data: {data}\n\n")?;
    stream.flush()
}

/// A minimal blocking HTTP/1.1 client, used by the daemon's tests,
/// the serve smoke bench, and anything else that needs to poke the
/// endpoints without external dependencies.
pub mod client {
    use super::{BufRead, BufReader, Read, ServeError, TcpStream, Write};

    /// Issue one request with `Connection: close` and return
    /// `(status, body)`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] for transport failures,
    /// [`ServeError::BadRequest`] for unparseable responses.
    pub fn request(
        addr: &str,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> crate::Result<(u16, String)> {
        let (status, _headers, body) = request_full(addr, method, path, &[], body)?;
        Ok((status, body))
    }

    /// A parsed response: status code, lowercased header pairs, body.
    pub type FullResponse = (u16, Vec<(String, String)>, String);

    /// Issue one request with extra request headers and return
    /// `(status, response-headers, body)`. Header names come back
    /// lowercased.
    ///
    /// # Errors
    ///
    /// As [`request`].
    pub fn request_full(
        addr: &str,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> crate::Result<FullResponse> {
        let mut stream =
            TcpStream::connect(addr).map_err(ServeError::io(format!("connecting to {addr}")))?;
        let payload = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n",
            payload.len()
        );
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Connection: close\r\n\r\n");
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(payload.as_bytes()))
            .map_err(ServeError::io("writing request"))?;
        stream.flush().map_err(ServeError::io("flushing request"))?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader
            .read_line(&mut status_line)
            .map_err(ServeError::io("reading status line"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                ServeError::BadRequest(format!("unparseable status line `{status_line}`"))
            })?;
        let mut response_headers = Vec::new();
        loop {
            let mut header = String::new();
            reader
                .read_line(&mut header)
                .map_err(ServeError::io("reading response header"))?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                response_headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let mut body = String::new();
        reader
            .read_to_string(&mut body)
            .map_err(ServeError::io("reading response body"))?;
        Ok((status, response_headers, body))
    }

    /// Connect to an SSE endpoint and collect up to `frames` `data:`
    /// payloads, giving up after `timeout`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] for connection failures; returns however many
    /// frames arrived if the stream ends or times out early.
    pub fn sse_frames(
        addr: &str,
        path: &str,
        frames: usize,
        timeout: std::time::Duration,
    ) -> crate::Result<Vec<String>> {
        let stream =
            TcpStream::connect(addr).map_err(ServeError::io(format!("connecting to {addr}")))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ServeError::io("setting read timeout"))?;
        let mut writer = stream
            .try_clone()
            .map_err(ServeError::io("cloning stream"))?;
        write!(
            writer,
            "GET {path} HTTP/1.1\r\nHost: {addr}\r\nAccept: text/event-stream\r\n\r\n"
        )
        .map_err(ServeError::io("writing SSE request"))?;
        writer.flush().map_err(ServeError::io("flushing"))?;

        let mut reader = BufReader::new(stream);
        let mut collected = Vec::new();
        let started = std::time::Instant::now();
        while collected.len() < frames && started.elapsed() < timeout {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    if let Some(data) = line.trim_end().strip_prefix("data: ") {
                        collected.push(data.to_string());
                    }
                }
                Err(_) => break,
            }
        }
        Ok(collected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &str) -> crate::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(raw.as_bytes()).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let request = read_request(&mut BufReader::new(stream));
        writer.join().unwrap();
        request
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let r = roundtrip(
            "POST /v1/jobs?wait=true HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/jobs");
        assert!(r.query_flag("wait"));
        assert!(!r.query_flag("nope"));
        assert_eq!(r.body_text().unwrap(), "{\"a\":1}");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(roundtrip("\r\n").is_err());
        assert!(roundtrip("GET\r\n\r\n").is_err());
        assert!(roundtrip("GET / HTTP/1.1\r\nContent-Length: zap\r\n\r\n").is_err());
    }

    #[test]
    fn oversized_request_line_is_a_typed_400_not_a_hang() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES + 10));
        let err = roundtrip(&raw).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_header_block_is_a_typed_400() {
        let raw = format!(
            "GET / HTTP/1.1\r\nx-big: {}\r\n\r\n",
            "b".repeat(MAX_HEAD_BYTES)
        );
        let err = roundtrip(&raw).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
    }

    #[test]
    fn oversized_declared_body_is_a_typed_413() {
        let raw = format!(
            "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = roundtrip(&raw).unwrap_err();
        assert!(matches!(err, ServeError::PayloadTooLarge { .. }), "{err}");
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn truncated_head_is_a_typed_400() {
        // Connection closes before the blank line that ends the head.
        let err = roundtrip("GET / HTTP/1.1\r\nHost: x\r\n").unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
    }

    #[test]
    fn extra_headers_ride_the_response() {
        let mut out = Vec::new();
        write_response_with_headers(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "2".to_string())],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(reason(413) == "Payload Too Large");
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 202, "application/json", b"{\"id\":1}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"), "{text}");
        assert!(text.contains("Content-Length: 8\r\n"));
        assert!(text.ends_with("{\"id\":1}"));
        let mut sse = Vec::new();
        write_sse_header(&mut sse).unwrap();
        write_sse_frame(&mut sse, "{}").unwrap();
        let sse = String::from_utf8(sse).unwrap();
        assert!(sse.contains("text/event-stream"));
        assert!(sse.ends_with("data: {}\n\n"));
    }
}
