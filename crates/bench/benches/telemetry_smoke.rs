//! Telemetry overhead smoke check (not a criterion bench).
//!
//! Measures the engine at rack scale in three configurations — two
//! independent `engine::run` passes with disabled telemetry (the second
//! doubles as a run-to-run noise check now that the deprecated
//! `simulate` shim is gone) and one with a live in-memory recorder —
//! and enforces the zero-cost-when-disabled contract: the disabled
//! path must stay within 5 % of the baseline. Results land in
//! `BENCH_telemetry.json` at the workspace root so CI can archive the
//! trend.
//!
//! Run with `--quick` for a reduced-scale CI smoke pass.

use std::hint::black_box;
use std::time::Instant;

use sprint_sim::engine::{run, SimConfig};
use sprint_sim::policies::Greedy;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::generator::Population;
use sprint_workloads::Benchmark;

/// Maximum tolerated slowdown of the disabled-telemetry path.
const MAX_NOOP_OVERHEAD: f64 = 0.05;

struct Scale {
    agents: usize,
    epochs: usize,
    reps: usize,
}

fn measure(scale: &Scale, mut run: impl FnMut(&SimConfig) -> f64) -> (u64, f64) {
    let population = Population::homogeneous(Benchmark::DecisionTree, scale.agents).unwrap();
    let game = sprint_game::GameConfig::builder()
        .n_agents(scale.agents as u32)
        .n_min(scale.agents as f64 * 0.25)
        .n_max(scale.agents as f64 * 0.75)
        .build()
        .unwrap();
    let config = SimConfig::new(game, scale.epochs, 7).unwrap();
    // One warm-up rep, then take the minimum: the most noise-robust
    // estimator for "how fast can this go".
    let _ = population.spawn_streams(7).unwrap();
    let mut best = u64::MAX;
    let mut tasks = 0.0;
    for _ in 0..scale.reps {
        let started = Instant::now();
        tasks = run(&config);
        best = best.min(started.elapsed().as_nanos() as u64);
    }
    (best, tasks)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        Scale {
            agents: 200,
            epochs: 100,
            reps: 5,
        }
    } else {
        Scale {
            agents: 1000,
            epochs: 200,
            reps: 9,
        }
    };

    let population = Population::homogeneous(Benchmark::DecisionTree, scale.agents).unwrap();
    let (plain_nanos, plain_tasks) = measure(&scale, |config| {
        let mut streams = population.spawn_streams(7).unwrap();
        let mut telemetry = Telemetry::disabled();
        let r = run(
            black_box(config),
            &mut streams,
            &mut Greedy::new(),
            &mut telemetry,
        )
        .unwrap();
        r.total_tasks()
    });
    let (noop_nanos, noop_tasks) = measure(&scale, |config| {
        let mut streams = population.spawn_streams(7).unwrap();
        let mut telemetry = Telemetry::disabled();
        let r = run(
            black_box(config),
            &mut streams,
            &mut Greedy::new(),
            &mut telemetry,
        )
        .unwrap();
        r.total_tasks()
    });
    let (enabled_nanos, enabled_tasks) = measure(&scale, |config| {
        let mut streams = population.spawn_streams(7).unwrap();
        let mut telemetry = Telemetry::in_memory();
        let r = run(
            black_box(config),
            &mut streams,
            &mut Greedy::new(),
            &mut telemetry,
        )
        .unwrap();
        r.total_tasks()
    });

    assert_eq!(
        plain_tasks.to_bits(),
        noop_tasks.to_bits(),
        "disabled telemetry must not perturb throughput"
    );
    assert_eq!(
        plain_tasks.to_bits(),
        enabled_tasks.to_bits(),
        "enabled telemetry must not perturb throughput"
    );

    let noop_overhead = noop_nanos as f64 / plain_nanos as f64 - 1.0;
    let enabled_overhead = enabled_nanos as f64 / plain_nanos as f64 - 1.0;
    println!(
        "telemetry smoke ({} agents x {} epochs, min of {} reps)",
        scale.agents, scale.epochs, scale.reps
    );
    println!("  plain    {:>12} ns", plain_nanos);
    println!(
        "  noop     {:>12} ns  ({:+.2}%)",
        noop_nanos,
        noop_overhead * 100.0
    );
    println!(
        "  enabled  {:>12} ns  ({:+.2}%)",
        enabled_nanos,
        enabled_overhead * 100.0
    );

    let json = format!(
        "{{\n  \"agents\": {},\n  \"epochs\": {},\n  \"reps\": {},\n  \
         \"plain_nanos\": {},\n  \"noop_nanos\": {},\n  \"enabled_nanos\": {},\n  \
         \"noop_overhead\": {:.6},\n  \"enabled_overhead\": {:.6},\n  \
         \"max_noop_overhead\": {MAX_NOOP_OVERHEAD}\n}}\n",
        scale.agents,
        scale.epochs,
        scale.reps,
        plain_nanos,
        noop_nanos,
        enabled_nanos,
        noop_overhead,
        enabled_overhead
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_telemetry.json");
    std::fs::write(&out, json).expect("write BENCH_telemetry.json");
    println!("  snapshot {}", out.display());

    if noop_overhead > MAX_NOOP_OVERHEAD {
        eprintln!(
            "FAIL: disabled-telemetry overhead {:.2}% exceeds the {:.0}% budget",
            noop_overhead * 100.0,
            MAX_NOOP_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
    println!("PASS: disabled-telemetry overhead within budget");
}
