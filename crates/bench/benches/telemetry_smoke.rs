//! Telemetry overhead smoke check (not a criterion bench).
//!
//! Measures the engine at rack scale in three configurations — two
//! independent `engine::run` passes with disabled telemetry (the second
//! doubles as a run-to-run noise check now that the deprecated
//! `simulate` shim is gone) and one with a live in-memory recorder —
//! and enforces the zero-cost-when-disabled contract: the disabled
//! path must stay within 5 % of the baseline.
//!
//! Methodology, after the old estimator proved flaky (min of 5 reps at
//! 200 agents reported a −1.3 % "overhead"): the workload is 10k agents
//! so per-epoch kernel work dwarfs timer and scheduler jitter, reps are
//! **interleaved** round-robin across the three configurations so slow
//! drift (thermal, allocator growth, cache state) hits each equally,
//! and every configuration reports the **median** of its reps, which is
//! robust to outliers in both directions. Results land in
//! `BENCH_telemetry.json` at the workspace root so CI can archive the
//! trend.
//!
//! Run with `--quick` for a reduced-scale CI smoke pass.

use std::hint::black_box;
use std::time::Instant;

use sprint_sim::engine::{run, SimConfig};
use sprint_sim::policies::Greedy;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::generator::Population;
use sprint_workloads::Benchmark;

/// Maximum tolerated slowdown of the disabled-telemetry path.
const MAX_NOOP_OVERHEAD: f64 = 0.05;

struct Scale {
    agents: usize,
    epochs: usize,
    reps: usize,
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        Scale {
            agents: 10_000,
            epochs: 60,
            reps: 9,
        }
    } else {
        Scale {
            agents: 10_000,
            epochs: 200,
            reps: 15,
        }
    };

    let population = Population::homogeneous(Benchmark::DecisionTree, scale.agents).unwrap();
    let game = sprint_game::GameConfig::builder()
        .n_agents(scale.agents as u32)
        .n_min(scale.agents as f64 * 0.25)
        .n_max(scale.agents as f64 * 0.75)
        .build()
        .unwrap();
    let config = SimConfig::new(game, scale.epochs, 7).unwrap();

    let run_once = |telemetry: &mut Telemetry| -> f64 {
        let mut streams = population.spawn_streams(7).unwrap();
        let r = run(
            black_box(&config),
            &mut streams,
            &mut Greedy::new(),
            telemetry,
        )
        .unwrap();
        r.total_tasks()
    };

    // One untimed warm-up pass per configuration, then interleaved
    // timed reps: within each rep every configuration runs once, so no
    // configuration systematically enjoys a warmer process than the
    // others.
    let mut plain_tasks = run_once(&mut Telemetry::disabled());
    let mut noop_tasks = run_once(&mut Telemetry::disabled());
    let mut enabled_tasks = run_once(&mut Telemetry::in_memory());
    let mut plain_samples = Vec::with_capacity(scale.reps);
    let mut noop_samples = Vec::with_capacity(scale.reps);
    let mut enabled_samples = Vec::with_capacity(scale.reps);
    for _ in 0..scale.reps {
        let started = Instant::now();
        plain_tasks = run_once(&mut Telemetry::disabled());
        plain_samples.push(started.elapsed().as_nanos() as u64);

        let started = Instant::now();
        noop_tasks = run_once(&mut Telemetry::disabled());
        noop_samples.push(started.elapsed().as_nanos() as u64);

        let started = Instant::now();
        enabled_tasks = run_once(&mut Telemetry::in_memory());
        enabled_samples.push(started.elapsed().as_nanos() as u64);
    }
    let plain_nanos = median(&mut plain_samples);
    let noop_nanos = median(&mut noop_samples);
    let enabled_nanos = median(&mut enabled_samples);

    assert_eq!(
        plain_tasks.to_bits(),
        noop_tasks.to_bits(),
        "disabled telemetry must not perturb throughput"
    );
    assert_eq!(
        plain_tasks.to_bits(),
        enabled_tasks.to_bits(),
        "enabled telemetry must not perturb throughput"
    );

    let noop_overhead = noop_nanos as f64 / plain_nanos as f64 - 1.0;
    let enabled_overhead = enabled_nanos as f64 / plain_nanos as f64 - 1.0;
    println!(
        "telemetry smoke ({} agents x {} epochs, median of {} interleaved reps)",
        scale.agents, scale.epochs, scale.reps
    );
    println!("  plain    {plain_nanos:>12} ns");
    println!(
        "  noop     {:>12} ns  ({:+.2}%)",
        noop_nanos,
        noop_overhead * 100.0
    );
    println!(
        "  enabled  {:>12} ns  ({:+.2}%)",
        enabled_nanos,
        enabled_overhead * 100.0
    );

    let json = format!(
        "{{\n  \"agents\": {},\n  \"epochs\": {},\n  \"reps\": {},\n  \
         \"estimator\": \"median-interleaved\",\n  \
         \"plain_nanos\": {},\n  \"noop_nanos\": {},\n  \"enabled_nanos\": {},\n  \
         \"noop_overhead\": {:.6},\n  \"enabled_overhead\": {:.6},\n  \
         \"max_noop_overhead\": {MAX_NOOP_OVERHEAD}\n}}\n",
        scale.agents,
        scale.epochs,
        scale.reps,
        plain_nanos,
        noop_nanos,
        enabled_nanos,
        noop_overhead,
        enabled_overhead
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_telemetry.json");
    std::fs::write(&out, json).expect("write BENCH_telemetry.json");
    println!("  snapshot {}", out.display());

    if noop_overhead > MAX_NOOP_OVERHEAD {
        eprintln!(
            "FAIL: disabled-telemetry overhead {:.2}% exceeds the {:.0}% budget",
            noop_overhead * 100.0,
            MAX_NOOP_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
    println!("PASS: disabled-telemetry overhead within budget");
}
