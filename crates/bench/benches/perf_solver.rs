//! Criterion benches for the offline solvers (§4.4's "<10 s on a Core i5"
//! runtime claim, plus the value- vs policy-iteration ablation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sprint_game::bellman::{self, BellmanMethod};
use sprint_game::cooperative::CooperativeSearch;
use sprint_game::{GameConfig, MeanFieldSolver};
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

fn bench_bellman(c: &mut Criterion) {
    let cfg = GameConfig::paper_defaults();
    let density = Benchmark::DecisionTree.utility_density(512).unwrap();
    let mut group = c.benchmark_group("bellman");
    group.bench_function("value_iteration", |b| {
        b.iter(|| {
            bellman::solve(
                black_box(&cfg),
                black_box(&density),
                0.05,
                BellmanMethod::ValueIteration,
            )
            .unwrap()
        })
    });
    group.bench_function("policy_iteration", |b| {
        b.iter(|| {
            bellman::solve(
                black_box(&cfg),
                black_box(&density),
                0.05,
                BellmanMethod::PolicyIteration,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_algorithm1(c: &mut Criterion) {
    let cfg = GameConfig::paper_defaults();
    let mut group = c.benchmark_group("algorithm1");
    for b in [
        Benchmark::DecisionTree,
        Benchmark::LinearRegression,
        Benchmark::PageRank,
    ] {
        let density = b.utility_density(512).unwrap();
        group.bench_function(b.name(), |bench| {
            bench.iter_batched(
                || density.clone(),
                |d| {
                    MeanFieldSolver::new(cfg)
                        .run(black_box(&d), &mut Telemetry::noop())
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_cooperative_search(c: &mut Criterion) {
    let cfg = GameConfig::paper_defaults();
    let density = Benchmark::DecisionTree.utility_density(512).unwrap();
    c.bench_function("cooperative_search_512", |b| {
        b.iter(|| {
            CooperativeSearch::default_resolution()
                .solve(black_box(&cfg), black_box(&density))
                .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_bellman,
    bench_algorithm1,
    bench_cooperative_search
);
criterion_main!(benches);
