//! Serve-daemon smoke check (not a criterion bench).
//!
//! Boots a real `sprint serve` daemon on an ephemeral port, submits a
//! run job and a sweep job over HTTP, and enforces the API-redesign
//! contracts:
//!
//! - the HTTP-returned report bytes are identical to the bytes produced
//!   by executing the same `JobSpec` through the CLI code path
//!   (`sprint_serve::execute` + `report_json`);
//! - submit→report latency and concurrent-client throughput are
//!   measured and archived;
//! - the daemon drains gracefully (second drain is the typed 409).
//!
//! Results land in `BENCH_serve.json` at the workspace root so CI can
//! archive the trend. Run with `--quick` for a reduced-scale smoke pass.

use std::time::{Duration, Instant};

use sprint_game::EquilibriumCache;
use sprint_serve::harness;
use sprint_serve::http::client;
use sprint_serve::jobs::{self, ChaosMode, ChaosSpec, JobKind, JobSpec, RunSpec};
use sprint_serve::journal::{Journal, Transition};
use sprint_serve::{AdmissionConfig, Daemon, ExecOptions, ServeConfig};
use sprint_sim::sweep::{GameVariant, PopulationSpec, SweepSpec};
use sprint_sim::telemetry::Telemetry;
use sprint_sim::{PolicyKind, RunOptions};
use sprint_workloads::Benchmark;

fn run_spec(agents: u32, epochs: usize) -> JobSpec {
    JobSpec::new(JobKind::Run {
        spec: RunSpec {
            benchmark: "decision".to_string(),
            policy: PolicyKind::EquilibriumThreshold,
            agents,
            epochs,
            seed: 7,
            jobs: None,
        },
    })
}

fn sweep_spec(agents: u32, epochs: usize) -> JobSpec {
    JobSpec::new(JobKind::Sweep {
        spec: SweepSpec {
            games: vec![GameVariant::paper("paper")],
            populations: vec![PopulationSpec::homogeneous(Benchmark::Svm, agents)],
            plans: Vec::new(),
            adversaries: Vec::new(),
            policies: vec![PolicyKind::Greedy, PolicyKind::EquilibriumThreshold],
            seeds: vec![1, 2],
            epochs,
            options: RunOptions::default(),
        },
    })
}

/// The reference bytes: the same code path `sprint run --json` uses.
fn cli_bytes(spec: &JobSpec) -> String {
    let cache = EquilibriumCache::default();
    let report = jobs::execute(
        spec,
        &cache,
        &ExecOptions::default(),
        &mut Telemetry::noop(),
    )
    .expect("reference execution succeeds");
    jobs::report_json(&report).expect("reference report serializes")
}

fn submit_wait(addr: &str, spec: &JobSpec) -> (String, u64) {
    let body = serde_json::to_string(spec).expect("spec serializes");
    let started = Instant::now();
    let (status, response) =
        client::request(addr, "POST", "/v1/jobs?wait=true", Some(&body)).expect("submit succeeds");
    let nanos = started.elapsed().as_nanos() as u64;
    assert_eq!(status, 200, "waiting submit returns the report: {response}");
    (response, nanos)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (agents, epochs, clients) = if quick { (40, 60, 4) } else { (100, 150, 8) };

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: clients,
        ..ServeConfig::default()
    };
    let handle = Daemon::start(&config).expect("daemon boots");
    let addr = handle.addr().to_string();

    // Gate 1: HTTP run report bytes == CLI report bytes.
    let run = run_spec(agents, epochs);
    let want_run = cli_bytes(&run);
    let (got_run, run_nanos) = submit_wait(&addr, &run);
    assert_eq!(
        got_run, want_run,
        "HTTP run report must be byte-identical to the CLI report"
    );

    // Gate 2: HTTP sweep report bytes == CLI sweep bytes.
    let sweep = sweep_spec(agents, epochs);
    let want_sweep = cli_bytes(&sweep);
    let (got_sweep, sweep_nanos) = submit_wait(&addr, &sweep);
    assert_eq!(
        got_sweep, want_sweep,
        "HTTP sweep report must be byte-identical to the CLI report"
    );

    // Gate 3: chaos jobs execute end to end.
    let chaos = JobSpec::new(JobKind::Chaos {
        spec: ChaosSpec {
            benchmark: "decision".to_string(),
            agents,
            epochs,
            seeds: 2,
            fault_seed: 17,
            mode: ChaosMode::Partition {
                start: None,
                duration: 3,
            },
        },
    });
    let (chaos_report, chaos_nanos) = submit_wait(&addr, &chaos);
    assert!(
        chaos_report.contains("\"outcome\""),
        "chaos report carries an outcome"
    );

    // Throughput: N concurrent clients, all waiting on identical run
    // jobs. The shared cache single-flights the solve, so one miss
    // serves the whole burst.
    let started = Instant::now();
    std::thread::scope(|scope| {
        let addr = addr.as_str();
        let run = &run;
        let want = want_run.as_str();
        for _ in 0..clients {
            scope.spawn(move || {
                let (got, _) = submit_wait(addr, run);
                assert_eq!(got, want, "concurrent reports stay byte-identical");
            });
        }
    });
    let burst_nanos = started.elapsed().as_nanos() as u64;
    let throughput = clients as f64 / (burst_nanos as f64 / 1e9);

    let stats = handle.cache_stats();

    // Live telemetry is reachable while jobs run.
    let frames =
        client::sse_frames(&addr, "/v1/events", 1, Duration::from_secs(5)).expect("SSE connects");
    assert!(!frames.is_empty(), "SSE stream yields a health snapshot");

    // Graceful drain, and the typed double-shutdown error.
    let (status, _) = client::request(&addr, "POST", "/v1/drain", None).expect("drain submits");
    assert_eq!(status, 202, "first drain is accepted");
    let (status, body) = client::request(&addr, "POST", "/v1/drain", None).expect("second drain");
    assert_eq!(status, 409, "second drain is the typed conflict: {body}");
    handle.join().expect("daemon joins cleanly");

    // Recovery drill: journal `clients` acknowledged-but-unexecuted
    // jobs (a crash right after the ack), then time a journaled boot
    // until every one of them reaches `done` again.
    let dir = std::env::temp_dir().join(format!("sprint-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("recovery dir");
    let journal_path = dir.join("journal.jsonl");
    {
        let mut journal = Journal::open_append(&journal_path).expect("journal opens");
        for id in 1..=clients as u64 {
            journal
                .append(&Transition::Submitted {
                    id,
                    client: "bench".to_string(),
                    spec: run_spec(agents, epochs).into(),
                })
                .expect("journal append");
        }
    }
    let started = Instant::now();
    let handle = Daemon::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: clients,
        journal: Some(journal_path),
        spool: Some(dir.join("spool")),
        ..ServeConfig::default()
    })
    .expect("journaled daemon boots");
    let addr = handle.addr().to_string();
    for id in 1..=clients as u64 {
        harness::wait_for_job_state(&addr, id, "done", Duration::from_secs(120))
            .expect("journaled job recovers to done");
    }
    let recovery_nanos = started.elapsed().as_nanos() as u64;
    let (_, recovered) = client::request(&addr, "GET", "/v1/jobs/1/report", None).expect("report");
    assert_eq!(
        recovered, want_run,
        "recovered report must be byte-identical to the CLI report"
    );
    let (_, metrics) = client::request(&addr, "GET", "/v1/metrics", None).expect("metrics");
    assert!(
        metrics.contains(&format!("serve_jobs_recovered_total {clients}")),
        "every journaled job counts as recovered:\n{metrics}"
    );
    handle.drain().expect("recovery drain");
    handle.join().expect("recovery join");
    let _ = std::fs::remove_dir_all(&dir);

    // Shed drill: one worker, a queue bound of 2, and a burst of twice
    // the capacity. Every overflow submission must get a typed 429 (no
    // worker panics, no unbounded queue).
    let handle = Daemon::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        admission: AdmissionConfig {
            max_queue: 2,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("bounded daemon boots");
    let addr = handle.addr().to_string();
    let blocker = JobSpec::new(JobKind::Run {
        spec: RunSpec {
            benchmark: "decision".to_string(),
            policy: PolicyKind::Greedy,
            agents: 20,
            epochs: 50_000_000,
            seed: 99,
            jobs: None,
        },
    });
    let body = serde_json::to_string(&blocker).expect("blocker serializes");
    let (status, ack) =
        client::request(&addr, "POST", "/v1/jobs", Some(&body)).expect("blocker submits");
    assert_eq!(status, 202, "{ack}");
    harness::wait_for_job_state(&addr, 1, "running", Duration::from_secs(30))
        .expect("blocker starts");
    let quick = serde_json::to_string(&run_spec(agents, epochs)).expect("spec serializes");
    let mut shed_429s = 0u32;
    let burst = 4u32;
    for _ in 0..2 {
        let (status, _) =
            client::request(&addr, "POST", "/v1/jobs", Some(&quick)).expect("fill submits");
        assert_eq!(status, 202, "queue fills up to the bound");
    }
    for _ in 0..burst {
        let (status, _, body) = client::request_full(&addr, "POST", "/v1/jobs", &[], Some(&quick))
            .expect("overflow submits");
        if status == 429 {
            assert!(body.contains("queue full"), "{body}");
            shed_429s += 1;
        }
    }
    assert_eq!(
        shed_429s, burst,
        "every submission beyond the bound is a typed 429"
    );
    let (status, _) = client::request(&addr, "POST", "/v1/jobs/1/cancel", None).expect("cancel");
    assert_eq!(status, 202, "blocker cancels");
    handle.drain().expect("shed drain");
    handle.join().expect("shed join");

    println!("serve smoke ({agents} agents x {epochs} epochs, {clients} concurrent clients)");
    println!("  run submit→report   {run_nanos:>12} ns");
    println!("  sweep submit→report {sweep_nanos:>12} ns");
    println!("  chaos submit→report {chaos_nanos:>12} ns");
    println!("  burst throughput    {throughput:>12.2} jobs/s ({clients} clients)");
    println!(
        "  cache               {} hits / {} misses",
        stats.hits, stats.misses
    );
    println!("  recovery replay     {recovery_nanos:>12} ns ({clients} journaled jobs)");
    println!("  shed burst          {shed_429s:>12} typed 429s of {burst} overflow submissions");

    let json = format!(
        "{{\n  \"agents\": {agents},\n  \"epochs\": {epochs},\n  \"clients\": {clients},\n  \
         \"run_submit_report_nanos\": {run_nanos},\n  \
         \"sweep_submit_report_nanos\": {sweep_nanos},\n  \
         \"chaos_submit_report_nanos\": {chaos_nanos},\n  \
         \"burst_nanos\": {burst_nanos},\n  \"throughput_jobs_per_s\": {throughput:.4},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"recovery_jobs\": {clients},\n  \"recovery_replay_nanos\": {recovery_nanos},\n  \
         \"shed_burst\": {burst},\n  \"shed_429s\": {shed_429s},\n  \
         \"run_bytes_identical\": true,\n  \"sweep_bytes_identical\": true,\n  \
         \"recovery_bytes_identical\": true\n}}\n",
        stats.hits, stats.misses
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    std::fs::write(&out, json).expect("write BENCH_serve.json");
    println!("  snapshot {}", out.display());
    println!("PASS: HTTP and CLI reports byte-identical; drain contract holds");
}
