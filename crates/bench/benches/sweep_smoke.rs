//! Sweep-engine smoke check (not a criterion bench).
//!
//! Runs a seeds-heavy sweep through the unified `run_sweep` entry point
//! twice — serial (`jobs = 1`) and parallel (`jobs = 4`) — and enforces
//! the tentpole contracts:
//!
//! - the two reports serialize to byte-identical JSON;
//! - repeated game configs hit the equilibrium cache (≥ 90 % hit rate);
//! - parallel execution is ≥ 2× faster than serial, enforced only when
//!   the host actually has ≥ 4 cores (CI containers may not).
//!
//! Results land in `BENCH_sweep.json` at the workspace root so CI can
//! archive the trend. Run with `--quick` for a reduced-scale smoke pass.

use std::time::Instant;

use sprint_sim::sweep::{run_sweep, GameVariant, PopulationSpec, SweepSpec};
use sprint_sim::telemetry::Telemetry;
use sprint_sim::{PolicyKind, RunOptions};
use sprint_workloads::Benchmark;

/// Minimum tolerated cache hit rate on the seeds-only solve axis.
const MIN_HIT_RATE: f64 = 0.90;
/// Minimum tolerated parallel speedup (enforced with ≥ 4 cores).
const MIN_SPEEDUP: f64 = 2.0;
const PARALLEL_JOBS: usize = 4;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (agents, epochs) = if quick { (60, 60) } else { (150, 150) };
    // Two policies x 16 seeds: Greedy trials are pure simulation; the
    // E-T trials all request the same game, so the cache sees 1 miss and
    // 15 hits (93.75 %).
    let spec = SweepSpec {
        games: vec![GameVariant::paper("paper")],
        populations: vec![PopulationSpec::homogeneous(Benchmark::DecisionTree, agents)],
        plans: Vec::new(),
        adversaries: Vec::new(),
        policies: vec![PolicyKind::Greedy, PolicyKind::EquilibriumThreshold],
        seeds: (1..=16).collect(),
        epochs,
        options: RunOptions::default(),
    };

    let started = Instant::now();
    let serial = run_sweep(&spec, 1, &mut Telemetry::noop()).expect("serial sweep succeeds");
    let serial_nanos = started.elapsed().as_nanos() as u64;

    let mut kit = Telemetry::in_memory();
    let started = Instant::now();
    let parallel = run_sweep(&spec, PARALLEL_JOBS, &mut kit).expect("parallel sweep succeeds");
    let parallel_nanos = started.elapsed().as_nanos() as u64;

    let serial_json = serde_json::to_string(&serial).expect("report serializes");
    let parallel_json = serde_json::to_string(&parallel).expect("report serializes");
    assert_eq!(
        serial_json, parallel_json,
        "jobs=1 and jobs={PARALLEL_JOBS} must serialize byte-identically"
    );

    let hits = kit
        .registry
        .counter_value("cache.equilibrium.hits")
        .unwrap_or(0);
    let misses = kit
        .registry
        .counter_value("cache.equilibrium.misses")
        .unwrap_or(0);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let speedup = serial_nanos as f64 / parallel_nanos as f64;
    let enforce_speedup = cores >= PARALLEL_JOBS;

    println!(
        "sweep smoke ({} trials: {agents} agents x {epochs} epochs, 2 policies x 16 seeds)",
        serial.trials
    );
    println!("  serial    {serial_nanos:>12} ns (jobs=1)");
    println!("  parallel  {parallel_nanos:>12} ns (jobs={PARALLEL_JOBS}, {cores} cores)");
    println!("  speedup   {speedup:>12.2}x");
    println!(
        "  cache     {hits} hits / {misses} misses ({:.1}%)",
        hit_rate * 100.0
    );

    let json = format!(
        "{{\n  \"agents\": {agents},\n  \"epochs\": {epochs},\n  \"trials\": {},\n  \
         \"serial_nanos\": {serial_nanos},\n  \"parallel_nanos\": {parallel_nanos},\n  \
         \"jobs\": {PARALLEL_JOBS},\n  \"cores\": {cores},\n  \"speedup\": {speedup:.4},\n  \
         \"speedup_enforced\": {enforce_speedup},\n  \"min_speedup\": {MIN_SPEEDUP},\n  \
         \"cache_hits\": {hits},\n  \"cache_misses\": {misses},\n  \
         \"cache_hit_rate\": {hit_rate:.4},\n  \"min_hit_rate\": {MIN_HIT_RATE}\n}}\n",
        serial.trials
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sweep.json");
    std::fs::write(&out, json).expect("write BENCH_sweep.json");
    println!("  snapshot {}", out.display());

    if hit_rate < MIN_HIT_RATE {
        eprintln!(
            "FAIL: cache hit rate {:.1}% below the {:.0}% floor",
            hit_rate * 100.0,
            MIN_HIT_RATE * 100.0
        );
        std::process::exit(1);
    }
    if enforce_speedup && speedup < MIN_SPEEDUP {
        eprintln!("FAIL: parallel speedup {speedup:.2}x below the {MIN_SPEEDUP:.1}x floor");
        std::process::exit(1);
    }
    if enforce_speedup {
        println!("PASS: byte-identical reports, cache and speedup within budget");
    } else {
        println!(
            "PASS: byte-identical reports, cache within budget \
             (speedup not enforced on {cores} core(s))"
        );
    }
}
