//! Ablation: idle recovery (paper) vs normal-mode recovery.
//!
//! The paper's greedy pathology rests on "idle recovery harms
//! performance" (§6.1). If servers could compute in normal mode while
//! batteries recharge, how much of E-T's advantage would remain?

use sprint_bench::{paper_scenario, TRIAL_SEEDS};
use sprint_sim::engine::RecoverySemantics;
use sprint_sim::policy::PolicyKind;
use sprint_sim::runner::compare;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

const EPOCHS: usize = 600;

fn main() {
    sprint_bench::header(
        "Ablation: recovery semantics",
        "Idle recovery (paper) vs normal-mode recovery",
        "E-T's advantage shrinks when emergencies stop idling the rack, but the \
         ordering survives",
    );
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14}",
        "benchmark", "G (idle)", "G (normal)", "E-T/G (idle)", "E-T/G (normal)"
    );
    for b in [Benchmark::DecisionTree, Benchmark::PageRank] {
        let mut cells = Vec::new();
        for mode in [RecoverySemantics::Idle, RecoverySemantics::NormalMode] {
            let scenario = paper_scenario(b, EPOCHS).with_recovery(mode);
            let cmp = compare(
                &scenario,
                &[PolicyKind::Greedy, PolicyKind::EquilibriumThreshold],
                &TRIAL_SEEDS,
                &mut Telemetry::noop(),
            )
            .expect("comparison succeeds");
            cells.push((
                cmp.outcome(PolicyKind::Greedy)
                    .expect("greedy present")
                    .tasks_per_agent_epoch,
                cmp.normalized_to_greedy(PolicyKind::EquilibriumThreshold)
                    .expect("greedy present"),
            ));
        }
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>14.2} {:>14.2}",
            b.name(),
            cells[0].0,
            cells[1].0,
            cells[0].1,
            cells[1].1
        );
    }
}
