//! Ablation: UPS sprint completion vs I²t truncation on tripped epochs.
//!
//! The paper's §2.2 says batteries "complete sprints in progress", which
//! is generous to Greedy: its constant emergencies still harvest full
//! sprint utility. The truncated semantics end the epoch at the breaker's
//! I²t trip time instead. The measured effect is small — staggered greedy
//! overloads are mild, so trips come late in the epoch — which rules this
//! modeling choice *out* as the source of the E-T/G factor gap documented
//! in EXPERIMENTS.md.

use sprint_bench::{paper_scenario, TRIAL_SEEDS};
use sprint_sim::engine::TripInterruption;
use sprint_sim::policy::PolicyKind;
use sprint_sim::runner::compare;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

const EPOCHS: usize = 600;

fn main() {
    sprint_bench::header(
        "Ablation: trip interruption",
        "E-T/G under UPS-completion vs I²t-truncated tripped epochs",
        "paper Figure 8 reports E-T up to 6.8x G; truncation barely moves our \
         factor, ruling it out as the gap's cause",
    );
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "benchmark", "G (UPS)", "E-T/G (UPS)", "G (trunc)", "E-T/G (trunc)"
    );
    for b in [
        Benchmark::DecisionTree,
        Benchmark::Svm,
        Benchmark::PageRank,
        Benchmark::Kmeans,
    ] {
        let mut cells = Vec::new();
        for mode in [TripInterruption::CompleteOnUps, TripInterruption::Truncated] {
            let scenario = paper_scenario(b, EPOCHS).with_interruption(mode);
            let cmp = compare(
                &scenario,
                &[PolicyKind::Greedy, PolicyKind::EquilibriumThreshold],
                &TRIAL_SEEDS,
                &mut Telemetry::noop(),
            )
            .expect("comparison succeeds");
            let g = cmp
                .outcome(PolicyKind::Greedy)
                .expect("greedy present")
                .tasks_per_agent_epoch;
            let ratio = cmp
                .normalized_to_greedy(PolicyKind::EquilibriumThreshold)
                .expect("greedy present");
            cells.push((g, ratio));
        }
        println!(
            "{:<14} {:>14.3} {:>14.2} {:>14.3} {:>14.2}",
            b.name(),
            cells[0].0,
            cells[0].1,
            cells[1].0,
            cells[1].1
        );
    }
}
