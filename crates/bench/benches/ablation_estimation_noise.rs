//! Ablation: sensitivity of the equilibrium policy to online utility
//! estimation error.
//!
//! The paper's online strategy estimates a sprint's utility from brief
//! profiling or heuristics (§4.4); the evaluation assumes good estimates.
//! This ablation injects multiplicative estimation noise into the E-T
//! decisions while keeping realized utilities exact.

use sprint_bench::{paper_scenario, TRIAL_SEEDS};
use sprint_sim::engine::UtilityEstimation;
use sprint_sim::policy::PolicyKind;
use sprint_sim::runner::compare;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

const EPOCHS: usize = 600;

fn main() {
    sprint_bench::header(
        "Ablation: estimation noise",
        "E-T throughput vs relative error of online utility estimates",
        "extension — the paper assumes profiled estimates; thresholds tolerate \
         moderate noise because they cut density valleys",
    );
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "0%", "10%", "25%", "50%", "100%"
    );
    for b in [
        Benchmark::DecisionTree,
        Benchmark::PageRank,
        Benchmark::Kmeans,
    ] {
        print!("{:<14}", b.name());
        for sd in [0.0, 0.10, 0.25, 0.50, 1.0] {
            let scenario = paper_scenario(b, EPOCHS).with_estimation(if sd == 0.0 {
                UtilityEstimation::Oracle
            } else {
                UtilityEstimation::Noisy { relative_sd: sd }
            });
            let cmp = compare(
                &scenario,
                &[PolicyKind::EquilibriumThreshold],
                &TRIAL_SEEDS,
                &mut Telemetry::noop(),
            )
            .expect("comparison succeeds");
            let tasks = cmp
                .outcome(PolicyKind::EquilibriumThreshold)
                .expect("policy present")
                .tasks_per_agent_epoch;
            print!(" {tasks:>9.3}");
        }
        println!();
    }
    println!();
    println!("cells: tasks per agent-epoch under E-T at each relative estimation error.");
}
