//! Figure 8: task throughput normalized to Greedy for every benchmark
//! under the four policies (homogeneous racks).

use sprint_bench::{paper_scenario, TRIAL_SEEDS};
use sprint_sim::policy::PolicyKind;
use sprint_sim::runner::compare;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

const EPOCHS: usize = 600;

fn main() {
    sprint_bench::header(
        "Figure 8",
        "Performance normalized to Greedy, single application type",
        "E-T beats G by up to 6.8x and E-B by up to 4.8x; E-T ≈ 90% of C-T \
         (linear/correlation are outliers)",
    );
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "benchmark", "G", "E-B", "E-T", "C-T", "E-T/C-T"
    );
    for b in Benchmark::ALL {
        let scenario = paper_scenario(b, EPOCHS);
        let cmp = compare(
            &scenario,
            &PolicyKind::ALL,
            &TRIAL_SEEDS,
            &mut Telemetry::noop(),
        )
        .expect("comparison succeeds");
        let norm = |k: PolicyKind| cmp.normalized_to_greedy(k).expect("greedy present");
        let et = norm(PolicyKind::EquilibriumThreshold);
        let ct = norm(PolicyKind::CooperativeThreshold);
        println!(
            "{:<14} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>9.2}",
            b.name(),
            1.0,
            norm(PolicyKind::ExponentialBackoff),
            et,
            ct,
            et / ct
        );
    }
}
