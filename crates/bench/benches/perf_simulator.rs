//! Criterion benches for the rack simulator: epoch throughput at paper
//! scale (1000 agents) under cheap (Greedy) and stateful (E-B, E-T)
//! policies.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sprint_sim::engine::{run, SimConfig};
use sprint_sim::policies::{ExponentialBackoff, Greedy};
use sprint_sim::policy::PolicyKind;
use sprint_sim::scenario::Scenario;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::generator::Population;
use sprint_workloads::Benchmark;

const EPOCHS: usize = 100;

fn bench_engine(c: &mut Criterion) {
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 1000, EPOCHS).unwrap();
    let game = *scenario.game();
    let population = Population::homogeneous(Benchmark::DecisionTree, 1000).unwrap();

    let mut group = c.benchmark_group("engine_1000x100");
    group.bench_function("greedy", |b| {
        b.iter_batched(
            || {
                (
                    SimConfig::new(game, EPOCHS, 7).unwrap(),
                    population.spawn_streams(7).unwrap(),
                )
            },
            |(cfg, mut streams)| {
                run(
                    black_box(&cfg),
                    &mut streams,
                    &mut Greedy::new(),
                    &mut Telemetry::noop(),
                )
                .unwrap()
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("backoff", |b| {
        b.iter_batched(
            || {
                (
                    SimConfig::new(game, EPOCHS, 7).unwrap(),
                    population.spawn_streams(7).unwrap(),
                    ExponentialBackoff::new(1000, 7),
                )
            },
            |(cfg, mut streams, mut policy)| {
                run(
                    black_box(&cfg),
                    &mut streams,
                    &mut policy,
                    &mut Telemetry::noop(),
                )
                .unwrap()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_scenario_run(c: &mut Criterion) {
    // Full E-T pipeline: offline solve + online simulation.
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 1000, EPOCHS).unwrap();
    c.bench_function("scenario_equilibrium_run", |b| {
        b.iter(|| {
            scenario
                .execute(
                    black_box(PolicyKind::EquilibriumThreshold),
                    7,
                    &mut Telemetry::noop(),
                )
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_engine, bench_scenario_run);
criterion_main!(benches);
