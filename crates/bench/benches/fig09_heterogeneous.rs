//! Figure 9: task throughput normalized to Greedy as the number of
//! application types grows from 1 to 11 (ten random mixes per point).

use sprint_sim::policy::PolicyKind;
use sprint_sim::runner::compare;
use sprint_sim::scenario::Scenario;
use sprint_sim::telemetry::Telemetry;
use sprint_stats::rng::seeded_rng;
use sprint_workloads::generator::Population;

const AGENTS: usize = 1000;
const EPOCHS: usize = 400;
const MIXES_PER_POINT: usize = 10;

fn main() {
    sprint_bench::header(
        "Figure 9",
        "Performance normalized to Greedy vs number of application types",
        "E-T performs much better than G and E-B at every mix size \
         (C-T omitted: per-type exhaustive search is computationally hard)",
    );
    let mut rng = seeded_rng(0xF19);
    println!("{:>6} {:>7} {:>7} {:>7}", "types", "G", "E-B", "E-T");
    for k in 1..=11usize {
        let mut sums = [0.0f64; 3];
        for mix in 0..MIXES_PER_POINT {
            let population = Population::random_mix(k, AGENTS, &mut rng).expect("valid mix size");
            let scenario = Scenario::with_population(population, EPOCHS).expect("valid scenario");
            let policies = [
                PolicyKind::Greedy,
                PolicyKind::ExponentialBackoff,
                PolicyKind::EquilibriumThreshold,
            ];
            let cmp = compare(
                &scenario,
                &policies,
                &[100 + mix as u64],
                &mut Telemetry::noop(),
            )
            .expect("comparison succeeds");
            for (i, p) in policies.into_iter().enumerate() {
                sums[i] += cmp.normalized_to_greedy(p).expect("greedy present");
            }
        }
        let n = MIXES_PER_POINT as f64;
        println!(
            "{k:>6} {:>7.2} {:>7.2} {:>7.2}",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n
        );
    }
}
