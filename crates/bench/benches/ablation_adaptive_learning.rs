//! Ablation/extension: can agents learn the equilibrium online?
//!
//! The paper's thresholds come from the coordinator's offline Algorithm 1.
//! Here every agent runs the AdaptiveThreshold learner — best-responding
//! to the trip frequency it actually observes — and we compare the learned
//! threshold and realized throughput against the offline equilibrium.

use sprint_bench::paper_scenario;
use sprint_game::{GameConfig, MeanFieldSolver};
use sprint_sim::engine::{run, SimConfig};
use sprint_sim::policies::AdaptiveThreshold;
use sprint_sim::policy::PolicyKind;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

const EPOCHS: usize = 2000;

fn main() {
    sprint_bench::header(
        "Ablation: adaptive learning",
        "Online best-response vs offline Algorithm 1",
        "extension — the paper computes thresholds offline; learning should converge \
         to the same equilibrium",
    );
    let config = GameConfig::paper_defaults();
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "benchmark", "offline u_T", "learned u_T", "E-T tasks", "learn tasks", "trips"
    );
    for b in [Benchmark::DecisionTree, Benchmark::Svm, Benchmark::PageRank] {
        let density = b.utility_density(512).expect("valid bins");
        let offline = MeanFieldSolver::new(config)
            .run(&density, &mut Telemetry::noop())
            .expect("equilibrium exists");

        let scenario = paper_scenario(b, EPOCHS);
        let offline_run = scenario
            .execute(PolicyKind::EquilibriumThreshold, 5, &mut Telemetry::noop())
            .expect("simulation succeeds");

        let mut learner =
            AdaptiveThreshold::with_defaults(config, density).expect("valid learner parameters");
        let mut streams = scenario
            .population()
            .spawn_streams(5)
            .expect("streams spawn");
        let sim_config = SimConfig::new(config, EPOCHS, 5).expect("valid epochs");
        let learned_run = run(
            &sim_config,
            &mut streams,
            &mut learner,
            &mut Telemetry::noop(),
        )
        .expect("simulation succeeds");

        println!(
            "{:<14} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>7}",
            b.name(),
            offline.threshold(),
            learner.threshold(),
            offline_run.tasks_per_agent_epoch(),
            learned_run.tasks_per_agent_epoch(),
            learned_run.trips()
        );
    }
    println!();
    println!(
        "learned thresholds settle near the offline equilibrium; early pessimism \
         (belief P = 1) costs a brief aggressive transient."
    );
}
