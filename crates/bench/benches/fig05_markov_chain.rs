//! Figure 5: the active/cooling Markov chain — stationary distribution of
//! agent states as sprint propensity varies, cross-checked between the
//! closed form and a general-chain solve.

use sprint_stats::markov::{active_cooling_stationary, MarkovChain};

fn main() {
    sprint_bench::header(
        "Figure 5",
        "Agent state transitions (sprint -> cool -> active)",
        "stationary p_A feeds Equation 10: n_S = p_s · p_A · N",
    );
    let pc = 0.5; // Table 2
    println!(
        "{:>6} {:>12} {:>12} {:>14}",
        "p_s", "p_A (closed)", "p_A (chain)", "n_S (N = 1000)"
    );
    for i in 0..=10 {
        let ps = i as f64 / 10.0;
        let (pa, _) = active_cooling_stationary(ps, pc).expect("valid probabilities");
        let chain =
            MarkovChain::new(vec![vec![1.0 - ps, ps], vec![1.0 - pc, pc]]).expect("row-stochastic");
        let pi = chain.stationary_direct().expect("irreducible chain");
        println!(
            "{ps:>6.2} {pa:>12.4} {:>12.4} {:>14.1}",
            pi[0],
            ps * pa * 1000.0
        );
    }
}
