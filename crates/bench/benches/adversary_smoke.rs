//! Adversary-defense acceptance gate (not a criterion bench).
//!
//! Runs the ISSUE-6 acceptance matrix through the unified
//! [`runner::adversary_defense`] entry point: 10 % greedy defectors
//! under sensor noise and lossy transport, three legs per trial
//! (honest baseline, adversaries unchecked, adversaries under
//! graduated enforcement) and enforces the tentpole contracts:
//!
//! - graduated enforcement restores ≥ 95 % of the honest population's
//!   E-T throughput (`recovery_ratio`);
//! - zero honest agents are ever *permanently* excluded
//!   (`false_positive_exclusions == 0`), across every leg — the
//!   honest-baseline leg runs with the detector armed, so any
//!   exclusion there is a false positive by construction;
//! - the defense must actually matter: the unchecked leg stays below
//!   the recovery the enforcement leg achieves.
//!
//! Results land in `BENCH_adversary.json` at the workspace root so CI
//! can archive the trend. Run with `--quick` for the 25-trial smoke
//! profile; the default profile is the full 500-trial matrix.

use std::time::Instant;

use sprint_sim::control::{ControlConfig, DetectorConfig};
use sprint_sim::faults::FaultPlan;
use sprint_sim::runner;
use sprint_sim::scenario::Scenario;
use sprint_sim::telemetry::Telemetry;
use sprint_sim::AdversaryMix;
use sprint_workloads::Benchmark;

/// Minimum tolerated enforcement recovery of honest E-T throughput.
const MIN_RECOVERY: f64 = 0.95;
/// Defector share of the rack population.
const ADVERSARY_FRACTION: f64 = 0.1;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials: u64 = if quick { 25 } else { 500 };
    let (agents, epochs) = (100, 1_000);

    let seeds: Vec<u64> = (1..=trials).collect();
    let scenario =
        Scenario::homogeneous(Benchmark::DecisionTree, agents, epochs).expect("valid scenario");
    let mix = AdversaryMix::greedy(ADVERSARY_FRACTION, 23);

    let started = Instant::now();
    let report = runner::adversary_defense(
        &scenario,
        FaultPlan::adversary_chaos(17),
        ControlConfig::default(),
        DetectorConfig::default(),
        mix,
        &seeds,
        &mut Telemetry::noop(),
    )
    .expect("adversary defense suite succeeds");
    let elapsed_nanos = started.elapsed().as_nanos() as u64;

    let latency = report
        .mean_detection_latency_epochs
        .map_or("null".to_string(), |l| format!("{l:.4}"));

    println!(
        "adversary smoke ({trials} trials: {agents} agents x {epochs} epochs, \
         {:.0}% greedy defectors)",
        ADVERSARY_FRACTION * 100.0
    );
    println!(
        "  honest     {:>10.4} tasks/agent/epoch",
        report.honest_throughput
    );
    println!(
        "  unchecked  {:>10.4} ({:.4}x)",
        report.unenforced_throughput, report.unenforced_ratio
    );
    println!(
        "  enforced   {:>10.4} ({:.4}x)",
        report.enforced_throughput, report.recovery_ratio
    );
    println!(
        "  sanctions  {} detections, {} exclusions, {} readmissions",
        report.detections, report.exclusions, report.readmissions
    );
    println!(
        "  errors     {} false-positive exclusions, {} false negatives, \
         mean detection latency {latency} epochs",
        report.false_positive_exclusions, report.false_negatives
    );
    println!("  elapsed    {elapsed_nanos} ns");

    let json = format!(
        "{{\n  \"agents\": {agents},\n  \"epochs\": {epochs},\n  \"trials\": {trials},\n  \
         \"adversary_fraction\": {ADVERSARY_FRACTION},\n  \
         \"honest_throughput\": {:.6},\n  \"unenforced_throughput\": {:.6},\n  \
         \"enforced_throughput\": {:.6},\n  \"recovery_ratio\": {:.6},\n  \
         \"unenforced_ratio\": {:.6},\n  \"min_recovery\": {MIN_RECOVERY},\n  \
         \"detections\": {},\n  \"exclusions\": {},\n  \"readmissions\": {},\n  \
         \"false_positive_exclusions\": {},\n  \"false_negatives\": {},\n  \
         \"mean_detection_latency_epochs\": {latency},\n  \"elapsed_nanos\": {elapsed_nanos}\n}}\n",
        report.honest_throughput,
        report.unenforced_throughput,
        report.enforced_throughput,
        report.recovery_ratio,
        report.unenforced_ratio,
        report.detections,
        report.exclusions,
        report.readmissions,
        report.false_positive_exclusions,
        report.false_negatives,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_adversary.json");
    std::fs::write(&out, json).expect("write BENCH_adversary.json");
    println!("  snapshot {}", out.display());

    if report.false_positive_exclusions > 0 {
        eprintln!(
            "FAIL: {} honest agent exclusion(s) — permanent sanctions must never hit \
             cooperative agents",
            report.false_positive_exclusions
        );
        std::process::exit(1);
    }
    if report.recovery_ratio < MIN_RECOVERY {
        eprintln!(
            "FAIL: enforcement recovered only {:.4} of honest throughput \
             (floor {MIN_RECOVERY})",
            report.recovery_ratio
        );
        std::process::exit(1);
    }
    if report.unenforced_ratio >= report.recovery_ratio {
        eprintln!(
            "FAIL: unchecked defectors ({:.4}) kept pace with enforcement ({:.4}) — \
             the sanctions ladder is not doing the work",
            report.unenforced_ratio, report.recovery_ratio
        );
        std::process::exit(1);
    }
    println!(
        "PASS: recovery {:.4} >= {MIN_RECOVERY}, zero false-positive exclusions",
        report.recovery_ratio
    );
}
