//! Ablation: the paper's literal Algorithm 1 vs damped iteration.
//!
//! The best-response map is increasing in P_trip, so undamped iteration
//! (the paper's Algorithm 1) can oscillate; damping guarantees progress.
//! Both must agree on the fixed point where both converge.

use sprint_game::bellman::BellmanMethod;
use sprint_game::meanfield::{MeanFieldSolver, SolverOptions};
use sprint_game::GameConfig;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

fn main() {
    sprint_bench::header(
        "Ablation: mean-field damping",
        "Algorithm 1 (undamped, value iteration) vs damped policy iteration",
        "same equilibria; damping + policy iteration converges in fewer, cheaper steps",
    );
    let config = GameConfig::paper_defaults();
    println!(
        "{:<14} {:>12} {:>9} {:>12} {:>9} {:>10}",
        "benchmark", "literal u_T", "iters", "damped u_T", "iters", "|Δu_T|"
    );
    for b in [
        Benchmark::DecisionTree,
        Benchmark::LinearRegression,
        Benchmark::PageRank,
        Benchmark::Correlation,
        Benchmark::Kmeans,
    ] {
        let density = b.utility_density(512).expect("valid bins");
        let literal = MeanFieldSolver::with_options(config, SolverOptions::paper_literal())
            .run(&density, &mut Telemetry::noop());
        let damped = MeanFieldSolver::with_options(
            config,
            SolverOptions {
                method: BellmanMethod::PolicyIteration,
                damping: 0.5,
                tolerance: 1e-9,
                max_iterations: 500,
                iteration_budget: None,
            },
        )
        .run(&density, &mut Telemetry::noop())
        .expect("damped solve succeeds");
        match literal {
            Ok(lit) => println!(
                "{:<14} {:>12.4} {:>9} {:>12.4} {:>9} {:>10.2e}",
                b.name(),
                lit.threshold(),
                lit.iterations(),
                damped.threshold(),
                damped.iterations(),
                (lit.threshold() - damped.threshold()).abs()
            ),
            Err(e) => println!(
                "{:<14} {:>12} {:>9} {:>12.4} {:>9}  (literal: {e})",
                b.name(),
                "—",
                "—",
                damped.threshold(),
                damped.iterations()
            ),
        }
    }
}
