//! Figure 12: efficiency of equilibrium thresholds (E-T throughput ÷ C-T
//! throughput) as recovery grows more expensive (p_r → 1).
//!
//! The collapse appears for workloads whose equilibrium trips the breaker
//! (Linear Regression's greedy equilibrium); profiles whose equilibrium
//! stays below N_min (Decision Tree) remain efficient until the
//! prisoner's-dilemma limit.

use sprint_game::folk::efficiency;
use sprint_game::GameConfig;
use sprint_workloads::Benchmark;

fn main() {
    sprint_bench::header(
        "Figure 12",
        "Efficiency of equilibrium thresholds vs p_r",
        "efficiency falls as recovery from emergencies becomes expensive",
    );
    let linear = Benchmark::LinearRegression
        .utility_density(512)
        .expect("valid bins");
    let decision = Benchmark::DecisionTree
        .utility_density(512)
        .expect("valid bins");
    println!(
        "{:>6} {:>18} {:>18}",
        "p_r", "linear (trips)", "decision (safe)"
    );
    for i in 0..=19 {
        let pr = i as f64 * 0.05;
        let cfg = GameConfig::builder().p_recovery(pr).build().expect("valid");
        let e_lin = efficiency(&cfg, &linear).unwrap_or(f64::NAN);
        let e_dec = efficiency(&cfg, &decision).unwrap_or(f64::NAN);
        println!("{pr:>6.2} {e_lin:>18.3} {e_dec:>18.3}");
    }
    // The prisoner's-dilemma limit itself.
    let cfg = GameConfig::builder()
        .p_recovery(0.999)
        .build()
        .expect("valid");
    println!(
        "{:>6.3} {:>18.3} {:>18.3}",
        0.999,
        efficiency(&cfg, &linear).unwrap_or(f64::NAN),
        efficiency(&cfg, &decision).unwrap_or(f64::NAN)
    );
}
