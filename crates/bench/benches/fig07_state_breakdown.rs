//! Figure 7: percentage of time agents spend in each state (active but
//! not sprinting, chip cooling, rack recovery, sprinting) for the
//! representative application under each policy.

use sprint_bench::{paper_scenario, PAPER_EPOCHS};
use sprint_sim::policy::PolicyKind;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

fn main() {
    sprint_bench::header(
        "Figure 7",
        "State occupancy, 1000 x DecisionTree",
        "G: >50% recovery; E-B: ~40% active-not-sprinting; E-T/C-T sprint timely",
    );
    let scenario = paper_scenario(Benchmark::DecisionTree, PAPER_EPOCHS);
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10}",
        "policy", "active%", "cooling%", "recovery%", "sprint%"
    );
    for kind in PolicyKind::ALL {
        let result = scenario
            .execute(kind, 11, &mut Telemetry::noop())
            .expect("simulation succeeds");
        let f = result.occupancy().fractions();
        println!(
            "{:<24} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            kind.to_string(),
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            f[3] * 100.0
        );
    }
}
