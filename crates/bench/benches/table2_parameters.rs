//! Table 2: experimental parameters — derived from the physical rack
//! models rather than assumed.

use sprint_game::GameConfig;
use sprint_power::rack::RackConfig;

fn main() {
    sprint_bench::header(
        "Table 2",
        "Experimental parameters",
        "N_min = 250, N_max = 750, p_c = 0.50, p_r = 0.88, δ = 0.99",
    );
    let table2 = GameConfig::paper_defaults();
    let derived = RackConfig::paper_rack(1000).derive_game_parameters();

    println!("{:<28} {:>10} {:>12}", "Parameter", "Table 2", "Derived");
    let rows: [(&str, f64, f64); 4] = [
        (
            "Min # sprinters  N_min",
            table2.n_min(),
            f64::from(derived.n_min),
        ),
        (
            "Max # sprinters  N_max",
            table2.n_max(),
            f64::from(derived.n_max),
        ),
        (
            "P(stay cooling)  p_c",
            table2.p_cooling(),
            derived.p_cooling,
        ),
        (
            "P(stay recovery) p_r",
            table2.p_recovery(),
            derived.p_recovery,
        ),
    ];
    for (name, paper, ours) in rows {
        println!("{name:<28} {paper:>10.3} {ours:>12.3}");
    }
    println!(
        "{:<28} {:>10.3} {:>12}",
        "Discount factor  δ",
        table2.discount(),
        "(chosen)"
    );
    println!();
    println!(
        "derived epoch = {:.1} s (paper ≈ 150 s), cooling = {:.1} s (paper ≈ 300 s)",
        derived.epoch_seconds, derived.cooling_seconds
    );
}
