//! Engine hot-path smoke check (not a criterion bench).
//!
//! Measures the struct-of-arrays agent kernel end to end and enforces the
//! hot-path contracts:
//!
//! - agent-epochs/sec at N ∈ {10k, 100k, 1M}, serial and at 4 jobs on the
//!   persistent worker pool, against a faithful reimplementation of the
//!   pre-SoA epoch loop (per-epoch `Vec` allocation, sequential `StdRng`,
//!   per-agent dyn policy dispatch); legs run interleaved round-robin
//!   across repetitions so frequency drift cannot bias one side;
//! - the serial kernel beats the reference loop by ≥ `MIN_SERIAL_SPEEDUP`
//!   at the gate size (N=100k);
//! - 4 jobs beat serial by ≥ `MIN_PARALLEL_SPEEDUP` at the gate size,
//!   enforced only when the host actually has ≥ 4 cores;
//! - reports are byte-identical across `jobs ∈ {1, 4}` at every size,
//!   including the N=10⁶ demonstration run;
//! - a short chunk-size sweep at the gate size records how the
//!   `chunk_agents` tile interacts with L2 residency;
//! - the epoch loop allocates nothing, serial *and* with the pool live: a
//!   counting global allocator sees the same allocation count for a 2×
//!   longer horizon;
//! - warm-started Algorithm 1 (`EquilibriumCache::solve_warm`) cuts mean
//!   iterations per cell ≥ `MIN_WARM_RATIO`× across a parameter ladder;
//! - on a multi-core host, the parallel speedup must not regress below
//!   90% of the value recorded by the previous multi-core run of this
//!   bench (read from the existing `BENCH_engine.json` before it is
//!   overwritten).
//!
//! Results land in `BENCH_engine.json` at the workspace root so CI can
//! archive the trend. Run with `--quick` for a reduced-scale smoke pass.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::Rng;
use sprint_game::trip::TripCurve;
use sprint_game::{AgentState, EquilibriumCache, GameConfig, MeanFieldSolver, ThresholdStrategy};
use sprint_sim::engine::{run_jobs, SimConfig, DEFAULT_CHUNK};
use sprint_sim::policies::ThresholdPolicy;
use sprint_sim::policy::SprintPolicy;
use sprint_sim::telemetry::Telemetry;
use sprint_stats::rng::seeded_rng;
use sprint_workloads::generator::Population;
use sprint_workloads::phases::PhasedUtility;
use sprint_workloads::Benchmark;

/// Count allocations so the no-alloc contract is checkable from outside
/// the engine: a longer horizon must not allocate more.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Measured headroom on a quiet dev container: the SoA kernel runs N=100k
/// at ~30 ns/agent-epoch vs ~95-100 ns for the faithful reference loop —
/// a ~3.2x serial speedup. The remaining engine cost is dominated by the
/// phase-resample events themselves (two counter words, one alias sample,
/// one `ln` every `persistence` epochs per agent), which the reference
/// pays too, so the ratio is structural, not slack. The floor sits below
/// the measurement with margin for CI-runner noise (observed ±15%).
const MIN_SERIAL_SPEEDUP: f64 = 2.5;
/// With the persistent pool amortizing spawn/join, 4 workers on 4 real
/// cores keep ≥ 2× of the ideal 4× after the serial reduction and the
/// barrier wait are paid.
const MIN_PARALLEL_SPEEDUP: f64 = 2.0;
const MIN_WARM_RATIO: f64 = 2.0;
/// A multi-core run may not lose more than this fraction of the parallel
/// speedup the previous multi-core run recorded.
const REGRESSION_TOLERANCE: f64 = 0.9;
const PARALLEL_JOBS: usize = 4;
/// The size the speedup gates are evaluated at (the ISSUE's contract
/// point); the scaling table extends beyond it.
const GATE_AGENTS: usize = 100_000;
const SEED: u64 = 7;

fn game_for(n: usize) -> GameConfig {
    GameConfig::builder()
        .n_agents(n as u32)
        .n_min(n as f64 * 0.25)
        .n_max(n as f64 * 0.75)
        .build()
        .unwrap()
}

fn spawn(n: usize) -> Vec<PhasedUtility> {
    Population::homogeneous(Benchmark::DecisionTree, n)
        .unwrap()
        .spawn_streams(SEED)
        .unwrap()
}

fn policy_for(n: usize) -> ThresholdPolicy {
    ThresholdPolicy::uniform("E-T", ThresholdStrategy::new(5.0).unwrap(), n).unwrap()
}

/// The pre-SoA engine's epoch loop, reproduced pass-for-pass from the
/// shipped version (commit history: "Resilient coordinator control
/// plane"): a fresh `Vec<f64>` of stream utilities per epoch, then three
/// separate full-population passes — decide, throughput/occupancy, state
/// transitions — each re-checking the fault overlays, with sequential
/// `StdRng` draws for cooling exits and recovery wake-up stagger.
fn reference_run(game: &GameConfig, streams: &mut [PhasedUtility], epochs: usize) -> f64 {
    let n = streams.len();
    let curve = TripCurve::from_config(game);
    let p_cool_exit = 1.0 - game.p_cooling();
    let p_recover_exit = 1.0 - game.p_recovery();
    let mut policy: Box<dyn SprintPolicy> = Box::new(policy_for(n));
    let mut rng = seeded_rng(SEED ^ 0x51B_EAC0);
    let mut states = vec![AgentState::Active; n];
    let mut blocked = vec![0usize; n];
    let mut sprinted = vec![false; n];
    let mut crashed = vec![false; n];
    let mut stuck = vec![false; n];
    let mut recovering = false;
    let mut total_tasks = 0.0f64;
    let mut occ_sprinting = 0u64;
    let mut occ_cooling = 0u64;
    let mut occ_idle = 0u64;
    for epoch in 0..epochs {
        // Phases advance in wall-clock time regardless of power state.
        let utilities: Vec<f64> = streams
            .iter_mut()
            .map(PhasedUtility::next_utility)
            .collect();
        if recovering {
            if rng.gen::<f64>() < p_recover_exit {
                recovering = false;
                for (i, state) in states.iter_mut().enumerate() {
                    *state = AgentState::Active;
                    blocked[i] = epoch + 1 + rng.gen_range(0..2usize);
                }
            }
            continue;
        }
        // Pass 1: decisions.
        let mut n_sprinters = 0u32;
        let mut n_stuck = 0u32;
        for i in 0..n {
            sprinted[i] = false;
            if crashed[i] {
                continue;
            }
            match states[i] {
                AgentState::Active => {
                    if epoch >= blocked[i] && policy.wants_sprint(i, utilities[i]) {
                        sprinted[i] = true;
                        n_sprinters += 1;
                    }
                }
                AgentState::Cooling => {
                    if stuck[i] {
                        n_stuck += 1;
                    }
                }
                AgentState::Recovery => {
                    states[i] = AgentState::Active;
                }
            }
        }
        let p_trip = curve.p_trip(f64::from(n_sprinters + n_stuck));
        let tripped = p_trip > 0.0 && rng.gen::<f64>() < p_trip;
        // Pass 2: throughput and occupancy.
        for i in 0..n {
            if crashed[i] {
                continue;
            }
            if sprinted[i] {
                total_tasks += utilities[i];
                occ_sprinting += 1;
            } else {
                total_tasks += 1.0;
                match states[i] {
                    AgentState::Cooling => occ_cooling += 1,
                    _ => occ_idle += 1,
                }
            }
        }
        // Pass 3: state transitions.
        if tripped {
            recovering = true;
            states.fill(AgentState::Recovery);
        } else {
            for i in 0..n {
                if crashed[i] {
                    continue;
                }
                states[i] = match states[i] {
                    AgentState::Active if sprinted[i] => AgentState::Cooling,
                    AgentState::Cooling => {
                        if stuck[i] {
                            AgentState::Cooling
                        } else if rng.gen::<f64>() < p_cool_exit {
                            AgentState::Active
                        } else {
                            AgentState::Cooling
                        }
                    }
                    s => s,
                };
            }
        }
        policy.epoch_end(tripped);
    }
    std::hint::black_box((
        occ_sprinting,
        occ_cooling,
        occ_idle,
        &mut crashed,
        &mut stuck,
    ));
    total_tasks
}

/// Everything a report serializes from, bit-exact: if two runs agree on
/// this, their JSON reports are byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    total_tasks: u64,
    trips: u32,
    mean_sprinters: u64,
    occupancy: [u64; 4],
}

fn engine_rate(n: usize, epochs: usize, jobs: usize, chunk: usize) -> (f64, Fingerprint) {
    let game = game_for(n);
    let cfg = SimConfig::new(game, epochs, SEED)
        .unwrap()
        .with_chunk_agents(chunk);
    let mut streams = spawn(n);
    let mut policy = policy_for(n);
    let started = Instant::now();
    let result = run_jobs(
        &cfg,
        &mut streams,
        &mut policy,
        jobs,
        &mut Telemetry::noop(),
    )
    .unwrap();
    let secs = started.elapsed().as_secs_f64();
    assert!(result.total_tasks() > 0.0);
    let occ = result.occupancy().fractions();
    let fingerprint = Fingerprint {
        total_tasks: result.total_tasks().to_bits(),
        trips: result.trips(),
        mean_sprinters: result.mean_sprinters().to_bits(),
        occupancy: [
            occ[0].to_bits(),
            occ[1].to_bits(),
            occ[2].to_bits(),
            occ[3].to_bits(),
        ],
    };
    ((n * epochs) as f64 / secs, fingerprint)
}

fn reference_rate(n: usize, epochs: usize) -> f64 {
    let game = game_for(n);
    let mut streams = spawn(n);
    let started = Instant::now();
    let tasks = reference_run(&game, &mut streams, epochs);
    let secs = started.elapsed().as_secs_f64();
    assert!(tasks > 0.0);
    (n * epochs) as f64 / secs
}

/// Allocation count of one engine run (setup included) at a job count.
/// With `jobs > 1` the persistent pool is live: its spawn cost is per-run
/// setup, so short and long horizons must still count the same.
fn allocs_for(n: usize, epochs: usize, jobs: usize) -> u64 {
    let game = game_for(n);
    let cfg = SimConfig::new(game, epochs, SEED).unwrap();
    let mut streams = spawn(n);
    let mut policy = policy_for(n);
    let before = ALLOCS.load(Ordering::Relaxed);
    run_jobs(
        &cfg,
        &mut streams,
        &mut policy,
        jobs,
        &mut Telemetry::noop(),
    )
    .unwrap();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Mean Algorithm-1 iterations per cell over a breaker-band ladder,
/// solved cold and warm-started through the equilibrium cache.
fn warm_start_ratio(cells: usize) -> (f64, f64) {
    let density = Benchmark::DecisionTree.utility_density(512).unwrap();
    let games: Vec<GameConfig> = (0..cells)
        .map(|i| {
            GameConfig::builder()
                .n_agents(1000)
                .n_min(250.0)
                .n_max(600.0 + 15.0 * i as f64)
                .build()
                .unwrap()
        })
        .collect();
    let cold: usize = games
        .iter()
        .map(|g| {
            MeanFieldSolver::new(*g)
                .run(&density, &mut Telemetry::noop())
                .unwrap()
                .iterations()
        })
        .sum();
    let cache = EquilibriumCache::default();
    let warm: usize = games
        .iter()
        .map(|g| {
            cache
                .solve_warm(&MeanFieldSolver::new(*g), &density)
                .unwrap()
                .iterations()
        })
        .sum();
    (cold as f64 / cells as f64, warm as f64 / cells as f64)
}

/// The previous snapshot's multi-core parallel baseline, if it has one:
/// `(cores, parallel_speedup)` read from the file this run overwrites.
fn prior_baseline(path: &std::path::Path) -> Option<(u64, f64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let value = serde_json::from_str_value(&text).ok()?;
    let obj = value.as_object()?;
    let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let cores = field("cores")?.as_f64()? as u64;
    let speedup = field("parallel_speedup")
        .or_else(|| field("parallel_speedup_at_max_n"))?
        .as_f64()?;
    Some((cores, speedup))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The gate size stays in every mode: both speedup gates are evaluated
    // at N=100k, where the SoA advantage is structural (the reference
    // loop's stream array no longer fits in cache). Full mode extends the
    // scaling table to the N=10⁶ demonstration run.
    let sizes: &[usize] = if quick {
        &[10_000, GATE_AGENTS]
    } else {
        &[10_000, GATE_AGENTS, 1_000_000]
    };
    // Constant total agent-epochs per size so every row does comparable
    // work and the timings stay comparable.
    let work = if quick { 2_000_000 } else { 20_000_000 };
    let reps = if quick { 2 } else { 3 };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let enforce_parallel = cores >= PARALLEL_JOBS;
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_engine.json");
    let baseline = prior_baseline(&out);

    println!("engine hot-path smoke ({cores} cores, {reps} interleaved reps)");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>14} {:>8} {:>8}",
        "agents", "epochs", "ref ae/s", "serial ae/s", "jobs4 ae/s", "vs ref", "vs ser"
    );
    let mut rows = String::new();
    let mut serial_speedup = 0.0;
    let mut parallel_speedup = 0.0;
    for &n in sizes {
        let epochs = (work / n).max(10);
        // Interleave the three legs round-robin across reps (the PR-8
        // de-flake pattern): frequency scaling and noisy neighbours hit
        // all legs alike, and each leg keeps its best rep.
        let mut reference = 0.0f64;
        let mut serial = 0.0f64;
        let mut parallel = 0.0f64;
        let mut serial_print = None;
        let mut parallel_print = None;
        for _ in 0..reps {
            reference = reference.max(reference_rate(n, epochs));
            let (rate, print) = engine_rate(n, epochs, 1, DEFAULT_CHUNK);
            serial = serial.max(rate);
            assert!(
                serial_print.get_or_insert(print) == &print,
                "serial reps must be deterministic at N={n}"
            );
            let (rate, print) = engine_rate(n, epochs, PARALLEL_JOBS, DEFAULT_CHUNK);
            parallel = parallel.max(rate);
            assert!(
                parallel_print.get_or_insert(print) == &print,
                "parallel reps must be deterministic at N={n}"
            );
        }
        // The acceptance contract: reports are a function of the spec
        // alone, at N=10⁶ like everywhere else.
        assert_eq!(
            serial_print, parallel_print,
            "jobs=1 and jobs={PARALLEL_JOBS} must be byte-identical at N={n}"
        );
        let vs_ref = serial / reference;
        let vs_serial = parallel / serial;
        if n == GATE_AGENTS {
            serial_speedup = vs_ref;
            parallel_speedup = vs_serial;
        }
        println!(
            "{n:>8} {epochs:>8} {reference:>14.0} {serial:>14.0} {parallel:>14.0} \
             {vs_ref:>7.2}x {vs_serial:>7.2}x"
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"agents\": {n}, \"epochs\": {epochs}, \
             \"reference_agent_epochs_per_sec\": {reference:.0}, \
             \"serial_agent_epochs_per_sec\": {serial:.0}, \
             \"parallel_agent_epochs_per_sec\": {parallel:.0}, \
             \"serial_vs_reference\": {vs_ref:.4}, \
             \"parallel_vs_serial\": {vs_serial:.4}}}"
        ));
    }

    // Chunk-size sweep at the gate size: how the `chunk_agents` tile
    // interacts with L2 residency, serial so the tiling effect is not
    // confounded with barrier costs. Recorded, not gated — the default
    // chunk is part of the report spec, so it cannot chase the fastest
    // tile without breaking byte-compatibility.
    let sweep_epochs = ((work / 10) / GATE_AGENTS).max(10);
    let mut chunk_rows = String::new();
    print!("  chunks   ");
    for &chunk in &[512usize, 1024, 2048, 4096] {
        let (rate, _) = engine_rate(GATE_AGENTS, sweep_epochs, 1, chunk);
        print!(" {chunk}:{:.1}M", rate / 1e6);
        if !chunk_rows.is_empty() {
            chunk_rows.push_str(",\n");
        }
        chunk_rows.push_str(&format!(
            "    {{\"chunk_agents\": {chunk}, \"agent_epochs_per_sec\": {rate:.0}}}"
        ));
    }
    println!(" (ae/s at N={GATE_AGENTS}, serial)");

    // No-alloc contract: doubling the horizon must not add a single
    // allocation — everything the epoch loop needs exists before it runs.
    // Checked serial and with the pool live: worker spawn is per-run
    // setup, the barrier steady state allocates nothing.
    let (alloc_n, alloc_epochs) = if quick { (5_000, 200) } else { (20_000, 400) };
    let short = allocs_for(alloc_n, alloc_epochs, 1);
    let long = allocs_for(alloc_n, alloc_epochs * 2, 1);
    let pool_short = allocs_for(alloc_n, alloc_epochs, PARALLEL_JOBS);
    let pool_long = allocs_for(alloc_n, alloc_epochs * 2, PARALLEL_JOBS);
    println!(
        "  allocs    serial {short}/{long}, pool {pool_short}/{pool_long} \
         at {alloc_epochs}/{} epochs",
        alloc_epochs * 2
    );

    let warm_cells = if quick { 6 } else { 12 };
    let (cold_iters, warm_iters) = warm_start_ratio(warm_cells);
    let warm_ratio = cold_iters / warm_iters.max(1e-9);
    println!(
        "  warm      {cold_iters:.1} cold vs {warm_iters:.1} warm iterations/cell \
         ({warm_ratio:.2}x over {warm_cells} cells)"
    );

    let baseline_json = match baseline {
        Some((prior_cores, prior_speedup)) => {
            format!("{{\"cores\": {prior_cores}, \"parallel_speedup\": {prior_speedup:.4}}}")
        }
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"cores\": {cores},\n  \"jobs\": {PARALLEL_JOBS},\n  \
         \"chunk_agents\": {DEFAULT_CHUNK},\n  \"reps\": {reps},\n  \
         \"gate_agents\": {GATE_AGENTS},\n  \
         \"rows\": [\n{rows}\n  ],\n  \
         \"chunk_sweep\": [\n{chunk_rows}\n  ],\n  \
         \"byte_identical_across_jobs\": true,\n  \
         \"serial_speedup\": {serial_speedup:.4},\n  \
         \"min_serial_speedup\": {MIN_SERIAL_SPEEDUP},\n  \
         \"parallel_speedup\": {parallel_speedup:.4},\n  \
         \"min_parallel_speedup\": {MIN_PARALLEL_SPEEDUP},\n  \
         \"parallel_enforced\": {enforce_parallel},\n  \
         \"speedup_enforced\": {enforce_parallel},\n  \
         \"prior_baseline\": {baseline_json},\n  \
         \"allocs_short_run\": {short},\n  \"allocs_long_run\": {long},\n  \
         \"allocs_pool_short_run\": {pool_short},\n  \
         \"allocs_pool_long_run\": {pool_long},\n  \
         \"warm_cells\": {warm_cells},\n  \
         \"cold_iterations_per_cell\": {cold_iters:.4},\n  \
         \"warm_iterations_per_cell\": {warm_iters:.4},\n  \
         \"warm_start_ratio\": {warm_ratio:.4},\n  \"min_warm_ratio\": {MIN_WARM_RATIO}\n}}\n"
    );
    std::fs::write(&out, json).expect("write BENCH_engine.json");
    println!("  snapshot {}", out.display());

    let mut failed = false;
    if long != short {
        eprintln!(
            "FAIL: serial epoch loop allocated ({short} allocs at {alloc_epochs} epochs, \
             {long} at {} epochs)",
            alloc_epochs * 2
        );
        failed = true;
    }
    if pool_long != pool_short {
        eprintln!(
            "FAIL: pooled epoch loop allocated ({pool_short} allocs at {alloc_epochs} \
             epochs, {pool_long} at {} epochs)",
            alloc_epochs * 2
        );
        failed = true;
    }
    if serial_speedup < MIN_SERIAL_SPEEDUP {
        eprintln!(
            "FAIL: serial kernel {serial_speedup:.2}x over the reference loop, \
             below the {MIN_SERIAL_SPEEDUP:.1}x floor"
        );
        failed = true;
    }
    if enforce_parallel && parallel_speedup < MIN_PARALLEL_SPEEDUP {
        eprintln!(
            "FAIL: {PARALLEL_JOBS} jobs {parallel_speedup:.2}x over serial, \
             below the {MIN_PARALLEL_SPEEDUP:.1}x floor"
        );
        failed = true;
    }
    if let Some((prior_cores, prior_speedup)) = baseline {
        // The PR-over-PR trend gate: both snapshots must come from
        // multi-core hosts for the comparison to mean anything.
        if enforce_parallel
            && prior_cores >= PARALLEL_JOBS as u64
            && parallel_speedup < prior_speedup * REGRESSION_TOLERANCE
        {
            eprintln!(
                "FAIL: parallel speedup {parallel_speedup:.2}x regressed below \
                 {REGRESSION_TOLERANCE}x the recorded baseline {prior_speedup:.2}x"
            );
            failed = true;
        }
    }
    if warm_ratio < MIN_WARM_RATIO {
        eprintln!(
            "FAIL: warm starts cut iterations {warm_ratio:.2}x, \
             below the {MIN_WARM_RATIO:.1}x floor"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if enforce_parallel {
        println!("PASS: no-alloc, serial, parallel, and warm-start budgets all met");
    } else {
        println!(
            "PASS: no-alloc, serial, and warm-start budgets met \
             (parallel not enforced on {cores} core(s))"
        );
    }
}
