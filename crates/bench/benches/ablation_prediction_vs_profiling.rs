//! Ablation: profiled estimates vs history-only prediction.
//!
//! The paper's agents profile each epoch's first seconds to estimate its
//! sprint utility (§4.4). Prediction from history alone avoids that cost
//! but misses one epoch at every phase boundary. This ablation bounds
//! what the profiling step is worth under realistic phase persistence.

use sprint_bench::paper_scenario;
use sprint_game::{GameConfig, MeanFieldSolver};
use sprint_sim::engine::{run, SimConfig};
use sprint_sim::policies::PredictiveThreshold;
use sprint_sim::policy::PolicyKind;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

const EPOCHS: usize = 800;

fn main() {
    sprint_bench::header(
        "Ablation: prediction vs profiling",
        "E-T decisions on profiled measurements vs history-only predictions",
        "extension — phase persistence makes prediction nearly as good as profiling",
    );
    let config = GameConfig::paper_defaults();
    println!(
        "{:<14} {:>14} {:>14} {:>10}",
        "benchmark", "profiled E-T", "predictive E-T", "pred/prof"
    );
    for b in [
        Benchmark::DecisionTree,
        Benchmark::PageRank,
        Benchmark::Kmeans,
        Benchmark::LinearRegression,
    ] {
        let density = b.utility_density(512).expect("valid bins");
        let eq = MeanFieldSolver::new(config)
            .run(&density, &mut Telemetry::noop())
            .expect("equilibrium exists");
        let scenario = paper_scenario(b, EPOCHS);
        let profiled = scenario
            .execute(PolicyKind::EquilibriumThreshold, 9, &mut Telemetry::noop())
            .expect("simulation succeeds");

        let mut streams = scenario
            .population()
            .spawn_streams(9)
            .expect("streams spawn");
        let mut policy = PredictiveThreshold::uniform(eq.threshold(), 1000).expect("valid policy");
        let predictive = run(
            &SimConfig::new(config, EPOCHS, 9).expect("valid epochs"),
            &mut streams,
            &mut policy,
            &mut Telemetry::noop(),
        )
        .expect("simulation succeeds");

        let prof = profiled.tasks_per_agent_epoch();
        let pred = predictive.tasks_per_agent_epoch();
        println!(
            "{:<14} {:>14.3} {:>14.3} {:>10.3}",
            b.name(),
            prof,
            pred,
            pred / prof
        );
    }
    println!();
    println!(
        "prediction forfeits one epoch per phase boundary (persistence ≈ 3 epochs),\n\
         retaining ~90% of profiled throughput when the threshold sits in a density\n\
         valley (decision, pagerank) and everything for always-sprint profiles\n\
         (linear). It collapses when the threshold cuts *inside* a mode (kmeans):\n\
         the EWMA whipsaws around the cut — there, the paper's profiling step\n\
         pays for itself."
    );
}
