//! Figure 2: typical trip curve of a circuit breaker — trip time versus
//! current (normalized to rated), with the tolerance band and the
//! short-circuit region.

use sprint_power::breaker::TripCurve;

fn main() {
    sprint_bench::header(
        "Figure 2",
        "Circuit breaker trip curve",
        "long-delay I²t band; 125–175% overload tolerated for 150 s sprints",
    );
    let curve = TripCurve::ul489(100.0).expect("valid rated current");
    println!(
        "{:>8} {:>14} {:>14}  region at t = 150 s",
        "I/Irated", "t_trip min (s)", "t_trip max (s)"
    );
    for multiple in [
        1.0, 1.1, 1.25, 1.4, 1.5, 1.6, 1.75, 2.0, 2.5, 3.0, 5.0, 8.0, 10.0, 20.0,
    ] {
        let fmt = |t: Option<f64>| match t {
            Some(t) => format!("{t:>14.2}"),
            None => format!("{:>14}", "never"),
        };
        println!(
            "{:>8.2} {} {}  {}",
            multiple,
            fmt(curve.min_trip_time_s(multiple)),
            fmt(curve.max_trip_time_s(multiple)),
            curve.region(multiple, 150.0)
        );
    }
    println!();
    println!(
        "band at 150 s: never-trip below {:.3}x, always-trip above {:.3}x (paper: 1.25x / 1.75x)",
        curve.never_trip_multiple(150.0),
        curve.always_trip_multiple(150.0)
    );
}
