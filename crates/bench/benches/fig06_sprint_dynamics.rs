//! Figure 6: sprinting behavior for the representative application
//! (Decision Tree) — the number of sprinters per epoch under the four
//! policies, with N_min = 250 marking the edge of the tolerance band.

use sprint_bench::{downsample, paper_scenario, sparkline, PAPER_EPOCHS};
use sprint_sim::policy::PolicyKind;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

fn main() {
    sprint_bench::header(
        "Figure 6",
        "Sprinting behavior, 1000 x DecisionTree over 1000 epochs",
        "G oscillates; E-B stays under N_min; E-T/C-T sit near N_min = 250",
    );
    let scenario = paper_scenario(Benchmark::DecisionTree, PAPER_EPOCHS);
    for kind in PolicyKind::ALL {
        let result = scenario
            .execute(kind, 11, &mut Telemetry::noop())
            .expect("simulation succeeds");
        let series: Vec<f64> = result
            .sprinters_per_epoch()
            .iter()
            .map(|&s| f64::from(s))
            .collect();
        let compact = downsample(&series, 72);
        println!();
        println!(
            "{kind} — mean sprinters {:.0}, trips {}, tasks/agent-epoch {:.3}",
            result.mean_sprinters(),
            result.trips(),
            result.tasks_per_agent_epoch()
        );
        println!("  {}", sparkline(&compact, 1000.0));
        // Numeric series every 50 epochs for EXPERIMENTS.md.
        let coarse = downsample(&series, 20);
        let cells: Vec<String> = coarse.iter().map(|v| format!("{v:>4.0}")).collect();
        println!("  every 50 epochs: {}", cells.join(" "));
    }
    println!();
    println!("grey line reference: N_min = 250 sprinters");
}
