//! Figure 11: equilibrium probability of sprinting per benchmark.
//!
//! Linear Regression and Correlation sprint at every opportunity (their
//! narrow profiles make epochs indistinguishable); the rest sprint
//! judiciously with higher thresholds.

use sprint_game::{GameConfig, MeanFieldSolver};
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

fn main() {
    sprint_bench::header(
        "Figure 11",
        "Equilibrium probability of sprinting",
        "linear/correlation ≈ 1.0; majority sprint judiciously",
    );
    let solver = MeanFieldSolver::new(GameConfig::paper_defaults());
    println!(
        "{:<14} {:>10} {:>11} {:>9} {:>10}",
        "benchmark", "P(sprint)", "threshold", "P(trip)", "sprinters"
    );
    for b in Benchmark::ALL {
        let density = b.utility_density(512).expect("valid bins");
        let eq = solver
            .run(&density, &mut Telemetry::noop())
            .expect("equilibrium exists");
        println!(
            "{:<14} {:>10.3} {:>11.3} {:>9.3} {:>10.1}",
            b.name(),
            eq.sprint_probability(),
            eq.threshold(),
            eq.trip_probability(),
            eq.expected_sprinters()
        );
    }
}
