//! Table 1: Spark workloads — benchmark, category, dataset, data size.

use sprint_workloads::Benchmark;

fn main() {
    sprint_bench::header(
        "Table 1",
        "Spark workloads",
        "11 benchmarks over kdda/kddb/uscensus/movielens/wdc datasets",
    );
    println!(
        "{:<22} {:<24} {:<14} {:>9}",
        "Benchmark", "Category", "Dataset", "Size (GB)"
    );
    for b in Benchmark::ALL {
        println!(
            "{:<22} {:<24} {:<14} {:>9.3}",
            b.full_name(),
            b.category().to_string(),
            b.dataset(),
            b.data_size_gb()
        );
    }
}
