//! Observability pipeline smoke check (not a criterion bench).
//!
//! Three gates over the live-monitoring path, all hard failures:
//!
//! 1. **Ring overhead** — the engine at 100k agents with a lock-free
//!    ring recorder (severity-gated at `Info`, the `sprint monitor`
//!    operating point) must stay within 5 % of the disabled-telemetry
//!    baseline. Interleaved reps, median estimator, as in
//!    `telemetry_smoke`.
//! 2. **Zero drops** — that run must publish every event it offers at
//!    the default ring capacity; drops are counted, and any nonzero
//!    count fails the gate.
//! 3. **Jobs-invariant snapshots** — the health snapshot folded from a
//!    drained ring stream, rendered at a pinned elapsed time, must
//!    serialize to byte-identical JSON at `jobs = 1` and `jobs = 4`
//!    (engine events are published from the coordinating thread only).
//!
//! Results land in `BENCH_obs.json` at the workspace root. Run with
//! `--quick` for a reduced-scale CI smoke pass.

use std::hint::black_box;
use std::time::Instant;

use sprint_sim::engine::{run, run_jobs, SimConfig};
use sprint_sim::policies::Greedy;
use sprint_sim::telemetry::{
    EventRing, HealthAggregator, RingConfig, Severity, SpanProfile, Telemetry,
};
use sprint_workloads::generator::Population;
use sprint_workloads::Benchmark;

/// Maximum tolerated slowdown of the ring-recorder path vs noop.
const MAX_RING_OVERHEAD: f64 = 0.05;
/// Pinned elapsed time for snapshot rendering: wall time must never
/// reach the invariance comparison.
const PINNED_ELAPSED_NANOS: u64 = 1_000_000_000;

struct Scale {
    agents: usize,
    epochs: usize,
    reps: usize,
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn monitor_ring() -> (sprint_sim::telemetry::EventRing, Telemetry) {
    let config = RingConfig::default().with_min_severity(Severity::Info);
    let (ring, mut producers) = EventRing::with_config(1, &config);
    let producer = producers.pop().expect("one producer");
    let kit = Telemetry::new(Box::new(producer), SpanProfile::deterministic());
    (ring, kit)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        Scale {
            agents: 100_000,
            epochs: 30,
            reps: 9,
        }
    } else {
        Scale {
            agents: 100_000,
            epochs: 100,
            reps: 9,
        }
    };

    let population = Population::homogeneous(Benchmark::DecisionTree, scale.agents).unwrap();
    let game = sprint_game::GameConfig::builder()
        .n_agents(scale.agents as u32)
        .n_min(scale.agents as f64 * 0.25)
        .n_max(scale.agents as f64 * 0.75)
        .build()
        .unwrap();
    let config = SimConfig::new(game, scale.epochs, 7).unwrap();

    let run_once = |telemetry: &mut Telemetry| -> f64 {
        let mut streams = population.spawn_streams(7).unwrap();
        let r = run(
            black_box(&config),
            &mut streams,
            &mut Greedy::new(),
            telemetry,
        )
        .unwrap();
        r.total_tasks()
    };

    // Gate 1 + 2: interleaved noop/ring reps, medians, drop accounting.
    let mut noop_tasks = run_once(&mut Telemetry::noop());
    let mut ring_tasks = noop_tasks;
    let mut noop_samples = Vec::with_capacity(scale.reps);
    let mut ring_samples = Vec::with_capacity(scale.reps);
    let mut published = 0u64;
    let mut dropped = 0u64;
    for _ in 0..scale.reps {
        let started = Instant::now();
        noop_tasks = run_once(&mut Telemetry::noop());
        noop_samples.push(started.elapsed().as_nanos() as u64);

        let (mut ring, mut kit) = monitor_ring();
        let started = Instant::now();
        ring_tasks = run_once(&mut kit);
        ring_samples.push(started.elapsed().as_nanos() as u64);
        drop(kit);
        let _ = ring.drain();
        published = ring.published();
        dropped = ring.dropped();
    }
    let noop_nanos = median(&mut noop_samples);
    let ring_nanos = median(&mut ring_samples);
    let ring_overhead = ring_nanos as f64 / noop_nanos as f64 - 1.0;

    assert_eq!(
        noop_tasks.to_bits(),
        ring_tasks.to_bits(),
        "ring recorder must not perturb throughput"
    );

    // Gate 3: byte-identical snapshots across job counts at pinned
    // elapsed time.
    let snapshot_at = |jobs: usize| -> String {
        let (mut ring, mut kit) = monitor_ring();
        let mut streams = population.spawn_streams(11).unwrap();
        run_jobs(&config, &mut streams, &mut Greedy::new(), jobs, &mut kit).unwrap();
        let mut agg = HealthAggregator::default();
        agg.fold_all(&ring.drain());
        let snap = agg.snapshot(PINNED_ELAPSED_NANOS, ring.dropped());
        serde_json::to_string(&snap).expect("snapshot serializes")
    };
    let serial_snapshot = snapshot_at(1);
    let parallel_snapshot = snapshot_at(4);
    let snapshot_jobs_invariant = serial_snapshot == parallel_snapshot;

    println!(
        "observability smoke ({} agents x {} epochs, median of {} interleaved reps)",
        scale.agents, scale.epochs, scale.reps
    );
    println!("  noop     {noop_nanos:>12} ns");
    println!(
        "  ring     {:>12} ns  ({:+.2}%)",
        ring_nanos,
        ring_overhead * 100.0
    );
    println!("  published {published}, dropped {dropped}");
    println!("  snapshot jobs-invariant: {snapshot_jobs_invariant}");

    let json = format!(
        "{{\n  \"agents\": {},\n  \"epochs\": {},\n  \"reps\": {},\n  \
         \"estimator\": \"median-interleaved\",\n  \
         \"noop_nanos\": {},\n  \"ring_nanos\": {},\n  \
         \"ring_overhead\": {:.6},\n  \"max_ring_overhead\": {MAX_RING_OVERHEAD},\n  \
         \"ring_published\": {},\n  \"ring_dropped\": {},\n  \
         \"snapshot_jobs_invariant\": {}\n}}\n",
        scale.agents,
        scale.epochs,
        scale.reps,
        noop_nanos,
        ring_nanos,
        ring_overhead,
        published,
        dropped,
        snapshot_jobs_invariant
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_obs.json");
    std::fs::write(&out, json).expect("write BENCH_obs.json");
    println!("  snapshot {}", out.display());

    let mut failed = false;
    if ring_overhead > MAX_RING_OVERHEAD {
        eprintln!(
            "FAIL: ring-recorder overhead {:.2}% exceeds the {:.0}% budget",
            ring_overhead * 100.0,
            MAX_RING_OVERHEAD * 100.0
        );
        failed = true;
    }
    if published == 0 {
        eprintln!("FAIL: ring published no events");
        failed = true;
    }
    if dropped != 0 {
        eprintln!("FAIL: ring dropped {dropped} events at default capacity");
        failed = true;
    }
    if !snapshot_jobs_invariant {
        eprintln!("FAIL: health snapshot bytes differ across job counts");
        eprintln!("  jobs=1: {serial_snapshot}");
        eprintln!("  jobs=4: {parallel_snapshot}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: ring overhead, drop accounting, and snapshot invariance within budget");
}
