//! Ablation/extension: folk-theorem enforcement in the simulator (§6.4).
//!
//! A share of agents defect from the cooperative threshold and sprint
//! greedily; the coordinator optionally punishes detected deviations with
//! a permanent sprinting ban (grim trigger).
//!
//! Two regimes:
//! - **Paper defaults** (cheap recovery): chip cooling self-limits the
//!   defectors, so deviation barely harms the rack — and banning large
//!   shares of the population costs more than the crime. The threat alone
//!   suffices; executing it is wasteful.
//! - **Expensive recovery** (`p_r = 0.999`, near the §6.4 prisoner's
//!   dilemma): enough defectors eventually trip the breaker and idle the
//!   rack for ~1000 epochs. Enforcement bans them before the emergency
//!   and preserves throughput — the folk theorem earning its keep.

use sprint_bench::paper_scenario;
use sprint_game::cooperative::CooperativeSearch;
use sprint_game::GameConfig;
use sprint_sim::engine::{self, SimConfig};
use sprint_sim::policies::GrimTrigger;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

const EPOCHS: usize = 800;
const AGENTS: usize = 1000;

fn run(config: GameConfig, n_deviants: usize, enforcement: bool) -> (f64, u32, usize) {
    let density = Benchmark::DecisionTree
        .utility_density(512)
        .expect("valid bins");
    let ct = CooperativeSearch::default_resolution()
        .solve(&config, &density)
        .expect("search succeeds");
    let scenario = paper_scenario(Benchmark::DecisionTree, EPOCHS);
    let mut streams = scenario
        .population()
        .spawn_streams(17)
        .expect("streams spawn");
    let deviants: Vec<usize> = (0..n_deviants).collect();
    let mut policy =
        GrimTrigger::new(vec![ct.threshold; AGENTS], &deviants, enforcement).expect("valid policy");
    let result = engine::run(
        &SimConfig::new(config, EPOCHS, 17).expect("valid epochs"),
        &mut streams,
        &mut policy,
        &mut Telemetry::noop(),
    )
    .expect("simulation succeeds");
    (
        result.tasks_per_agent_epoch(),
        result.trips(),
        policy.banned_count(),
    )
}

fn report(title: &str, config: GameConfig) {
    println!();
    println!("{title}");
    println!(
        "{:>10} {:<14} {:>11} {:>7} {:>8}",
        "defectors", "enforcement", "tasks/epoch", "trips", "banned"
    );
    for share in [0usize, 300, 600, 900] {
        for enforcement in [false, true] {
            let (tasks, trips, banned) = run(config, share, enforcement);
            println!(
                "{share:>10} {:<14} {tasks:>11.3} {trips:>7} {banned:>8}",
                if enforcement { "grim trigger" } else { "none" }
            );
        }
    }
}

fn main() {
    sprint_bench::header(
        "Ablation: grim-trigger enforcement",
        "Cooperative thresholds with defectors, with and without punishment",
        "§6.4 — the threat of being forbidden from sprinting deters deviation",
    );
    report(
        "paper defaults (p_r = 0.88 — cheap recovery):",
        GameConfig::paper_defaults(),
    );
    report(
        "expensive recovery (p_r = 0.999 — near the prisoner's dilemma):",
        GameConfig::builder()
            .p_recovery(0.999)
            .build()
            .expect("valid config"),
    );
    println!();
    println!(
        "cheap recovery: cooling self-limits defectors; punishment costs more than \
         the crime.\nexpensive recovery: unchecked defectors trigger an emergency \
         that idles the rack\nfor ~1000 epochs, while enforcement bans them first \
         and preserves throughput."
    );
}
