//! Figure 13: sensitivity of the equilibrium sprinting threshold to the
//! architectural parameters p_c, p_r, N_min, and N_max.

use sprint_game::{GameConfig, MeanFieldSolver};
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::Benchmark;

fn threshold_for(config: GameConfig) -> f64 {
    let density = Benchmark::DecisionTree
        .utility_density(512)
        .expect("valid bins");
    MeanFieldSolver::new(config)
        .run(&density, &mut Telemetry::noop())
        .map(|eq| eq.threshold())
        .unwrap_or(f64::NAN)
}

fn main() {
    sprint_bench::header(
        "Figure 13",
        "Threshold sensitivity to p_c, p_r, N_min, N_max (DecisionTree)",
        "rises with p_c; flat in p_r; lower for small bands (aggressive), higher for big",
    );

    println!("panel 1: p_c sweep (p_r = 0.88, band 250/750)");
    println!("{:>8} {:>11}", "p_c", "threshold");
    for i in 0..=18 {
        let pc = i as f64 * 0.05;
        let cfg = GameConfig::builder().p_cooling(pc).build().expect("valid");
        println!("{pc:>8.2} {:>11.3}", threshold_for(cfg));
    }

    println!();
    println!("panel 2: p_r sweep (p_c = 0.50, band 250/750)");
    println!("{:>8} {:>11}", "p_r", "threshold");
    for i in 0..=19 {
        let pr = i as f64 * 0.05;
        let cfg = GameConfig::builder().p_recovery(pr).build().expect("valid");
        println!("{pr:>8.2} {:>11.3}", threshold_for(cfg));
    }

    println!();
    println!("panel 3: N_min sweep (N_max = 750)");
    println!("{:>8} {:>11}", "N_min", "threshold");
    for i in 0..=12 {
        let n_min = f64::from(i) * 50.0;
        let cfg = GameConfig::builder().n_min(n_min).build().expect("valid");
        println!("{n_min:>8.0} {:>11.3}", threshold_for(cfg));
    }

    println!();
    println!("panel 4: N_max sweep (N_min = 250)");
    println!("{:>8} {:>11}", "N_max", "threshold");
    for i in 0..=10 {
        let n_max = 400.0 + f64::from(i) * 50.0;
        let cfg = GameConfig::builder().n_max(n_max).build().expect("valid");
        println!("{n_max:>8.0} {:>11.3}", threshold_for(cfg));
    }
}
