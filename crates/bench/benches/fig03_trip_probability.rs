//! Figure 3: probability of tripping the rack's breaker versus the
//! number of sprinters (Equation 11).

use sprint_game::trip::TripCurve;
use sprint_game::GameConfig;

fn main() {
    sprint_bench::header(
        "Figure 3",
        "P(trip) vs number of sprinters",
        "zero below N_min = 250, one above N_max = 750, linear between",
    );
    let curve = TripCurve::from_config(&GameConfig::paper_defaults());
    println!("{:>10} {:>10}", "sprinters", "P(trip)");
    for n in (0..=1000).step_by(50) {
        println!("{n:>10} {:>10.3}", curve.p_trip(f64::from(n)));
    }
}
