//! Figure 1: normalized speedup, power, and temperature for the Spark
//! benchmarks when sprinting (12 cores @ 2.7 GHz) versus nominal
//! (3 cores @ 1.2 GHz).

use sprint_power::chip::{ExecutionMode, ServerModel};
use sprint_power::thermal::ThermalPackage;
use sprint_workloads::Benchmark;

fn main() {
    sprint_bench::header(
        "Figure 1",
        "Speedup, power, temperature per benchmark",
        "speedups 2–7x; power ≈ 1.8x; sprinting runs hotter",
    );
    let server = ServerModel::paper_server();
    let package = ThermalPackage::paper_package();

    println!(
        "{:<14} {:>9} {:>11} {:>12} {:>12}",
        "benchmark", "speedup", "power(norm)", "T_nom (°C)", "T_sprint(°C)"
    );
    for b in Benchmark::ALL {
        let activity = b.activity_factor();
        let p_nominal = server.power_w_with_activity(ExecutionMode::Nominal, activity);
        let p_sprint = server.power_w_with_activity(ExecutionMode::Sprint, activity);
        let chip_nominal = server
            .chip()
            .power_w_with_activity(ExecutionMode::Nominal, activity);
        let chip_sprint = server
            .chip()
            .power_w_with_activity(ExecutionMode::Sprint, activity);
        let t_nom = package
            .nominal_junction_c(chip_nominal)
            .expect("nominal power keeps PCM solid");
        let t_sprint = package
            .average_sprint_junction_c(chip_nominal, chip_sprint)
            .expect("sprint power melts the PCM");
        println!(
            "{:<14} {:>9.2} {:>11.2} {:>12.1} {:>12.1}",
            b.name(),
            b.mean_speedup(),
            p_sprint / p_nominal,
            t_nom,
            t_sprint
        );
    }
}
