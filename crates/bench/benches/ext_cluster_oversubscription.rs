//! Extension: cluster-level sprinting under a facility breaker.
//!
//! Four 250-agent racks share a facility supply. As the facility band
//! tightens (more oversubscription), rack-local equilibrium thresholds
//! overload the facility; coordinator-enforced cooperative thresholds on
//! the facility-aware band stay safe. This extends the paper toward its
//! cited future work (datacenter-level sprinting, hierarchical power
//! control).

use sprint_game::cooperative::CooperativeSearch;
use sprint_game::{GameConfig, MeanFieldSolver, ThresholdStrategy};
use sprint_sim::cluster::{simulate_cluster, ClusterConfig};
use sprint_sim::policies::ThresholdPolicy;
use sprint_sim::policy::SprintPolicy;
use sprint_sim::telemetry::Telemetry;
use sprint_workloads::generator::Population;
use sprint_workloads::Benchmark;

const RACKS: u32 = 4;
const PER_RACK: u32 = 250;
const EPOCHS: usize = 800;

fn rack_game() -> GameConfig {
    GameConfig::builder()
        .n_agents(PER_RACK)
        .n_min(f64::from(PER_RACK) * 0.25)
        .n_max(f64::from(PER_RACK) * 0.75)
        .build()
        .expect("valid rack game")
}

fn run(cfg: &ClusterConfig, threshold: f64, seed: u64) -> sprint_sim::cluster::ClusterResult {
    let mut streams = Population::homogeneous(Benchmark::DecisionTree, (RACKS * PER_RACK) as usize)
        .expect("valid population")
        .spawn_streams(seed)
        .expect("streams spawn");
    let mut policies: Vec<Box<dyn SprintPolicy>> = (0..RACKS)
        .map(|_| {
            Box::new(
                ThresholdPolicy::uniform(
                    "cluster",
                    ThresholdStrategy::new(threshold).expect("non-negative"),
                    PER_RACK as usize,
                )
                .expect("valid policy"),
            ) as Box<dyn SprintPolicy>
        })
        .collect();
    simulate_cluster(cfg, &mut streams, &mut policies).expect("simulation succeeds")
}

fn main() {
    sprint_bench::header(
        "Extension: facility oversubscription",
        "4 racks x 250 agents; facility band sweep",
        "rack-local equilibria overload a tight facility; facility-aware cooperative \
         thresholds stay safe",
    );
    let game = rack_game();
    let density = Benchmark::DecisionTree
        .utility_density(512)
        .expect("valid bins");
    let rack_eq = MeanFieldSolver::new(game)
        .run(&density, &mut Telemetry::noop())
        .expect("equilibrium exists");

    println!(
        "{:>14} {:>12} {:>10} {:>12} {:>10}",
        "facility band", "naive tasks", "fac trips", "aware tasks", "fac trips"
    );
    // Facility N_min as a fraction of the sum of rack N_min values (= 250).
    for frac in [2.0, 1.0, 0.6, 0.4, 0.2] {
        let fac_min = 250.0 * frac;
        let fac_max = fac_min * 3.0;
        let cfg = ClusterConfig::new(game, RACKS, fac_min, fac_max, 0.95, EPOCHS, 21)
            .expect("valid cluster");
        let naive = run(&cfg, rack_eq.threshold(), 21);
        let aware_game = cfg.facility_aware_band().expect("valid band");
        let aware_ct = CooperativeSearch::default_resolution()
            .solve(&aware_game, &density)
            .expect("search succeeds");
        let aware = run(&cfg, aware_ct.threshold, 21);
        println!(
            "{:>13.1}x {:>12.3} {:>10} {:>12.3} {:>10}",
            frac,
            naive.tasks_per_agent_epoch,
            naive.facility_trips,
            aware.tasks_per_agent_epoch,
            aware.facility_trips
        );
    }
    println!();
    println!(
        "band = facility N_min as a multiple of the racks' combined N_min; \
         3x width.\nnote: merely re-solving the rack equilibrium on the tight band \
         does not help —\nthresholds are insensitive to recovery cost (Figure 13) — \
         the facility must\nassign cooperative thresholds and enforce them (§6.4)."
    );
}
