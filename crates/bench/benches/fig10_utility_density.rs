//! Figure 10: kernel density of per-epoch sprinting speedups (normalized
//! TPS) for Linear Regression (narrow 3–5x band) and PageRank (bimodal,
//! often exceeding 10x).

use sprint_stats::kde::kernel_density;
use sprint_workloads::phases::PhasedUtility;
use sprint_workloads::Benchmark;

const PROFILE_EPOCHS: usize = 20_000;

fn print_density(b: Benchmark) {
    let mut stream = PhasedUtility::for_benchmark(b, 1234).expect("valid persistence");
    let samples: Vec<f64> = (0..PROFILE_EPOCHS).map(|_| stream.next_utility()).collect();
    let density = kernel_density(&samples, 256).expect("non-empty profile");

    println!();
    println!(
        "{} — KDE over {PROFILE_EPOCHS} profiled epochs",
        b.full_name()
    );
    println!("{:>10} {:>9}", "speedup", "density");
    let points = 26;
    for i in 0..=points {
        let x = density.lo() + (density.hi() - density.lo()) * i as f64 / points as f64;
        println!("{x:>10.2} {:>9.4}", density.pdf_at(x));
    }
    println!(
        "mean = {:.2}, sd = {:.2}, P(u > 10) = {:.3}",
        density.mean(),
        density.variance().sqrt(),
        density.tail_mass(10.0)
    );
}

fn main() {
    sprint_bench::header(
        "Figure 10",
        "Probability density of sprinting speedups",
        "LinearRegression: narrow band 3–5x; PageRank: bimodal, gains often exceed 10x",
    );
    print_density(Benchmark::LinearRegression);
    print_density(Benchmark::PageRank);
}
