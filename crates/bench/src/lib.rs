//! Shared plumbing for the reproduction harness.
//!
//! Every table and figure of the paper has a `harness = false` bench
//! target in `benches/` that regenerates its rows/series;
//! `cargo bench -p sprint-bench` reproduces the whole evaluation. This
//! library holds the pieces the targets share: the paper-scale scenario
//! builders, seed conventions, and plain-text table formatting.

use sprint_sim::scenario::Scenario;
use sprint_workloads::Benchmark;

/// Paper scale: 1000 users per rack (§5, "Simulation Methods").
pub const PAPER_AGENTS: u32 = 1000;

/// Epoch horizon used for the dynamics figures (Figure 6 plots 1000).
pub const PAPER_EPOCHS: usize = 1000;

/// Seeds for repeated trials. Deterministic so EXPERIMENTS.md is
/// reproducible.
pub const TRIAL_SEEDS: [u64; 3] = [11, 23, 47];

/// Build the paper-scale homogeneous scenario for one benchmark.
///
/// # Panics
///
/// Panics on invalid configuration — impossible for the built-in
/// constants.
#[must_use]
pub fn paper_scenario(benchmark: Benchmark, epochs: usize) -> Scenario {
    Scenario::homogeneous(benchmark, PAPER_AGENTS, epochs)
        .expect("paper-scale scenario parameters are valid")
}

/// Print the standard experiment header.
pub fn header(id: &str, title: &str, paper_says: &str) {
    println!();
    println!("================================================================");
    println!("{id} — {title}");
    println!("paper: {paper_says}");
    println!("================================================================");
}

/// Print a labelled table row of floats with 3-decimal precision.
pub fn row(label: &str, values: &[f64]) {
    print!("{label:<14}");
    for v in values {
        print!(" {v:>9.3}");
    }
    println!();
}

/// Print a table column header.
pub fn columns(label: &str, names: &[&str]) {
    print!("{label:<14}");
    for n in names {
        print!(" {n:>9}");
    }
    println!();
}

/// Render a numeric series as a compact ASCII sparkline (for Figure 6's
/// time series in terminal output).
#[must_use]
pub fn sparkline(values: &[f64], max: f64) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let idx = if max <= 0.0 {
                0
            } else {
                (((v / max) * (LEVELS.len() - 1) as f64).round() as usize).min(LEVELS.len() - 1)
            };
            LEVELS[idx]
        })
        .collect()
}

/// Downsample a series to `n` bucket means (for compact printing).
#[must_use]
pub fn downsample(series: &[f64], n: usize) -> Vec<f64> {
    if series.is_empty() || n == 0 {
        return Vec::new();
    }
    let chunk = series.len().div_ceil(n);
    series
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builder_matches_paper_scale() {
        let s = paper_scenario(Benchmark::DecisionTree, 10);
        assert_eq!(s.game().n_agents(), 1000);
        assert_eq!(s.game().n_min(), 250.0);
        assert_eq!(s.game().n_max(), 750.0);
    }

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0.0, 0.5, 1.0], 1.0);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[1.0], 0.0), "▁");
    }

    #[test]
    fn downsample_means() {
        let d = downsample(&[1.0, 1.0, 3.0, 3.0], 2);
        assert_eq!(d, vec![1.0, 3.0]);
        assert!(downsample(&[], 4).is_empty());
        assert!(downsample(&[1.0], 0).is_empty());
    }
}
