//! Small dense linear-algebra routines.
//!
//! The sprinting models need exactly two solves: stationary distributions
//! of small Markov chains ([`crate::markov`]) and steady states of
//! thermal RC networks (`sprint-power`). Both reduce to dense `Ax = b`
//! with `n` in the tens, where Gaussian elimination with partial pivoting
//! is the right tool.

use crate::StatsError;

/// Solve the dense linear system `A x = b` in place by Gaussian
/// elimination with partial pivoting.
///
/// `a` is row-major and consumed; `b` is consumed and returned as `x`.
///
/// # Errors
///
/// Returns [`StatsError::DimensionMismatch`] for a non-square system or a
/// right-hand side of the wrong length, [`StatsError::InvalidParameter`]
/// when elimination meets a non-finite pivot (NaN or infinity in the
/// matrix), and [`StatsError::NoConvergence`] when the matrix is singular
/// to working precision (pivot below `1e-12`).
pub fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> crate::Result<Vec<f64>> {
    let n = a.len();
    for row in &a {
        if row.len() != n {
            return Err(StatsError::DimensionMismatch {
                expected: n,
                found: row.len(),
            });
        }
    }
    if b.len() != n {
        return Err(StatsError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }

    for col in 0..n {
        // `total_cmp` keeps the selection total (and panic-free) even for
        // NaN candidates; a non-finite winner is then rejected as a typed
        // error instead of poisoning the elimination.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs().total_cmp(&a[pivot][col].abs()).is_gt() {
                pivot = row;
            }
        }
        if !a[pivot][col].is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "a",
                value: a[pivot][col],
                expected: "finite matrix entries",
            });
        }
        if a[pivot][col].abs() < 1e-12 {
            return Err(StatsError::NoConvergence {
                iterations: 0,
                residual: a[pivot][col].abs(),
            });
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            let (pivot_rows, target_rows) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (target, &pivot_val) in target_rows[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *target -= factor * pivot_val;
            }
            b[row] -= factor * b[col];
        }
    }

    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5, x - y = 1  =>  x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear(a, vec![7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_errors() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn non_finite_entries_are_a_typed_error_not_a_panic() {
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let a = vec![vec![poison, 2.0], vec![3.0, 4.0]];
            let err = solve_linear(a, vec![1.0, 2.0]).unwrap_err();
            assert!(
                matches!(err, StatsError::InvalidParameter { name: "a", .. }),
                "{poison} must surface as InvalidParameter, got {err:?}"
            );
        }
    }

    #[test]
    fn dimension_mismatches_error() {
        assert!(solve_linear(vec![vec![1.0, 2.0]], vec![1.0]).is_err());
        assert!(solve_linear(vec![vec![1.0]], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn residual_is_small_for_random_system() {
        // Deterministic pseudo-random well-conditioned system.
        let mut state = 7u64;
        let n = 12;
        let mut a = vec![vec![0.0; n]; n];
        let mut b = vec![0.0; n];
        for i in 0..n {
            for cell in a[i].iter_mut() {
                *cell = (crate::rng::splitmix64(&mut state) % 1000) as f64 / 500.0 - 1.0;
            }
            a[i][i] += n as f64; // diagonal dominance
            b[i] = (crate::rng::splitmix64(&mut state) % 1000) as f64 / 100.0;
        }
        let x = solve_linear(a.clone(), b.clone()).unwrap();
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a[i][j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-9);
        }
    }
}
