//! Online summary statistics and percentile helpers.
//!
//! The simulator aggregates per-epoch and per-trial measurements (tasks per
//! second, sprinter counts, state occupancy). [`OnlineStats`] implements
//! Welford's numerically stable streaming mean/variance; [`percentile`]
//! computes interpolated percentiles for reporting.

use crate::StatsError;

/// Numerically stable streaming mean/variance accumulator (Welford).
///
/// ```
/// use sprint_stats::summary::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Linearly interpolated percentile of a sample (the `p`-th percentile,
/// `p` in `[0, 100]`).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for empty data and
/// [`StatsError::InvalidParameter`] for `p` outside `[0, 100]` or
/// non-finite data.
pub fn percentile(data: &[f64], p: f64) -> crate::Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidParameter {
            name: "p",
            value: p,
            expected: "a percentile in [0, 100]",
        });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::InvalidParameter {
            name: "data",
            value: f64::NAN,
            expected: "finite data values",
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Sample autocorrelation at lag `k`.
///
/// Used to validate the phase-persistence model: a stream holding each
/// phase for a geometric number of epochs with mean `m` has lag-1
/// autocorrelation `(m − 1)/m`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when fewer than `k + 2` samples are
/// provided, and [`StatsError::InvalidParameter`] for non-finite data or a
/// zero-variance series (autocorrelation undefined).
pub fn autocorrelation(data: &[f64], k: usize) -> crate::Result<f64> {
    if data.len() < k + 2 {
        return Err(StatsError::EmptyInput);
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::InvalidParameter {
            name: "data",
            value: f64::NAN,
            expected: "finite data values",
        });
    }
    let n = data.len() as f64;
    let mu = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / n;
    if var <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "data",
            value: 0.0,
            expected: "a series with positive variance",
        });
    }
    let cov = data
        .windows(k + 1)
        .map(|w| (w[0] - mu) * (w[k] - mu))
        .sum::<f64>()
        / n;
    Ok(cov / var)
}

/// A symmetric confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` lies inside the interval.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

/// Two-sided 95 % Student-t quantiles by degrees of freedom (1-indexed);
/// beyond the table the normal quantile 1.96 applies.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// 95 % Student-t confidence interval for the mean of `data`.
///
/// Experiment trials are few (the paper averages ten runs), so the
/// small-sample t quantiles matter; the runner reports these intervals
/// alongside trial means.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for fewer than two samples and
/// [`StatsError::InvalidParameter`] for non-finite data.
pub fn confidence_interval_95(data: &[f64]) -> crate::Result<ConfidenceInterval> {
    if data.len() < 2 {
        return Err(StatsError::EmptyInput);
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::InvalidParameter {
            name: "data",
            value: f64::NAN,
            expected: "finite data values",
        });
    }
    let stats: OnlineStats = data.iter().copied().collect();
    let dof = data.len() - 1;
    let t = if dof <= T_95.len() {
        T_95[dof - 1]
    } else {
        1.96
    };
    let std_err = (stats.sample_variance() / data.len() as f64).sqrt();
    Ok(ConfidenceInterval {
        mean: stats.mean(),
        half_width: t * std_err,
    })
}

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
pub fn mean(data: &[f64]) -> crate::Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Geometric mean of a slice of positive values.
///
/// Used to summarize speedup ratios across benchmarks, the conventional
/// aggregate in architecture evaluations.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice and
/// [`StatsError::InvalidParameter`] for non-positive values.
pub fn geometric_mean(data: &[f64]) -> crate::Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if data.iter().any(|&x| x <= 0.0 || !x.is_finite()) {
        return Err(StatsError::InvalidParameter {
            name: "data",
            value: f64::NAN,
            expected: "strictly positive finite values",
        });
    }
    Ok((data.iter().map(|x| x.ln()).sum::<f64>() / data.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_batch() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0];
        let s: OnlineStats = data.iter().copied().collect();
        let batch_mean = data.iter().sum::<f64>() / data.len() as f64;
        let batch_var =
            data.iter().map(|x| (x - batch_mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - batch_mean).abs() < 1e-12);
        assert!((s.variance() - batch_var).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = data.split_at(300);
        let mut sa: OnlineStats = a.iter().copied().collect();
        let sb: OnlineStats = b.iter().copied().collect();
        sa.merge(&sb);
        let all: OnlineStats = data.iter().copied().collect();
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-10);
        assert!((sa.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn sample_variance_uses_bessel() {
        let s: OnlineStats = [1.0, 3.0].into_iter().collect();
        assert!((s.sample_variance() - 2.0).abs() < 1e-12);
        assert!((s.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 4.0);
        assert!((percentile(&data, 50.0).unwrap() - 2.5).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_err());
        assert!(percentile(&data, 101.0).is_err());
        assert!(percentile(&[f64::NAN], 50.0).is_err());
    }

    #[test]
    fn percentile_unsorted_input() {
        let data = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&data, 50.0).unwrap(), 5.0);
    }

    #[test]
    fn autocorrelation_of_iid_is_near_zero() {
        // Deterministic pseudo-random draws are iid for lag-1 purposes.
        let mut state = 42u64;
        let data: Vec<f64> = (0..5000)
            .map(|_| crate::rng::splitmix64(&mut state) as f64 / u64::MAX as f64)
            .collect();
        let r1 = autocorrelation(&data, 1).unwrap();
        assert!(r1.abs() < 0.05, "lag-1 autocorrelation {r1}");
    }

    #[test]
    fn autocorrelation_of_persistent_series_is_high() {
        // Hold each value for 4 steps: lag-1 autocorrelation ≈ 3/4.
        let data: Vec<f64> = (0..4000)
            .map(|i| f64::from((i / 4) % 17 != 0) + ((i / 4) % 5) as f64)
            .collect();
        let r1 = autocorrelation(&data, 1).unwrap();
        assert!((r1 - 0.75).abs() < 0.05, "lag-1 autocorrelation {r1}");
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let data = [1.0, 5.0, 2.0, 8.0, 3.0];
        assert!((autocorrelation(&data, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_validates() {
        assert!(autocorrelation(&[1.0, 2.0], 1).is_err()); // too short
        assert!(autocorrelation(&[1.0, f64::NAN, 2.0], 1).is_err());
        assert!(autocorrelation(&[3.0; 100], 1).is_err()); // zero variance
    }

    #[test]
    fn confidence_interval_contains_true_mean() {
        let data: Vec<f64> = (0..50).map(|i| 10.0 + (i % 7) as f64).collect();
        let ci = confidence_interval_95(&data).unwrap();
        let true_mean = data.iter().sum::<f64>() / data.len() as f64;
        assert!(ci.contains(true_mean));
        assert!(ci.lo() < ci.hi());
        assert!((ci.lo() + ci.hi()) / 2.0 - ci.mean < 1e-12);
    }

    #[test]
    fn small_samples_widen_the_interval() {
        // Same per-sample spread, fewer samples: wider interval (both the
        // 1/sqrt(n) factor and the t quantile).
        let small = [1.0, 3.0];
        let large: Vec<f64> = [1.0, 3.0].repeat(20);
        let ci_small = confidence_interval_95(&small).unwrap();
        let ci_large = confidence_interval_95(&large).unwrap();
        assert!(ci_small.half_width > 4.0 * ci_large.half_width);
    }

    #[test]
    fn confidence_interval_validates() {
        assert!(confidence_interval_95(&[1.0]).is_err());
        assert!(confidence_interval_95(&[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn mean_and_geometric_mean() {
        assert_eq!(mean(&[2.0, 4.0]).unwrap(), 3.0);
        assert!(mean(&[]).is_err());
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[]).is_err());
    }
}
