use std::error::Error;
use std::fmt;

/// Error raised by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// Input slice was empty where at least one element is required.
    EmptyInput,
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was rejected.
        value: f64,
        /// Human-readable description of the valid domain.
        expected: &'static str,
    },
    /// A probability vector or matrix row failed to normalize.
    NotNormalized {
        /// The mass that was found instead of 1.
        mass: f64,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations attempted.
        iterations: usize,
        /// Residual at the final iteration.
        residual: f64,
    },
    /// Matrix dimensions were inconsistent.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension found.
        found: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input must contain at least one element"),
            StatsError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "parameter `{name}` = {value} is invalid: expected {expected}"
            ),
            StatsError::NotNormalized { mass } => {
                write!(f, "probabilities sum to {mass}, expected 1")
            }
            StatsError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iteration failed to converge after {iterations} steps (residual {residual:e})"
            ),
            StatsError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            StatsError::EmptyInput,
            StatsError::InvalidParameter {
                name: "sigma",
                value: -1.0,
                expected: "a positive number",
            },
            StatsError::NotNormalized { mass: 0.5 },
            StatsError::NoConvergence {
                iterations: 10,
                residual: 1e-2,
            },
            StatsError::DimensionMismatch {
                expected: 3,
                found: 2,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<StatsError>();
    }
}
