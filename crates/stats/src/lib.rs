//! Numerical substrate for the computational sprinting game.
//!
//! The sprinting game (Fan, Zahedi, Lee — ASPLOS 2016) reasons about agent
//! populations through probability densities over sprinting utility,
//! Markov chains over agent states, and kernel density estimates of
//! workload speedups. This crate provides those numerical tools:
//!
//! - [`dist`] — parametric continuous distributions with analytic
//!   pdf/cdf and sampling (uniform, truncated normal, log-normal, mixtures).
//! - [`density`] — [`DiscreteDensity`](density::DiscreteDensity), a density
//!   discretized on a uniform grid. This is the `f(u)` representation the
//!   game's Bellman solver integrates against.
//! - [`histogram`] — fixed-bin histograms and quantiles.
//! - [`kde`] — Gaussian kernel density estimation (paper Figure 10).
//! - [`markov`] — finite Markov chains and stationary distributions
//!   (paper Figure 5).
//! - [`summary`] — online summary statistics (Welford) and percentiles.
//! - [`rng`] — deterministic seed derivation for reproducible experiments.
//!
//! # Example
//!
//! Estimate a density from samples and integrate its upper tail — exactly
//! what the game does to compute an agent's sprint probability
//! `p_s = ∫_{u_T}^{u_max} f(u) du` (paper Equation 9):
//!
//! ```
//! use sprint_stats::density::DiscreteDensity;
//!
//! # fn main() -> Result<(), sprint_stats::StatsError> {
//! let samples: Vec<f64> = (0..1000).map(|i| 1.0 + (i % 50) as f64 / 10.0).collect();
//! let f = DiscreteDensity::from_samples(&samples, 64)?;
//! let p_sprint = f.tail_mass(3.0);
//! assert!(p_sprint > 0.0 && p_sprint < 1.0);
//! # Ok(())
//! # }
//! ```

pub mod density;
pub mod dist;
pub mod histogram;
pub mod kde;
pub mod linalg;
pub mod markov;
pub mod rng;
pub mod summary;

mod error;

pub use error::StatsError;

/// Convenience result alias for fallible statistics operations.
pub type Result<T> = std::result::Result<T, StatsError>;

/// Absolute tolerance used by iterative numerical routines in this crate.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;

/// Compare two floats for approximate equality with an absolute tolerance.
///
/// ```
/// assert!(sprint_stats::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!sprint_stats::approx_eq(1.0, 1.1, 1e-9));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
