//! Finite Markov chains and stationary distributions.
//!
//! Paper Figure 5 models each agent (outside recovery) as a two-state
//! Markov chain: active agents sprint with probability `p_s` and enter
//! cooling; cooling agents stay with probability `p_c`. The stationary
//! probability of being active, `p_A`, feeds Equation 10
//! (`n_S = p_s · p_A · N`). This module provides general finite chains plus
//! the closed-form two-state helper.

use crate::StatsError;

/// A finite, discrete-time Markov chain given by a row-stochastic
/// transition matrix `p[i][j] = P(next = j | current = i)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    p: Vec<Vec<f64>>,
}

impl MarkovChain {
    /// Create a chain from a row-stochastic matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty matrix,
    /// [`StatsError::DimensionMismatch`] for non-square input,
    /// [`StatsError::InvalidParameter`] for negative or non-finite entries,
    /// and [`StatsError::NotNormalized`] when a row does not sum to 1
    /// (tolerance `1e-9`).
    pub fn new(p: Vec<Vec<f64>>) -> crate::Result<Self> {
        if p.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let n = p.len();
        for row in &p {
            if row.len() != n {
                return Err(StatsError::DimensionMismatch {
                    expected: n,
                    found: row.len(),
                });
            }
            if row.iter().any(|&x| x < 0.0 || !x.is_finite()) {
                return Err(StatsError::InvalidParameter {
                    name: "p",
                    value: f64::NAN,
                    expected: "non-negative finite transition probabilities",
                });
            }
            let mass: f64 = row.iter().sum();
            if (mass - 1.0).abs() > 1e-9 {
                return Err(StatsError::NotNormalized { mass });
            }
        }
        Ok(MarkovChain { p })
    }

    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// Whether the chain has no states (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// Transition matrix rows.
    #[must_use]
    pub fn matrix(&self) -> &[Vec<f64>] {
        &self.p
    }

    /// One step of the distribution: `out = pi * P`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `pi` has the wrong
    /// length.
    pub fn step(&self, pi: &[f64]) -> crate::Result<Vec<f64>> {
        if pi.len() != self.p.len() {
            return Err(StatsError::DimensionMismatch {
                expected: self.p.len(),
                found: pi.len(),
            });
        }
        let n = self.p.len();
        let mut out = vec![0.0; n];
        for (i, &mass) in pi.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            for (j, out_j) in out.iter_mut().enumerate() {
                *out_j += mass * self.p[i][j];
            }
        }
        Ok(out)
    }

    /// Stationary distribution by power iteration from the uniform
    /// distribution.
    ///
    /// Suitable for the aperiodic, irreducible chains that arise in the
    /// sprinting game (all transition probabilities of interest are
    /// interior). Converges when successive iterates differ by less than
    /// `tol` in L1 norm.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NoConvergence`] if `max_iter` is exhausted,
    /// e.g. for periodic chains.
    pub fn stationary_power(&self, tol: f64, max_iter: usize) -> crate::Result<Vec<f64>> {
        let n = self.p.len();
        let mut pi = vec![1.0 / n as f64; n];
        let mut residual = f64::INFINITY;
        for _ in 0..max_iter {
            let next = self.step(&pi)?;
            residual = pi
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
            pi = next;
            if residual < tol {
                return Ok(pi);
            }
        }
        Err(StatsError::NoConvergence {
            iterations: max_iter,
            residual,
        })
    }

    /// Stationary distribution by solving the balance equations
    /// `pi (P - I) = 0`, `sum(pi) = 1` with Gaussian elimination.
    ///
    /// Exact (up to rounding) and independent of chain periodicity, but
    /// requires the stationary distribution to be unique (irreducible
    /// chain).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NoConvergence`] when the linear system is
    /// singular beyond the normalization constraint (reducible chain).
    pub fn stationary_direct(&self) -> crate::Result<Vec<f64>> {
        let n = self.p.len();
        // Build A^T x = b where A has columns (P^T - I) and a row of ones
        // replacing the last balance equation (which is redundant).
        let mut a = vec![vec![0.0; n]; n];
        for (i, p_row) in self.p.iter().enumerate() {
            for (j, &p_ij) in p_row.iter().enumerate() {
                // Balance: sum_i pi_i (p[i][j] - delta_ij) = 0, row j.
                a[j][i] = p_ij - if i == j { 1.0 } else { 0.0 };
            }
        }
        // The last balance equation is redundant; replace it with the
        // normalization constraint sum(pi) = 1.
        a[n - 1].fill(1.0);
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;

        let mut x = crate::linalg::solve_linear(a, b)?;
        // Clean tiny negative rounding and renormalize.
        for v in &mut x {
            if *v < 0.0 && *v > -1e-9 {
                *v = 0.0;
            }
        }
        let mass: f64 = x.iter().sum();
        if (mass - 1.0).abs() > 1e-6 || x.iter().any(|&v| v < 0.0) {
            return Err(StatsError::NoConvergence {
                iterations: 0,
                residual: (mass - 1.0).abs(),
            });
        }
        for v in &mut x {
            *v /= mass;
        }
        Ok(x)
    }
}

/// Stationary active/cooling split for the paper's Figure 5 chain.
///
/// An active agent sprints with probability `ps` (entering cooling); a
/// cooling agent remains cooling with probability `pc`. Returns
/// `(p_active, p_cooling)` in steady state:
///
/// `p_active = (1 - pc) / ((1 - pc) + ps)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `ps` is outside `[0, 1]`
/// or `pc` outside `[0, 1)` (a `pc` of 1 means cooling never ends and no
/// stationary active share exists except 0 when `ps > 0`).
pub fn active_cooling_stationary(ps: f64, pc: f64) -> crate::Result<(f64, f64)> {
    if !(0.0..=1.0).contains(&ps) {
        return Err(StatsError::InvalidParameter {
            name: "ps",
            value: ps,
            expected: "a probability in [0, 1]",
        });
    }
    if !(0.0..1.0).contains(&pc) {
        return Err(StatsError::InvalidParameter {
            name: "pc",
            value: pc,
            expected: "a probability in [0, 1)",
        });
    }
    let leave_cooling = 1.0 - pc;
    let p_active = leave_cooling / (leave_cooling + ps);
    Ok((p_active, 1.0 - p_active))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn validates_matrix() {
        assert!(MarkovChain::new(vec![]).is_err());
        assert!(MarkovChain::new(vec![vec![1.0, 0.0]]).is_err()); // non-square
        assert!(MarkovChain::new(vec![vec![0.5, 0.4], vec![0.5, 0.5]]).is_err()); // row sum
        assert!(MarkovChain::new(vec![vec![-0.5, 1.5], vec![0.5, 0.5]]).is_err());
        // negative
    }

    #[test]
    fn step_conserves_mass() {
        let mc = MarkovChain::new(vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap();
        let next = mc.step(&[0.3, 0.7]).unwrap();
        assert!((next.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(mc.step(&[1.0]).is_err());
    }

    #[test]
    fn two_state_stationary_analytic() {
        // P(A->C) = 0.2, P(C->A) = 0.5 => pi_A = 0.5 / 0.7.
        let mc = MarkovChain::new(vec![vec![0.8, 0.2], vec![0.5, 0.5]]).unwrap();
        let expected = [0.5 / 0.7, 0.2 / 0.7];
        let power = mc.stationary_power(1e-12, 10_000).unwrap();
        let direct = mc.stationary_direct().unwrap();
        assert!(close(&power, &expected, 1e-9));
        assert!(close(&direct, &expected, 1e-9));
    }

    #[test]
    fn power_and_direct_agree_on_three_states() {
        // Active / cooling / recovery-like chain.
        let mc = MarkovChain::new(vec![
            vec![0.70, 0.25, 0.05],
            vec![0.45, 0.50, 0.05],
            vec![0.12, 0.00, 0.88],
        ])
        .unwrap();
        let power = mc.stationary_power(1e-13, 100_000).unwrap();
        let direct = mc.stationary_direct().unwrap();
        assert!(close(&power, &direct, 1e-8));
        assert!((power.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_is_fixed_point() {
        let mc = MarkovChain::new(vec![
            vec![0.2, 0.5, 0.3],
            vec![0.1, 0.8, 0.1],
            vec![0.6, 0.2, 0.2],
        ])
        .unwrap();
        let pi = mc.stationary_direct().unwrap();
        let stepped = mc.step(&pi).unwrap();
        assert!(close(&pi, &stepped, 1e-10));
    }

    #[test]
    fn periodic_chain_power_fails_direct_succeeds() {
        // Deterministic 2-cycle: power iteration from uniform actually
        // converges instantly (uniform is stationary), so perturb: use a
        // 3-cycle with uniform start — uniform is stationary there too.
        // Instead verify direct solve handles it.
        let mc = MarkovChain::new(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let direct = mc.stationary_direct().unwrap();
        assert!(close(&direct, &[0.5, 0.5], 1e-9));
    }

    #[test]
    fn reducible_chain_direct_errors() {
        // Two absorbing states: stationary distribution not unique.
        let mc = MarkovChain::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(mc.stationary_direct().is_err());
    }

    #[test]
    fn active_cooling_matches_paper_parameters() {
        // Table 2: pc = 0.5. With ps = 0.25, p_A = 0.5/0.75 = 2/3.
        let (pa, pcool) = active_cooling_stationary(0.25, 0.5).unwrap();
        assert!((pa - 2.0 / 3.0).abs() < 1e-12);
        assert!((pa + pcool - 1.0).abs() < 1e-12);
    }

    #[test]
    fn active_cooling_edge_cases() {
        // Never sprinting -> always active.
        let (pa, _) = active_cooling_stationary(0.0, 0.5).unwrap();
        assert_eq!(pa, 1.0);
        // Always sprinting with instant cooldown -> 50/50.
        let (pa, _) = active_cooling_stationary(1.0, 0.0).unwrap();
        assert!((pa - 0.5).abs() < 1e-12);
        assert!(active_cooling_stationary(1.5, 0.5).is_err());
        assert!(active_cooling_stationary(0.5, 1.0).is_err());
    }

    #[test]
    fn active_cooling_agrees_with_general_chain() {
        let (ps, pc) = (0.3, 0.5);
        let (pa, _) = active_cooling_stationary(ps, pc).unwrap();
        let mc = MarkovChain::new(vec![vec![1.0 - ps, ps], vec![1.0 - pc, pc]]).unwrap();
        let pi = mc.stationary_direct().unwrap();
        assert!((pi[0] - pa).abs() < 1e-10);
    }
}
