//! Parametric continuous distributions.
//!
//! The workload substrate models each benchmark's sprinting speedup with a
//! parametric distribution: narrow bands for Linear Regression and
//! Correlation, heavy-tailed bimodal mixtures for the graph workloads
//! (paper Figure 10). Each distribution exposes an analytic pdf and cdf —
//! required by the game's closed-form integrals — plus exact sampling for
//! the simulator.

use rand::Rng;

use crate::StatsError;

/// Error function `erf(x)`, accurate to about `1.2e-7` absolute error.
///
/// Implements the Abramowitz & Stegun 7.1.26 rational approximation, which
/// is more than sufficient for density calibration (the game's outputs are
/// insensitive to pdf errors far below simulation noise).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function.
#[must_use]
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal probability density function.
#[must_use]
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// A one-dimensional continuous distribution with analytic pdf/cdf and
/// exact sampling.
///
/// The trait is object-safe so heterogeneous benchmark profiles can store
/// `Box<dyn ContinuousDistribution>`.
pub trait ContinuousDistribution: std::fmt::Debug + Send + Sync {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative probability `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Draw one sample.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;

    /// Support of the distribution as `(lo, hi)`.
    ///
    /// Values outside the support have zero density. Distributions with
    /// unbounded support report a finite effective range covering at least
    /// `1 - 1e-9` of the mass, which is what grid discretization consumes.
    fn support(&self) -> (f64, f64);

    /// Mean of the distribution.
    fn mean(&self) -> f64;
}

/// Uniform distribution on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create a uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `hi <= lo` or either
    /// bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> crate::Result<Self> {
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(StatsError::InvalidParameter {
                name: "hi",
                value: hi,
                expected: "a finite value strictly greater than lo",
            });
        }
        Ok(Uniform { lo, hi })
    }

    /// Lower bound of the support.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl ContinuousDistribution for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rand::Rng::gen(&mut *rng);
        self.lo + u * (self.hi - self.lo)
    }

    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Normal distribution truncated to `[lo, hi]`.
///
/// Used for the narrow speedup bands of Linear Regression and Correlation:
/// "performance gains from sprinting vary in a band between 3× and 5×"
/// (paper §6.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
    /// Normalizing mass `Phi((hi-mu)/sigma) - Phi((lo-mu)/sigma)`.
    z: f64,
}

impl TruncatedNormal {
    /// Create a normal distribution with location `mu` and scale `sigma`
    /// truncated to `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `sigma <= 0`, bounds are
    /// inverted, or the truncation interval carries negligible mass
    /// (less than `1e-12`), which would make rejection sampling diverge.
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64) -> crate::Result<Self> {
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                expected: "a positive finite number",
            });
        }
        if hi <= lo {
            return Err(StatsError::InvalidParameter {
                name: "hi",
                value: hi,
                expected: "a value strictly greater than lo",
            });
        }
        let z = std_normal_cdf((hi - mu) / sigma) - std_normal_cdf((lo - mu) / sigma);
        if z < 1e-12 {
            return Err(StatsError::InvalidParameter {
                name: "lo",
                value: lo,
                expected: "a truncation interval with non-negligible mass",
            });
        }
        Ok(TruncatedNormal {
            mu,
            sigma,
            lo,
            hi,
            z,
        })
    }

    /// Location parameter of the parent normal.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter of the parent normal.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDistribution for TruncatedNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            return 0.0;
        }
        std_normal_pdf((x - self.mu) / self.sigma) / (self.sigma * self.z)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (std_normal_cdf((x - self.mu) / self.sigma)
                - std_normal_cdf((self.lo - self.mu) / self.sigma))
                / self.z
        }
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Rejection sampling from the parent normal. The constructor
        // guarantees the acceptance region has mass >= 1e-12; in practice
        // the workload profiles keep it above 0.5, so this loop is short.
        loop {
            let u1: f64 = rand::Rng::gen(&mut *rng);
            let u2: f64 = rand::Rng::gen(&mut *rng);
            let r = (-2.0 * u1.max(f64::MIN_POSITIVE).ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            for z in [r * theta.cos(), r * theta.sin()] {
                let x = self.mu + self.sigma * z;
                if x >= self.lo && x <= self.hi {
                    return x;
                }
            }
        }
    }

    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        // E[X] = mu + sigma * (phi(a) - phi(b)) / Z for truncation [a, b]
        // in standardized coordinates.
        let a = (self.lo - self.mu) / self.sigma;
        let b = (self.hi - self.mu) / self.sigma;
        self.mu + self.sigma * (std_normal_pdf(a) - std_normal_pdf(b)) / self.z
    }
}

/// Log-normal distribution: `ln X ~ Normal(mu, sigma)`.
///
/// Models heavy-tailed speedups like PageRank's, whose "performance gains
/// can often exceed 10×" (paper §6.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create a log-normal with log-location `mu` and log-scale `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `sigma <= 0`.
    pub fn new(mu: f64, sigma: f64) -> crate::Result<Self> {
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                expected: "a positive finite number",
            });
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl ContinuousDistribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        std_normal_pdf((x.ln() - self.mu) / self.sigma) / (x * self.sigma)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u1: f64 = rand::Rng::gen(&mut *rng);
        let u2: f64 = rand::Rng::gen(&mut *rng);
        let z = (-2.0 * u1.max(f64::MIN_POSITIVE).ln()).sqrt()
            * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    fn support(&self) -> (f64, f64) {
        // Effective support covering ~1 - 1e-9 of mass: mu ± 6 sigma in
        // log space.
        (
            (self.mu - 6.0 * self.sigma).exp(),
            (self.mu + 6.0 * self.sigma).exp(),
        )
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
}

/// Finite mixture of distributions with given weights.
///
/// PageRank-style bimodal utility profiles are mixtures of a low-gain and a
/// high-gain mode (paper Figure 10, right panel).
#[derive(Debug)]
pub struct Mixture {
    components: Vec<Box<dyn ContinuousDistribution>>,
    weights: Vec<f64>,
    cumulative: Vec<f64>,
}

impl Mixture {
    /// Create a mixture from components and matching weights.
    ///
    /// Weights must be non-negative and are normalized to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when no components are given,
    /// [`StatsError::DimensionMismatch`] when lengths differ, and
    /// [`StatsError::NotNormalized`] when all weights are zero.
    pub fn new(
        components: Vec<Box<dyn ContinuousDistribution>>,
        weights: Vec<f64>,
    ) -> crate::Result<Self> {
        if components.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if components.len() != weights.len() {
            return Err(StatsError::DimensionMismatch {
                expected: components.len(),
                found: weights.len(),
            });
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "weights",
                value: f64::NAN,
                expected: "non-negative finite weights",
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(StatsError::NotNormalized { mass: total });
        }
        let weights: Vec<f64> = weights.into_iter().map(|w| w / total).collect();
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        Ok(Mixture {
            components,
            weights,
            cumulative,
        })
    }

    /// Number of mixture components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the mixture has no components (never true after `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Normalized component weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl ContinuousDistribution for Mixture {
    fn pdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .zip(&self.weights)
            .map(|(c, w)| w * c.pdf(x))
            .sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .zip(&self.weights)
            .map(|(c, w)| w * c.cdf(x))
            .sum()
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rand::Rng::gen(&mut *rng);
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.components.len() - 1);
        self.components[idx].sample(rng)
    }

    fn support(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in &self.components {
            let (l, h) = c.support();
            lo = lo.min(l);
            hi = hi.max(h);
        }
        (lo, hi)
    }

    fn mean(&self) -> f64 {
        self.components
            .iter()
            .zip(&self.weights)
            .map(|(c, w)| w * c.mean())
            .sum()
    }
}

/// Draw `n` samples from a distribution into a vector.
pub fn sample_n<D, R>(dist: &D, n: usize, rng: &mut R) -> Vec<f64>
where
    D: ContinuousDistribution + ?Sized,
    R: Rng,
{
    (0..n).map(|_| dist.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {a} ≈ {b} (tol {tol})");
    }

    #[test]
    fn erf_reference_values() {
        assert_close(erf(0.0), 0.0, 1e-8);
        assert_close(erf(1.0), 0.842_700_79, 2e-7);
        assert_close(erf(-1.0), -0.842_700_79, 2e-7);
        assert_close(erf(2.0), 0.995_322_27, 2e-7);
    }

    #[test]
    fn std_normal_cdf_symmetry() {
        for x in [0.1, 0.5, 1.3, 2.7] {
            assert_close(std_normal_cdf(x) + std_normal_cdf(-x), 1.0, 1e-9);
        }
    }

    #[test]
    fn uniform_rejects_bad_bounds() {
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn uniform_pdf_cdf_consistency() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        assert_close(u.pdf(4.0), 0.25, 1e-12);
        assert_close(u.cdf(2.0), 0.0, 1e-12);
        assert_close(u.cdf(4.0), 0.5, 1e-12);
        assert_close(u.cdf(6.0), 1.0, 1e-12);
        assert_eq!(u.pdf(1.0), 0.0);
        assert_close(u.mean(), 4.0, 1e-12);
    }

    #[test]
    fn uniform_samples_stay_in_support() {
        let u = Uniform::new(-1.0, 3.0).unwrap();
        let mut rng = seeded_rng(1);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((-1.0..=3.0).contains(&x));
        }
    }

    #[test]
    fn truncated_normal_validates() {
        assert!(TruncatedNormal::new(0.0, -1.0, 0.0, 1.0).is_err());
        assert!(TruncatedNormal::new(0.0, 1.0, 2.0, 1.0).is_err());
        // Interval 40 sigma away from the mean carries ~zero mass.
        assert!(TruncatedNormal::new(0.0, 1.0, 40.0, 41.0).is_err());
    }

    #[test]
    fn truncated_normal_mean_matches_sampling() {
        let d = TruncatedNormal::new(4.0, 0.5, 3.0, 5.0).unwrap();
        let mut rng = seeded_rng(2);
        let samples = sample_n(&d, 20_000, &mut rng);
        let emp_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert_close(emp_mean, d.mean(), 0.02);
        assert!(samples.iter().all(|&x| (3.0..=5.0).contains(&x)));
    }

    #[test]
    fn truncated_normal_cdf_bounds() {
        let d = TruncatedNormal::new(0.0, 1.0, -1.0, 1.0).unwrap();
        assert_eq!(d.cdf(-2.0), 0.0);
        assert_eq!(d.cdf(2.0), 1.0);
        assert_close(d.cdf(0.0), 0.5, 1e-7);
    }

    #[test]
    fn lognormal_mean_is_analytic() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        assert_close(d.mean(), (1.0f64 + 0.125).exp(), 1e-12);
        let mut rng = seeded_rng(3);
        let samples = sample_n(&d, 50_000, &mut rng);
        let emp = samples.iter().sum::<f64>() / samples.len() as f64;
        assert_close(emp, d.mean(), 0.06);
    }

    #[test]
    fn lognormal_pdf_zero_below_support() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
    }

    #[test]
    fn mixture_validates_inputs() {
        let c = || -> Box<dyn ContinuousDistribution> { Box::new(Uniform::new(0.0, 1.0).unwrap()) };
        assert!(matches!(
            Mixture::new(vec![], vec![]),
            Err(StatsError::EmptyInput)
        ));
        assert!(matches!(
            Mixture::new(vec![c()], vec![0.5, 0.5]),
            Err(StatsError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Mixture::new(vec![c()], vec![0.0]),
            Err(StatsError::NotNormalized { .. })
        ));
        assert!(Mixture::new(vec![c()], vec![-1.0]).is_err());
    }

    #[test]
    fn mixture_normalizes_weights() {
        let m = Mixture::new(
            vec![
                Box::new(Uniform::new(0.0, 1.0).unwrap()),
                Box::new(Uniform::new(10.0, 11.0).unwrap()),
            ],
            vec![2.0, 6.0],
        )
        .unwrap();
        assert_close(m.weights()[0], 0.25, 1e-12);
        assert_close(m.weights()[1], 0.75, 1e-12);
        assert_close(m.mean(), 0.25 * 0.5 + 0.75 * 10.5, 1e-12);
    }

    #[test]
    fn mixture_cdf_is_weighted_sum() {
        let m = Mixture::new(
            vec![
                Box::new(Uniform::new(0.0, 2.0).unwrap()),
                Box::new(Uniform::new(4.0, 6.0).unwrap()),
            ],
            vec![0.5, 0.5],
        )
        .unwrap();
        assert_close(m.cdf(2.0), 0.5, 1e-12);
        assert_close(m.cdf(6.0), 1.0, 1e-12);
        assert_close(m.cdf(1.0), 0.25, 1e-12);
    }

    #[test]
    fn mixture_sampling_respects_weights() {
        let m = Mixture::new(
            vec![
                Box::new(Uniform::new(0.0, 1.0).unwrap()),
                Box::new(Uniform::new(10.0, 11.0).unwrap()),
            ],
            vec![0.2, 0.8],
        )
        .unwrap();
        let mut rng = seeded_rng(4);
        let samples = sample_n(&m, 10_000, &mut rng);
        let high = samples.iter().filter(|&&x| x > 5.0).count() as f64 / 10_000.0;
        assert_close(high, 0.8, 0.02);
    }

    #[test]
    fn mixture_support_spans_components() {
        let m = Mixture::new(
            vec![
                Box::new(Uniform::new(1.0, 2.0).unwrap()),
                Box::new(Uniform::new(5.0, 9.0).unwrap()),
            ],
            vec![0.5, 0.5],
        )
        .unwrap();
        assert_eq!(m.support(), (1.0, 9.0));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }
}
