//! Fixed-bin histograms.
//!
//! Profiling in the sprinting game samples per-epoch sprinting utilities and
//! bins them into an empirical density (paper §4.4, "Offline Analysis").

use crate::StatsError;

/// A histogram with uniform bins over `[lo, hi]`.
///
/// Out-of-range observations are clamped into the first/last bin so that
/// profiling never silently drops mass; the clamped count is tracked and
/// can be inspected with [`Histogram::clamped`].
///
/// ```
/// use sprint_stats::histogram::Histogram;
///
/// # fn main() -> Result<(), sprint_stats::StatsError> {
/// let mut h = Histogram::new(0.0, 10.0, 5)?;
/// for x in [1.0, 1.5, 7.2, 9.9] {
///     h.add(x);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin_counts()[0], 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    clamped: u64,
}

impl Histogram {
    /// Create an empty histogram with `bins` uniform bins over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `bins == 0` or the range
    /// is empty or non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> crate::Result<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
                expected: "at least one bin",
            });
        }
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(StatsError::InvalidParameter {
                name: "hi",
                value: hi,
                expected: "a finite value strictly greater than lo",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            clamped: 0,
        })
    }

    /// Build a histogram sized to cover `samples` exactly.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if `samples` is empty, or
    /// [`StatsError::InvalidParameter`] for `bins == 0` or non-finite
    /// samples. If all samples are equal the range is widened slightly so
    /// the single value falls in an interior bin.
    pub fn from_samples(samples: &[f64], bins: usize) -> crate::Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "samples",
                value: f64::NAN,
                expected: "finite sample values",
            });
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in samples {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if hi <= lo {
            // Degenerate sample set: widen by an epsilon-scaled margin.
            let pad = lo.abs().max(1.0) * 1e-6;
            lo -= pad;
            hi += pad;
        }
        let mut h = Histogram::new(lo, hi, bins)?;
        for &x in samples {
            h.add(x);
        }
        Ok(h)
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        let raw = ((x - self.lo) / width).floor();
        let idx = if raw < 0.0 {
            self.clamped += 1;
            0
        } else if raw as usize >= bins {
            if x > self.hi {
                self.clamped += 1;
            }
            bins - 1
        } else {
            raw as usize
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Record many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }

    /// Total number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of observations clamped from outside `[lo, hi]`.
    #[must_use]
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Raw per-bin counts.
    #[must_use]
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Lower edge of the histogram range.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the histogram range.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of each bin.
    #[must_use]
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index {i} out of range");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Normalized density per bin (integrates to 1 over the range).
    ///
    /// Returns all-zero densities when the histogram is empty.
    #[must_use]
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = 1.0 / (self.total as f64 * self.bin_width());
        self.counts.iter().map(|&c| c as f64 * norm).collect()
    }

    /// Empirical quantile via linear interpolation over bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when no observations were
    /// recorded, or [`StatsError::InvalidParameter`] when `q` is outside
    /// `[0, 1]`.
    pub fn quantile(&self, q: f64) -> crate::Result<f64> {
        if self.total == 0 {
            return Err(StatsError::EmptyInput);
        }
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidParameter {
                name: "q",
                value: q,
                expected: "a probability in [0, 1]",
            });
        }
        let target = q * self.total as f64;
        let mut acc = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = acc + c as f64;
            if next >= target {
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - acc) / c as f64
                };
                return Ok(self.lo + (i as f64 + frac) * self.bin_width());
            }
            acc = next;
        }
        Ok(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::INFINITY, 1.0, 4).is_err());
        assert!(Histogram::from_samples(&[], 4).is_err());
        assert!(Histogram::from_samples(&[1.0, f64::NAN], 4).is_err());
    }

    #[test]
    fn bins_observations_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend([0.5, 1.5, 1.7, 9.99]);
        assert_eq!(h.bin_counts(), &[1, 2, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.clamped(), 0);
    }

    #[test]
    fn upper_edge_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(10.0);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.clamped(), 0);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-5.0);
        h.add(7.0);
        assert_eq!(h.bin_counts(), &[1, 1]);
        assert_eq!(h.clamped(), 2);
    }

    #[test]
    fn densities_integrate_to_one() {
        let mut h = Histogram::new(0.0, 4.0, 8).unwrap();
        h.extend((0..100).map(|i| (i % 40) as f64 / 10.0));
        let total: f64 = h.densities().iter().map(|d| d * h.bin_width()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_density_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!(h.densities().iter().all(|&d| d == 0.0));
        assert!(h.quantile(0.5).is_err());
    }

    #[test]
    fn from_samples_covers_range() {
        let samples = [3.0, 5.0, 7.0];
        let h = Histogram::from_samples(&samples, 4).unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.clamped(), 0);
        assert_eq!(h.lo(), 3.0);
        assert_eq!(h.hi(), 7.0);
    }

    #[test]
    fn from_degenerate_samples() {
        let h = Histogram::from_samples(&[2.0, 2.0, 2.0], 3).unwrap();
        assert_eq!(h.count(), 3);
        assert!(h.lo() < 2.0 && h.hi() > 2.0);
    }

    #[test]
    fn quantiles_are_monotone() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::from_samples(&samples, 50).unwrap();
        let q25 = h.quantile(0.25).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q75 = h.quantile(0.75).unwrap();
        assert!(q25 < q50 && q50 < q75);
        assert!((q50 - 5.0).abs() < 0.3);
        assert!(h.quantile(1.5).is_err());
    }

    #[test]
    fn bin_center_positions() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_center_panics_out_of_range() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        let _ = h.bin_center(2);
    }
}
