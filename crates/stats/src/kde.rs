//! Gaussian kernel density estimation.
//!
//! The paper's Figure 10 presents kernel density plots of per-epoch
//! sprinting speedups ("normalized TPS") for Linear Regression and
//! PageRank. This module reproduces those estimates: a Gaussian kernel
//! with Silverman's rule-of-thumb bandwidth, evaluated on a uniform grid
//! into a [`DiscreteDensity`].

use crate::density::DiscreteDensity;
use crate::StatsError;

/// Silverman's rule-of-thumb bandwidth for a Gaussian kernel:
/// `0.9 * min(sigma, IQR / 1.34) * n^(-1/5)`.
///
/// Falls back to `sigma`-only (or a small positive constant for degenerate
/// samples) so the estimator never divides by zero.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty sample set.
pub fn silverman_bandwidth(samples: &[f64]) -> crate::Result<f64> {
    if samples.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n.max(2.0);
    let sigma = var.sqrt();

    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let q = |p: f64| -> f64 {
        let idx = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx]
    };
    let iqr = q(0.75) - q(0.25);

    let spread = if iqr > 0.0 {
        sigma.min(iqr / 1.34)
    } else {
        sigma
    };
    let spread = if spread > 0.0 {
        spread
    } else {
        // All samples identical: any small bandwidth yields a spike at the
        // common value, which is the correct degenerate estimate.
        sorted[0].abs().max(1.0) * 1e-3
    };
    Ok(0.9 * spread * n.powf(-0.2))
}

/// Gaussian kernel density estimate evaluated at one point.
#[must_use]
pub fn kde_at(samples: &[f64], bandwidth: f64, x: f64) -> f64 {
    let norm = 1.0 / (samples.len() as f64 * bandwidth * (2.0 * std::f64::consts::PI).sqrt());
    samples
        .iter()
        .map(|&s| {
            let z = (x - s) / bandwidth;
            (-0.5 * z * z).exp()
        })
        .sum::<f64>()
        * norm
}

/// Estimate a [`DiscreteDensity`] from samples with a Gaussian KDE.
///
/// The grid extends three bandwidths beyond the sample range so tail mass
/// is captured. `bins` controls grid resolution.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for empty samples,
/// [`StatsError::InvalidParameter`] for non-finite samples or `bins == 0`.
///
/// ```
/// use sprint_stats::kde::kernel_density;
///
/// # fn main() -> Result<(), sprint_stats::StatsError> {
/// let samples: Vec<f64> = (0..500).map(|i| 3.0 + (i % 20) as f64 / 10.0).collect();
/// let density = kernel_density(&samples, 128)?;
/// assert!((density.total_mass() - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn kernel_density(samples: &[f64], bins: usize) -> crate::Result<DiscreteDensity> {
    kernel_density_with_bandwidth(samples, bins, silverman_bandwidth(samples)?)
}

/// Like [`kernel_density`] but with an explicit bandwidth.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for a non-positive bandwidth,
/// non-finite samples, or `bins == 0`, and [`StatsError::EmptyInput`] for
/// empty samples.
pub fn kernel_density_with_bandwidth(
    samples: &[f64],
    bins: usize,
    bandwidth: f64,
) -> crate::Result<DiscreteDensity> {
    if samples.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::InvalidParameter {
            name: "samples",
            value: f64::NAN,
            expected: "finite sample values",
        });
    }
    if bandwidth <= 0.0 || !bandwidth.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "bandwidth",
            value: bandwidth,
            expected: "a positive finite bandwidth",
        });
    }
    let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min) - 3.0 * bandwidth;
    let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 3.0 * bandwidth;
    DiscreteDensity::from_fn(lo, hi, bins, |x| kde_at(samples, bandwidth, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample_n, ContinuousDistribution, TruncatedNormal};
    use crate::rng::seeded_rng;

    #[test]
    fn bandwidth_rejects_empty() {
        assert!(silverman_bandwidth(&[]).is_err());
    }

    #[test]
    fn bandwidth_shrinks_with_sample_count() {
        let small: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64).collect();
        let bw_small = silverman_bandwidth(&small).unwrap();
        let bw_large = silverman_bandwidth(&large).unwrap();
        assert!(bw_large < bw_small);
    }

    #[test]
    fn bandwidth_degenerate_samples_is_positive() {
        let bw = silverman_bandwidth(&[5.0; 50]).unwrap();
        assert!(bw > 0.0);
    }

    #[test]
    fn kde_integrates_to_one() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 37) as f64 / 5.0).collect();
        let d = kernel_density(&samples, 256).unwrap();
        assert!((d.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kde_recovers_unimodal_shape() {
        let dist = TruncatedNormal::new(4.0, 0.4, 3.0, 5.0).unwrap();
        let mut rng = seeded_rng(5);
        let samples = sample_n(&dist, 20_000, &mut rng);
        let d = kernel_density(&samples, 256).unwrap();
        // Mode near 4, low mass far away.
        assert!(d.pdf_at(4.0) > d.pdf_at(3.2));
        assert!(d.pdf_at(4.0) > d.pdf_at(4.8));
        assert!((d.mean() - dist.mean()).abs() < 0.05);
    }

    #[test]
    fn kde_separates_bimodal_modes() {
        // Two well-separated clusters, as in PageRank's utility profile.
        let mut samples = vec![2.0; 500];
        samples.extend(vec![12.0; 500]);
        let d = kernel_density(&samples, 512).unwrap();
        // Density at the modes well above density at the valley.
        let valley = d.pdf_at(7.0);
        assert!(d.pdf_at(2.0) > 5.0 * valley.max(1e-12));
        assert!(d.pdf_at(12.0) > 5.0 * valley.max(1e-12));
    }

    #[test]
    fn explicit_bandwidth_validation() {
        let samples = [1.0, 2.0, 3.0];
        assert!(kernel_density_with_bandwidth(&samples, 10, 0.0).is_err());
        assert!(kernel_density_with_bandwidth(&samples, 10, -1.0).is_err());
        assert!(kernel_density_with_bandwidth(&[], 10, 1.0).is_err());
        assert!(kernel_density_with_bandwidth(&[f64::NAN], 10, 1.0).is_err());
    }

    #[test]
    fn wider_bandwidth_flattens_estimate() {
        let samples = [0.0, 0.0, 0.0, 10.0, 10.0, 10.0];
        let narrow = kernel_density_with_bandwidth(&samples, 256, 0.3).unwrap();
        let wide = kernel_density_with_bandwidth(&samples, 256, 5.0).unwrap();
        let narrow_peak = narrow.pdf_at(0.0);
        let wide_peak = wide.pdf_at(0.0);
        assert!(narrow_peak > 2.0 * wide_peak);
    }
}
