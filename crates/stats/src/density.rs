//! Discretized probability densities on a uniform grid.
//!
//! [`DiscreteDensity`] is the concrete representation of the paper's
//! utility density `f(u)`: the coordinator profiles an application, bins
//! per-epoch sprinting utilities, and hands the resulting density to the
//! game. The Bellman solver (paper Equations 1–8) integrates against it,
//! and Equation 9 (`p_s = ∫_{u_T} f(u) du`) is [`DiscreteDensity::tail_mass`].
//!
//! The density is piecewise-constant over bins, which makes every integral
//! exact for the representation (no quadrature error beyond discretization).

use rand::Rng;

use crate::dist::ContinuousDistribution;
use crate::histogram::Histogram;
use crate::StatsError;

/// A probability density discretized as piecewise-constant values over a
/// uniform grid on `[lo, hi]`, normalized to integrate to 1.
///
/// Serializes as `{ lo, hi, pdf }`; deserialization re-validates and
/// re-normalizes, so profiles shipped between agents and the coordinator
/// (the paper's §4.4 offline exchange) cannot smuggle invalid densities.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(try_from = "DensitySpec", into = "DensitySpec")]
pub struct DiscreteDensity {
    lo: f64,
    hi: f64,
    /// Density value over each bin; `sum(pdf) * dx == 1`.
    pdf: Vec<f64>,
    /// Prefix masses: `cum_mass[i]` is the mass of bins `[0, i)`,
    /// accumulated left-to-right in the same order as a naive cdf scan so
    /// [`DiscreteDensity::cdf`] stays bitwise identical to the O(n) loop.
    /// Length `pdf.len() + 1`. Derived from `pdf` in the constructor and
    /// rebuilt on deserialization (the wire format stays `{lo, hi, pdf}`).
    cum_mass: Vec<f64>,
    /// Suffix x-weighted masses: `tail_xmass[i] = ∫` over bins
    /// `[i, len)` of `x f(x) dx`. Length `pdf.len() + 1`; derived.
    tail_xmass: Vec<f64>,
}

/// Wire format for [`DiscreteDensity`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct DensitySpec {
    lo: f64,
    hi: f64,
    pdf: Vec<f64>,
}

impl TryFrom<DensitySpec> for DiscreteDensity {
    type Error = StatsError;

    fn try_from(spec: DensitySpec) -> Result<Self, StatsError> {
        DiscreteDensity::new(spec.lo, spec.hi, spec.pdf)
    }
}

impl From<DiscreteDensity> for DensitySpec {
    fn from(d: DiscreteDensity) -> Self {
        DensitySpec {
            lo: d.lo,
            hi: d.hi,
            pdf: d.pdf,
        }
    }
}

impl DiscreteDensity {
    /// Create a density from raw bin values over `[lo, hi]`.
    ///
    /// Values are normalized to integrate to 1.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty value slice,
    /// [`StatsError::InvalidParameter`] for an invalid range or negative /
    /// non-finite values, and [`StatsError::NotNormalized`] when all values
    /// are zero.
    pub fn new(lo: f64, hi: f64, values: Vec<f64>) -> crate::Result<Self> {
        if values.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(StatsError::InvalidParameter {
                name: "hi",
                value: hi,
                expected: "a finite value strictly greater than lo",
            });
        }
        if values.iter().any(|&v| v < 0.0 || !v.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "values",
                value: f64::NAN,
                expected: "non-negative finite density values",
            });
        }
        let dx = (hi - lo) / values.len() as f64;
        let mass: f64 = values.iter().sum::<f64>() * dx;
        if mass <= 0.0 {
            return Err(StatsError::NotNormalized { mass });
        }
        let pdf: Vec<f64> = values.into_iter().map(|v| v / mass).collect();
        Ok(DiscreteDensity::with_tables(lo, hi, pdf))
    }

    /// Assemble a density from an already-normalized pdf, precomputing the
    /// prefix/suffix tables that make `cdf`, `tail_mass`, `quantile`, and
    /// `partial_expectation` O(1)/O(log n). Every constructor funnels
    /// through here.
    fn with_tables(lo: f64, hi: f64, pdf: Vec<f64>) -> Self {
        let dx = (hi - lo) / pdf.len() as f64;
        let mut cum_mass = Vec::with_capacity(pdf.len() + 1);
        let mut acc = 0.0;
        cum_mass.push(acc);
        for &p in &pdf {
            // Exactly the naive cdf loop's accumulation order, so the
            // table lookups round identically to the former O(n) scan.
            acc += p * dx;
            cum_mass.push(acc);
        }
        let mut tail_xmass = vec![0.0; pdf.len() + 1];
        for i in (0..pdf.len()).rev() {
            let l = lo + i as f64 * dx;
            let r = l + dx;
            tail_xmass[i] = pdf[i] * 0.5 * (r * r - l * l) + tail_xmass[i + 1];
        }
        DiscreteDensity {
            lo,
            hi,
            pdf,
            cum_mass,
            tail_xmass,
        }
    }

    /// Estimate a density from samples with `bins` uniform bins.
    ///
    /// # Errors
    ///
    /// Propagates histogram construction errors (empty or non-finite
    /// samples, zero bins).
    pub fn from_samples(samples: &[f64], bins: usize) -> crate::Result<Self> {
        let hist = Histogram::from_samples(samples, bins)?;
        DiscreteDensity::new(hist.lo(), hist.hi(), hist.densities())
    }

    /// Discretize a function proportional to a density over `[lo, hi]`.
    ///
    /// The function is evaluated at bin centers and normalized.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`DiscreteDensity::new`]; in particular
    /// [`StatsError::NotNormalized`] when `f` is zero everywhere on the grid.
    pub fn from_fn<F: Fn(f64) -> f64>(lo: f64, hi: f64, bins: usize, f: F) -> crate::Result<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
                expected: "at least one bin",
            });
        }
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(StatsError::InvalidParameter {
                name: "hi",
                value: hi,
                expected: "a finite value strictly greater than lo",
            });
        }
        let dx = (hi - lo) / bins as f64;
        let values: Vec<f64> = (0..bins)
            .map(|i| f(lo + (i as f64 + 0.5) * dx).max(0.0))
            .collect();
        DiscreteDensity::new(lo, hi, values)
    }

    /// Discretize a parametric distribution over its support.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`DiscreteDensity::from_fn`].
    pub fn from_distribution(
        dist: &dyn ContinuousDistribution,
        bins: usize,
    ) -> crate::Result<Self> {
        let (lo, hi) = dist.support();
        DiscreteDensity::from_fn(lo, hi, bins, |x| dist.pdf(x))
    }

    /// Lower edge of the grid.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the grid. This is the paper's `u_max` when the density
    /// describes sprinting utility.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of bins.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pdf.len()
    }

    /// Whether the grid has no bins (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pdf.is_empty()
    }

    /// Bin width.
    #[must_use]
    pub fn dx(&self) -> f64 {
        (self.hi - self.lo) / self.pdf.len() as f64
    }

    /// Density values over the bins.
    #[must_use]
    pub fn pdf(&self) -> &[f64] {
        &self.pdf
    }

    /// Density value at point `x` (0 outside the grid).
    #[must_use]
    pub fn pdf_at(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            return 0.0;
        }
        let idx = (((x - self.lo) / self.dx()) as usize).min(self.pdf.len() - 1);
        self.pdf[idx]
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn center(&self, i: usize) -> f64 {
        assert!(i < self.pdf.len(), "bin index {i} out of range");
        self.lo + (i as f64 + 0.5) * self.dx()
    }

    /// Iterate over `(bin center, probability mass)` pairs.
    ///
    /// Masses sum to 1; this is the quadrature rule used by the Bellman
    /// solver when integrating value functions over utility.
    pub fn masses(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let dx = self.dx();
        self.pdf
            .iter()
            .enumerate()
            .map(move |(i, &p)| (self.lo + (i as f64 + 0.5) * dx, p * dx))
    }

    /// Total mass (1 up to floating-point rounding).
    #[must_use]
    pub fn total_mass(&self) -> f64 {
        self.pdf.iter().sum::<f64>() * self.dx()
    }

    /// Mean `E[X]`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.masses().map(|(x, m)| x * m).sum()
    }

    /// Variance `Var[X]`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        self.masses().map(|(x, m)| (x - mu).powi(2) * m).sum()
    }

    /// Cumulative probability `P(X <= x)`, exact for the piecewise-constant
    /// representation. O(1) via the precomputed prefix table.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        let dx = self.dx();
        let pos = (x - self.lo) / dx;
        let full = pos.floor() as usize;
        let frac = pos - full as f64;
        self.cum_mass[full] + self.pdf[full] * frac * dx
    }

    /// Upper-tail mass `P(X > u) = ∫_u^{hi} f(x) dx` — the paper's
    /// Equation 9 sprint probability when `u` is the threshold `u_T`.
    #[must_use]
    pub fn tail_mass(&self, u: f64) -> f64 {
        (1.0 - self.cdf(u)).clamp(0.0, 1.0)
    }

    /// Partial expectation `∫_u^{hi} x f(x) dx`, exact for the
    /// representation.
    ///
    /// This is the expected utility collected by an agent who sprints
    /// exactly when utility exceeds `u` (not conditioned on sprinting).
    #[must_use]
    pub fn partial_expectation(&self, u: f64) -> f64 {
        if u >= self.hi {
            return 0.0;
        }
        let u = u.max(self.lo);
        let dx = self.dx();
        let pos = (u - self.lo) / dx;
        let first = (pos.floor() as usize).min(self.pdf.len() - 1);
        // Partial bin: integrate x*p over [u, right edge]. Full bins above
        // come from the precomputed suffix table — O(1) instead of O(n).
        let right = self.lo + (first as f64 + 1.0) * dx;
        self.pdf[first] * 0.5 * (right * right - u * u) + self.tail_xmass[first + 1]
    }

    /// Conditional mean `E[X | X > u]`.
    ///
    /// Returns `None` when the tail above `u` carries no mass.
    #[must_use]
    pub fn mean_above(&self, u: f64) -> Option<f64> {
        let tail = self.tail_mass(u);
        if tail <= 1e-15 {
            None
        } else {
            Some(self.partial_expectation(u) / tail)
        }
    }

    /// Quantile (inverse cdf) for probability `q`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> crate::Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidParameter {
                name: "q",
                value: q,
                expected: "a probability in [0, 1]",
            });
        }
        let dx = self.dx();
        // First bin whose running prefix reaches q — binary search over
        // the monotone prefix table (O(log n) instead of a linear scan).
        // `cum_mass[i + 1]` rounds identically to the old scan's
        // `acc + mass`, so the selected bin and interpolation match the
        // naive loop bit for bit.
        let i = self.cum_mass[1..].partition_point(|&c| c < q);
        if i >= self.pdf.len() {
            return Ok(self.hi);
        }
        let mass = self.pdf[i] * dx;
        let frac = if mass <= 0.0 {
            0.0
        } else {
            (q - self.cum_mass[i]) / mass
        };
        Ok(self.lo + (i as f64 + frac) * dx)
    }

    /// Sample via inverse-cdf over the discretized density.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let q: f64 = rng.gen();
        self.quantile(q).expect("q in [0,1] by construction")
    }

    /// Fill `out` with inverse-cdf samples — the batched form of
    /// [`DiscreteDensity::sample`] for hot paths that draw many variates
    /// at once into a reusable buffer (no per-call allocation).
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for v in out {
            let q: f64 = rng.gen();
            *v = self.quantile(q).expect("q in [0,1] by construction");
        }
    }

    /// Apply an affine transform `x -> a*x + b` to the random variable.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `a` is zero or
    /// non-finite (the transform must be invertible).
    pub fn affine(&self, a: f64, b: f64) -> crate::Result<Self> {
        if a == 0.0 || !a.is_finite() || !b.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "a",
                value: a,
                expected: "a non-zero finite scale",
            });
        }
        let (lo, hi) = if a > 0.0 {
            (a * self.lo + b, a * self.hi + b)
        } else {
            (a * self.hi + b, a * self.lo + b)
        };
        let mut pdf: Vec<f64> = self.pdf.iter().map(|&p| p / a.abs()).collect();
        if a < 0.0 {
            pdf.reverse();
        }
        DiscreteDensity::new(lo, hi, pdf)
    }

    /// Population mixture of several densities with non-negative weights.
    ///
    /// Used for heterogeneous racks: the aggregate utility density across
    /// application types is the weighted mixture of per-type densities.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `parts` is empty,
    /// [`StatsError::NotNormalized`] when weights sum to zero, and
    /// [`StatsError::InvalidParameter`] for negative weights or `bins == 0`.
    pub fn mixture(parts: &[(&DiscreteDensity, f64)], bins: usize) -> crate::Result<Self> {
        if parts.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if parts.iter().any(|&(_, w)| w < 0.0 || !w.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "weights",
                value: f64::NAN,
                expected: "non-negative finite weights",
            });
        }
        let total: f64 = parts.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return Err(StatsError::NotNormalized { mass: total });
        }
        let lo = parts
            .iter()
            .map(|(d, _)| d.lo)
            .fold(f64::INFINITY, f64::min);
        let hi = parts
            .iter()
            .map(|(d, _)| d.hi)
            .fold(f64::NEG_INFINITY, f64::max);
        DiscreteDensity::from_fn(lo, hi, bins, |x| {
            parts
                .iter()
                .map(|&(d, w)| w / total * d.pdf_at(x))
                .sum::<f64>()
        })
    }

    /// Re-discretize onto a new grid with `bins` bins over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotNormalized`] when the new grid misses all of
    /// this density's mass, or construction errors for invalid parameters.
    pub fn regrid(&self, lo: f64, hi: f64, bins: usize) -> crate::Result<Self> {
        DiscreteDensity::from_fn(lo, hi, bins, |x| self.pdf_at(x))
    }
}

/// O(1) sampler over a [`DiscreteDensity`], built with Walker's alias
/// method (Vose's stable construction).
///
/// [`DiscreteDensity::sample`] costs an O(log bins) binary search per
/// draw; an alias table answers the same bin-selection question with two
/// array reads, which is what the simulator's per-agent phase-resample
/// kernel needs. A selected bin is then interpolated uniformly, so the
/// sampled law is *exactly* the discretized density — the same law the
/// inverse-cdf path draws from, reached through a different mapping of
/// uniforms to values.
#[derive(Debug, Clone)]
pub struct AliasSampler {
    lo: f64,
    dx: f64,
    /// Acceptance threshold per bin, pre-scaled to `[0, 1)` within the
    /// bin's slice of the uniform.
    prob: Vec<f64>,
    /// Donor bin used when the acceptance test fails.
    alias: Vec<u32>,
}

impl AliasSampler {
    /// Build the alias table for `density` — O(bins) once, O(1) per draw.
    #[must_use]
    pub fn new(density: &DiscreteDensity) -> Self {
        let n = density.len();
        let dx = density.dx();
        // Bin masses scaled so a perfectly uniform density gives 1.0 per
        // bin; construction normalizes, so the total is ~n.
        let scaled: Vec<f64> = density.pdf().iter().map(|&p| p * dx * n as f64).collect();
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        let mut work = scaled;
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = work[s as usize];
            alias[s as usize] = l;
            work[l as usize] = (work[l as usize] + work[s as usize]) - 1.0;
            if work[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are 1.0 up to rounding: accept them outright.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        AliasSampler {
            lo: density.lo(),
            dx,
            prob,
            alias,
        }
    }

    /// Draw one value from two uniforms in `[0, 1)`: `u_bin` selects the
    /// bin through the alias table, `u_pos` places the value uniformly
    /// inside it.
    #[inline]
    #[must_use]
    pub fn sample(&self, u_bin: f64, u_pos: f64) -> f64 {
        let scaled = u_bin * self.prob.len() as f64;
        let j = (scaled as usize).min(self.prob.len() - 1);
        let frac = scaled - j as f64;
        let bin = if frac < self.prob[j] {
            j
        } else {
            self.alias[j] as usize
        };
        self.lo + (bin as f64 + u_pos) * self.dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{TruncatedNormal, Uniform};
    use crate::rng::seeded_rng;

    fn uniform_density() -> DiscreteDensity {
        DiscreteDensity::new(0.0, 10.0, vec![1.0; 100]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(DiscreteDensity::new(0.0, 1.0, vec![]).is_err());
        assert!(DiscreteDensity::new(1.0, 0.0, vec![1.0]).is_err());
        assert!(DiscreteDensity::new(0.0, 1.0, vec![-1.0, 2.0]).is_err());
        assert!(matches!(
            DiscreteDensity::new(0.0, 1.0, vec![0.0, 0.0]),
            Err(StatsError::NotNormalized { .. })
        ));
    }

    #[test]
    fn normalizes_to_unit_mass() {
        let d = DiscreteDensity::new(0.0, 2.0, vec![3.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_moments() {
        let d = uniform_density();
        assert!((d.mean() - 5.0).abs() < 1e-9);
        assert!((d.variance() - 100.0 / 12.0).abs() < 0.01);
    }

    #[test]
    fn cdf_and_tail_are_complementary() {
        let d = uniform_density();
        for u in [0.0, 1.3, 5.0, 7.77, 10.0] {
            assert!((d.cdf(u) + d.tail_mass(u) - 1.0).abs() < 1e-12);
        }
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.tail_mass(11.0), 0.0);
    }

    #[test]
    fn tail_mass_matches_analytic_uniform() {
        let d = uniform_density();
        assert!((d.tail_mass(7.5) - 0.25).abs() < 1e-9);
        assert!((d.tail_mass(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_expectation_uniform_analytic() {
        // For U(0,10): ∫_u^10 x/10 dx = (100 - u^2)/20.
        let d = uniform_density();
        for u in [0.0, 2.0, 5.0, 9.5] {
            let expected = (100.0 - u * u) / 20.0;
            assert!(
                (d.partial_expectation(u) - expected).abs() < 1e-9,
                "u = {u}"
            );
        }
        assert_eq!(d.partial_expectation(10.0), 0.0);
    }

    #[test]
    fn mean_above_is_conditional_mean() {
        let d = uniform_density();
        // E[X | X > 6] for U(0,10) is 8.
        assert!((d.mean_above(6.0).unwrap() - 8.0).abs() < 1e-9);
        assert!(d.mean_above(10.0).is_none());
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = uniform_density();
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let x = d.quantile(q).unwrap();
            assert!((d.cdf(x) - q).abs() < 1e-9, "q = {q}");
        }
        assert!(d.quantile(-0.1).is_err());
    }

    #[test]
    fn from_samples_recovers_shape() {
        let mut rng = seeded_rng(11);
        let dist = TruncatedNormal::new(4.0, 0.5, 3.0, 5.0).unwrap();
        let samples = crate::dist::sample_n(&dist, 50_000, &mut rng);
        let d = DiscreteDensity::from_samples(&samples, 64).unwrap();
        assert!((d.mean() - dist.mean()).abs() < 0.03);
        assert!((d.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_distribution_matches_cdf() {
        let u = Uniform::new(2.0, 4.0).unwrap();
        let d = DiscreteDensity::from_distribution(&u, 128).unwrap();
        assert!((d.cdf(3.0) - 0.5).abs() < 0.01);
        assert!((d.mean() - 3.0).abs() < 0.01);
    }

    #[test]
    fn from_fn_rejects_zero_function() {
        assert!(matches!(
            DiscreteDensity::from_fn(0.0, 1.0, 8, |_| 0.0),
            Err(StatsError::NotNormalized { .. })
        ));
    }

    #[test]
    fn affine_transform_scales_mean() {
        let d = uniform_density();
        let t = d.affine(2.0, 1.0).unwrap();
        assert!((t.mean() - 11.0).abs() < 1e-9);
        assert!((t.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(t.lo(), 1.0);
        assert_eq!(t.hi(), 21.0);
        assert!(d.affine(0.0, 1.0).is_err());
    }

    #[test]
    fn affine_negative_scale_reverses() {
        let d = DiscreteDensity::new(0.0, 1.0, vec![1.0, 3.0]).unwrap();
        let t = d.affine(-1.0, 0.0).unwrap();
        assert_eq!(t.lo(), -1.0);
        assert_eq!(t.hi(), 0.0);
        // Mass near -1 should correspond to mass near 1 of the original.
        assert!(t.pdf_at(-0.9) > t.pdf_at(-0.1));
    }

    #[test]
    fn mixture_combines_mass() {
        let a = DiscreteDensity::new(0.0, 1.0, vec![1.0; 10]).unwrap();
        let b = DiscreteDensity::new(9.0, 10.0, vec![1.0; 10]).unwrap();
        let m = DiscreteDensity::mixture(&[(&a, 1.0), (&b, 3.0)], 200).unwrap();
        assert!((m.total_mass() - 1.0).abs() < 1e-9);
        // 3/4 of mass in the upper component.
        assert!((m.tail_mass(5.0) - 0.75).abs() < 0.02);
    }

    #[test]
    fn mixture_validates() {
        let a = DiscreteDensity::new(0.0, 1.0, vec![1.0; 4]).unwrap();
        assert!(DiscreteDensity::mixture(&[], 10).is_err());
        assert!(DiscreteDensity::mixture(&[(&a, -1.0)], 10).is_err());
        assert!(DiscreteDensity::mixture(&[(&a, 0.0)], 10).is_err());
    }

    #[test]
    fn sampling_matches_density() {
        let d = DiscreteDensity::new(0.0, 1.0, vec![1.0, 3.0]).unwrap();
        let mut rng = seeded_rng(21);
        let n = 20_000;
        let high = (0..n).filter(|_| d.sample(&mut rng) > 0.5).count() as f64 / n as f64;
        assert!((high - 0.75).abs() < 0.02);
    }

    #[test]
    fn masses_sum_to_one() {
        let d = DiscreteDensity::new(0.0, 3.0, vec![0.5, 2.0, 1.0]).unwrap();
        let total: f64 = d.masses().map(|(_, m)| m).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let centers: Vec<f64> = d.masses().map(|(x, _)| x).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5]);
    }

    #[test]
    fn serde_round_trip_preserves_density() {
        let d = DiscreteDensity::new(1.0, 5.0, vec![0.5, 2.0, 1.0, 0.25]).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: DiscreteDensity = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn serde_rejects_invalid_payloads() {
        // Negative density values must not deserialize.
        let bad = r#"{"lo": 0.0, "hi": 1.0, "pdf": [-1.0, 2.0]}"#;
        assert!(serde_json::from_str::<DiscreteDensity>(bad).is_err());
        // Inverted range must not deserialize.
        let bad = r#"{"lo": 2.0, "hi": 1.0, "pdf": [1.0]}"#;
        assert!(serde_json::from_str::<DiscreteDensity>(bad).is_err());
    }

    #[test]
    fn serde_renormalizes_unnormalized_input() {
        // A well-formed but unnormalized pdf is accepted and normalized,
        // matching `DiscreteDensity::new`.
        let raw = r#"{"lo": 0.0, "hi": 2.0, "pdf": [3.0, 3.0]}"#;
        let d: DiscreteDensity = serde_json::from_str(raw).unwrap();
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    /// The pre-table O(n) cdf scan, kept as the reference implementation.
    fn naive_cdf(d: &DiscreteDensity, x: f64) -> f64 {
        if x <= d.lo() {
            return 0.0;
        }
        if x >= d.hi() {
            return 1.0;
        }
        let dx = d.dx();
        let pos = (x - d.lo()) / dx;
        let full = pos.floor() as usize;
        let frac = pos - full as f64;
        let mut acc = 0.0;
        for &p in &d.pdf()[..full] {
            acc += p * dx;
        }
        acc + d.pdf()[full] * frac * dx
    }

    /// The pre-table O(n) partial-expectation scan.
    fn naive_partial_expectation(d: &DiscreteDensity, u: f64) -> f64 {
        if u >= d.hi() {
            return 0.0;
        }
        let u = u.max(d.lo());
        let dx = d.dx();
        let pos = (u - d.lo()) / dx;
        let first = (pos.floor() as usize).min(d.len() - 1);
        let right = d.lo() + (first as f64 + 1.0) * dx;
        let mut acc = d.pdf()[first] * 0.5 * (right * right - u * u);
        for (i, &p) in d.pdf().iter().enumerate().skip(first + 1) {
            let l = d.lo() + i as f64 * dx;
            let r = l + dx;
            acc += p * 0.5 * (r * r - l * l);
        }
        acc
    }

    /// The pre-table O(n) quantile scan.
    fn naive_quantile(d: &DiscreteDensity, q: f64) -> f64 {
        let dx = d.dx();
        let mut acc = 0.0;
        for (i, &p) in d.pdf().iter().enumerate() {
            let mass = p * dx;
            if acc + mass >= q {
                let frac = if mass <= 0.0 { 0.0 } else { (q - acc) / mass };
                return d.lo() + (i as f64 + frac) * dx;
            }
            acc += mass;
        }
        d.hi()
    }

    #[test]
    fn prefix_tables_match_naive_scans_on_random_densities() {
        // Property test: across 40 randomized densities (random support,
        // bin count, spiky values including exact-zero bins), the table
        // kernels agree with the naive O(n) scans — bitwise for cdf and
        // quantile (identical accumulation order), and to tight relative
        // tolerance for the suffix-summed partial expectation.
        let mut rng = seeded_rng(0x5EED_D155);
        for case in 0..40 {
            let lo = rng.gen::<f64>() * 10.0 - 5.0;
            let hi = lo + 0.1 + rng.gen::<f64>() * 20.0;
            let bins = 1 + (rng.gen::<f64>() * 300.0) as usize;
            let values: Vec<f64> = (0..bins)
                .map(|_| {
                    if rng.gen::<f64>() < 0.2 {
                        0.0
                    } else {
                        rng.gen::<f64>() * 3.0
                    }
                })
                .collect();
            let Ok(d) = DiscreteDensity::new(lo, hi, values) else {
                continue; // all-zero draw: invalid by construction
            };
            for _ in 0..50 {
                let x = lo - 1.0 + rng.gen::<f64>() * (hi - lo + 2.0);
                let fast = d.cdf(x);
                let slow = naive_cdf(&d, x);
                assert_eq!(fast.to_bits(), slow.to_bits(), "cdf case {case} x={x}");

                let fast = d.partial_expectation(x);
                let slow = naive_partial_expectation(&d, x);
                let tol = 1e-12 * slow.abs().max(1.0);
                assert!(
                    (fast - slow).abs() <= tol,
                    "partial_expectation case {case} x={x}: {fast} vs {slow}"
                );

                let q = rng.gen::<f64>();
                let fast = d.quantile(q).unwrap();
                let slow = naive_quantile(&d, q);
                assert_eq!(fast.to_bits(), slow.to_bits(), "quantile case {case} q={q}");
            }
            // Boundary probabilities too.
            for q in [0.0, 1.0] {
                assert_eq!(
                    d.quantile(q).unwrap().to_bits(),
                    naive_quantile(&d, q).to_bits()
                );
            }
        }
    }

    #[test]
    fn sample_many_matches_sequential_sampling() {
        let d = DiscreteDensity::new(0.0, 1.0, vec![1.0, 3.0, 0.5, 2.0]).unwrap();
        let mut a = seeded_rng(77);
        let mut b = seeded_rng(77);
        let mut batch = [0.0f64; 64];
        d.sample_many(&mut a, &mut batch);
        for (i, &x) in batch.iter().enumerate() {
            assert_eq!(x.to_bits(), d.sample(&mut b).to_bits(), "draw {i}");
        }
    }

    #[test]
    fn regrid_preserves_moments() {
        let d = uniform_density();
        let r = d.regrid(-5.0, 15.0, 400).unwrap();
        assert!((r.mean() - 5.0).abs() < 0.05);
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alias_sampler_reproduces_bin_masses() {
        let d = DiscreteDensity::new(0.0, 4.0, vec![1.0, 3.0, 0.5, 2.0]).unwrap();
        let a = AliasSampler::new(&d);
        // Sweep a fine deterministic grid of bin-selection uniforms; the
        // empirical bin frequencies must converge on the bin masses.
        let trials = 200_000usize;
        let mut counts = [0usize; 4];
        for t in 0..trials {
            let u_bin = (t as f64 + 0.5) / trials as f64;
            let x = a.sample(u_bin, 0.5);
            counts[((x / 1.0).floor() as usize).min(3)] += 1;
        }
        let total: f64 = 1.0 + 3.0 + 0.5 + 2.0;
        for (i, &c) in counts.iter().enumerate() {
            let expect = [1.0, 3.0, 0.5, 2.0][i] / total;
            let got = c as f64 / trials as f64;
            assert!((got - expect).abs() < 2e-3, "bin {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn alias_sampler_interpolates_within_bin() {
        let d = DiscreteDensity::new(2.0, 3.0, vec![1.0]).unwrap();
        let a = AliasSampler::new(&d);
        assert!((a.sample(0.0, 0.0) - 2.0).abs() < 1e-12);
        assert!((a.sample(0.999_999, 0.5) - 2.5).abs() < 1e-6);
        let x = a.sample(0.3, 0.75);
        assert!((x - 2.75).abs() < 1e-12, "single bin: position is u_pos");
    }

    #[test]
    fn alias_sampler_matches_quantile_law() {
        // The alias sample and the interpolated inverse cdf are different
        // mappings of uniforms onto the same discretized law: compare
        // their empirical means over dense deterministic grids.
        let d = DiscreteDensity::new(-1.0, 5.0, vec![0.2, 1.4, 2.0, 0.7, 0.1, 0.9]).unwrap();
        let a = AliasSampler::new(&d);
        let trials = 100_000usize;
        let mean_alias: f64 = (0..trials)
            .map(|t| a.sample((t as f64 + 0.5) / trials as f64, 0.5))
            .sum::<f64>()
            / trials as f64;
        let mean_q: f64 = (0..trials)
            .map(|t| d.quantile((t as f64 + 0.5) / trials as f64).unwrap())
            .sum::<f64>()
            / trials as f64;
        assert!(
            (mean_alias - mean_q).abs() < 5e-3,
            "{mean_alias} vs {mean_q}"
        );
    }
}
