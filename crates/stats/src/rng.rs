//! Deterministic random-number plumbing.
//!
//! Experiments in this repository are reproducible: every simulation takes a
//! `u64` master seed, and per-agent / per-trial generators are derived with
//! [`SeedSequence`], a SplitMix64-based splitter. Two runs with the same
//! master seed produce bit-identical results regardless of agent count or
//! iteration order.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Advance a SplitMix64 state and return the next output word.
///
/// SplitMix64 is the standard generator for deriving independent seeds from
/// one master seed (Steele, Lea, Flood — OOPSLA 2014). It is not used for
/// sampling itself, only for seeding [`StdRng`] instances.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent child seeds and generators from a master seed.
///
/// ```
/// use sprint_stats::rng::SeedSequence;
///
/// let mut seq = SeedSequence::new(42);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
///
/// // Identical master seeds produce identical sequences.
/// let mut seq2 = SeedSequence::new(42);
/// assert_eq!(seq2.next_seed(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `master_seed`.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        SeedSequence { state: master_seed }
    }

    /// Produce the next child seed.
    pub fn next_seed(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Produce a generator seeded with the next child seed.
    pub fn next_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_seed())
    }

    /// Derive a seed for a named stream without advancing this sequence.
    ///
    /// Useful when the same logical entity (e.g. agent `i` in trial `t`)
    /// must observe the same randomness across code paths.
    #[must_use]
    pub fn derive(&self, stream: u64) -> u64 {
        let mut s = self.state ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        splitmix64(&mut s)
    }
}

/// Build a deterministic generator from a master seed.
///
/// ```
/// use rand::Rng;
/// let mut rng = sprint_stats::rng::seeded_rng(7);
/// let x: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[must_use]
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_known_values() {
        // Reference values from the SplitMix64 reference implementation
        // seeded with 0.
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut state), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn sequences_are_reproducible() {
        let mut a = SeedSequence::new(123);
        let mut b = SeedSequence::new(123);
        for _ in 0..16 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn different_masters_diverge() {
        let mut a = SeedSequence::new(1);
        let mut b = SeedSequence::new(2);
        let hits = (0..64).filter(|_| a.next_seed() == b.next_seed()).count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn derive_is_stable_and_stream_dependent() {
        let seq = SeedSequence::new(99);
        assert_eq!(seq.derive(5), seq.derive(5));
        assert_ne!(seq.derive(5), seq.derive(6));
    }

    #[test]
    fn rngs_from_same_seed_agree() {
        let mut r1 = seeded_rng(77);
        let mut r2 = seeded_rng(77);
        for _ in 0..8 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn next_rng_streams_are_independent() {
        let mut seq = SeedSequence::new(0xDEAD_BEEF);
        let mut r1 = seq.next_rng();
        let mut r2 = seq.next_rng();
        // Not a statistical test; just confirms the streams are not identical.
        let same = (0..32)
            .filter(|_| r1.gen::<u64>() == r2.gen::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}
